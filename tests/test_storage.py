"""The out-of-core storage tier (repro/storage/).

The load-bearing contract (ISSUE 10, docs/storage.md): every read off
the mmap'd shard store — ``lookup`` / ``select`` / ``for_user`` /
``dense_columns`` / top-k pruning — is **bitwise-identical** to the
in-RAM ``SparsePPRScores`` over the same solve, under any shard
chunking and any LRU bound.  On top of that: LRU eviction order and
telemetry, targeted shard invalidation during incremental maintenance,
by-path pickling (the spawn transport), the ``SparsePPRScores``
save/load round-trip (residuals included), RAM-vs-mmap trainer/serve
equivalence, and the streamed generator's memory bound.
"""

import os
import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import lastfm_like, traditional_split
from repro.graph import (CollaborativeKG, KnowledgeGraph,
                         MmapCollaborativeKG, UserItemGraph, load_npy)
from repro.ppr import (SparsePPRScores, forward_push_batch,
                       forward_push_sharded, incremental_push,
                       personalized_pagerank_batch,
                       personalized_pagerank_mmap)
from repro.storage import (STORE_ENV_VAR, ScoreStore, ShardedPPRScores,
                           ShardWriter, resolve_store)


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.4), seed=0)


@pytest.fixture(scope="module")
def ckg(split):
    dataset = lastfm_like(seed=0, scale=0.4)
    return dataset.build_ckg(split.train)


def _pair(ckg, tmp_path, *, chunk_users=16, keep_residuals=False,
          max_open=None, name="scores"):
    """The same solve through both backends: (ram, sharded)."""
    users = range(ckg.num_users)
    ram = forward_push_batch(ckg, users, chunk_users=chunk_users,
                             keep_residuals=keep_residuals)
    sharded = forward_push_sharded(
        ckg, users, str(tmp_path / name), chunk_users=chunk_users,
        keep_residuals=keep_residuals, max_open=max_open)
    return ram, sharded


def _counters():
    return {name: record["total"] for name, record
            in telemetry.get_registry().snapshot()["counters"].items()}


# ----------------------------------------------------------------------
# Bitwise read parity
# ----------------------------------------------------------------------

class TestBitwiseParity:
    def test_store_interface(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path)
        assert isinstance(ram, ScoreStore)       # virtual registration
        assert isinstance(sharded, ScoreStore)
        assert sharded.num_rows == ram.num_rows
        assert sharded.nnz == ram.nnz
        assert sharded.has_residuals == ram.has_residuals
        assert sharded.residual == ram.residual

    def test_toarray_bitwise(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path)
        assert np.array_equal(ram.toarray(), sharded.toarray())

    def test_select_bitwise(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path)
        users = [5, 0, 17, 5, ckg.num_users - 1]
        a, b = ram.select(users), sharded.select(users)
        for attribute in ("users", "indptr", "node_ids", "values"):
            assert np.array_equal(getattr(a, attribute),
                                  getattr(b, attribute))
        assert a.residual == b.residual

    def test_lookup_and_columns_bitwise(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path)
        rng = np.random.default_rng(0)
        slots = rng.integers(0, ram.num_rows, size=500)
        nodes = rng.integers(0, ckg.num_nodes, size=500)
        assert np.array_equal(ram.lookup(slots, nodes),
                              sharded.lookup(slots, nodes))
        probe = rng.integers(0, ckg.num_nodes, size=7)
        assert np.array_equal(ram.dense_columns(probe),
                              sharded.dense_columns(probe))

    def test_for_user_and_residual_bitwise(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path, keep_residuals=True)
        for user in (0, 3, ckg.num_users - 1):
            assert np.array_equal(ram.for_user(user), sharded.for_user(user))
            assert np.array_equal(ram.residual_for_user(user),
                                  sharded.residual_for_user(user))

    def test_normalize_by_degree_bitwise(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path)
        degrees = np.diff(ckg.indptr)
        ram.normalize_by_degree(degrees)
        sharded.normalize_by_degree(degrees)
        assert np.array_equal(ram.toarray(), sharded.toarray())

    def test_lookup_error_contract_matches_ram(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path)
        for store in (ram, sharded):
            with pytest.raises(IndexError, match="out of range for"):
                store.lookup(np.asarray([store.num_rows]), np.asarray([0]))
            with pytest.raises(IndexError, match="num_nodes="):
                store.lookup(np.asarray([0]), np.asarray([ckg.num_nodes]))
            with pytest.raises(KeyError,
                               match="no PPR scores computed for user"):
                store.select([ckg.num_users + 7])

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_property_lookup_select_topk(self, data):
        """Random tiny graphs, chunkings and queries: shard reads and the
        top-k pruning order they induce match the RAM backend exactly."""
        import tempfile

        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        num_users = int(rng.integers(3, 9))
        num_items = int(rng.integers(4, 9))
        interactions = sorted({(u, int(rng.integers(num_items)))
                               for u in range(num_users)
                               for _ in range(int(rng.integers(1, 4)))})
        ui = UserItemGraph(num_users, num_items, interactions)
        kg = KnowledgeGraph(num_items + 3, 1,
                            sorted({(int(rng.integers(num_items)), 0,
                                     num_items + int(rng.integers(3)))
                                    for _ in range(6)}))
        graph = CollaborativeKG.build(ui, kg)
        chunk = data.draw(st.integers(1, num_users + 1))
        max_open = data.draw(st.integers(1, 4))
        with tempfile.TemporaryDirectory() as tmp:
            ram = forward_push_batch(graph, range(num_users),
                                     chunk_users=chunk)
            sharded = forward_push_sharded(
                graph, range(num_users), os.path.join(tmp, "s"),
                chunk_users=chunk, max_open=max_open)
            slots = rng.integers(0, num_users, size=64)
            nodes = rng.integers(0, graph.num_nodes, size=64)
            assert np.array_equal(ram.lookup(slots, nodes),
                                  sharded.lookup(slots, nodes))
            assert np.array_equal(ram.toarray(), sharded.toarray())
            # top-k per row off each backend ranks identically
            k = int(rng.integers(1, 4))
            dense_a, dense_b = ram.toarray(), sharded.toarray()
            top_a = np.argsort(-dense_a, axis=1, kind="stable")[:, :k]
            top_b = np.argsort(-dense_b, axis=1, kind="stable")[:, :k]
            assert np.array_equal(top_a, top_b)


# ----------------------------------------------------------------------
# LRU behaviour + telemetry
# ----------------------------------------------------------------------

class TestShardLRU:
    def test_eviction_order_and_reopen(self, ckg, tmp_path):
        _, sharded = _pair(ckg, tmp_path, chunk_users=8, max_open=2)
        assert sharded.num_shards >= 4
        first = sharded.users[0]
        last = sharded.users[-1]
        sharded.for_user(int(first))               # open shard 0
        sharded.for_user(int(last))                # open last shard
        assert sharded.open_shard_indices() == [0, sharded.num_shards - 1]
        mid_row = sharded.num_rows // 2
        sharded.for_user(int(sharded.users[mid_row]))  # evicts shard 0
        opened = sharded.open_shard_indices()
        assert len(opened) == 2
        assert 0 not in opened
        assert opened[0] == sharded.num_shards - 1     # LRU order kept
        # reopen-after-evict: the evicted shard reads correctly again
        again = sharded.for_user(int(first))
        assert again.sum() > 0

    def test_hit_miss_counters(self, ckg, tmp_path):
        _, sharded = _pair(ckg, tmp_path, chunk_users=8, max_open=2)
        telemetry.reset()
        with telemetry.enabled():
            sharded.for_user(int(sharded.users[0]))   # miss (open)
            sharded.for_user(int(sharded.users[1]))   # hit (same shard)
            sharded.for_user(int(sharded.users[-1]))  # miss
        counters = _counters()
        telemetry.reset()
        assert counters["storage.shard_misses"] == 2
        assert counters["storage.shard_hits"] == 1

    def test_hot_shard_stays_under_pressure(self, ckg, tmp_path):
        _, sharded = _pair(ckg, tmp_path, chunk_users=8, max_open=2)
        hot = 1
        hot_user = int(sharded.users[sharded._shards[hot]["row_start"]])
        sharded.for_user(hot_user)
        for index in range(sharded.num_shards):
            if index == hot:
                continue
            sharded.for_user(
                int(sharded.users[sharded._shards[index]["row_start"]]))
            sharded.for_user(hot_user)  # re-touch: must never be evicted
            assert hot in sharded.open_shard_indices()

    def test_concurrent_reads_through_service_lock(self, split):
        """Thread-hammered mmap-backed service: every reader sees the
        same rankings the serial pass produces (the RLock serializes
        access to the LRU'd shard handles)."""
        from repro.serve import RecommendationService, ServeConfig

        model = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=0, k=10, seed=0, ppr_method="push"))
        model.prepare(split)
        service = RecommendationService.from_recommender(
            model, split, ServeConfig(top_k=10), store="mmap")
        assert isinstance(service.scores, ShardedPPRScores)
        users = list(range(8))
        expected = [r.copy() for r in service.recommend(users)]
        service.reset_cache()
        failures = []

        def hammer():
            try:
                for _ in range(5):
                    got = service.recommend(users)
                    for a, b in zip(got, expected):
                        assert np.array_equal(a, b)
            except Exception as error:  # noqa: BLE001
                failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


# ----------------------------------------------------------------------
# Incremental maintenance: parity + targeted invalidation
# ----------------------------------------------------------------------

class TestIncrementalSharded:
    def _fresh_pairs(self, split, ckg, count):
        pairs = []
        for step in range(ckg.num_users * ckg.num_items):
            user = step % ckg.num_users
            item = (step * 7) % ckg.num_items
            if item not in split.train.positives(user) \
                    and (user, item) not in pairs:
                pairs.append((user, item))
                if len(pairs) == count:
                    break
        return pairs

    def test_matches_ram_incremental(self, split, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path, keep_residuals=True)
        pairs = self._fresh_pairs(split, ckg, 4)
        a = incremental_push(ckg, ram, pairs)
        b = incremental_push(ckg, sharded, pairs)
        assert isinstance(b.scores, ShardedPPRScores)
        assert np.array_equal(a.changed_users, b.changed_users)
        assert a.push_ops == b.push_ops
        assert np.array_equal(a.scores.toarray(), b.scores.toarray())
        for user in set(u for u, _ in pairs):
            assert np.array_equal(a.scores.residual_for_user(user),
                                  b.scores.residual_for_user(user))

    def test_targeted_invalidation_reuses_untouched_shards(self, tmp_path):
        """Two disconnected interaction islands, one shard each: a delta
        inside island A must rewrite only A's shard; B's is reused by
        reference and its files survive untouched."""
        ui = UserItemGraph(8, 4,
                           [(u, i) for u in range(4) for i in (0, 1)]
                           + [(u, i) for u in range(4, 8) for i in (2, 3)])
        ui = UserItemGraph(8, 4, [(u, i) for u, i in
                                  zip(ui.users.tolist(), ui.items.tolist())
                                  if not (u == 0 and i == 1)])
        kg = KnowledgeGraph(6, 1, [(0, 0, 4), (1, 0, 4), (2, 0, 5),
                                   (3, 0, 5)])
        graph = CollaborativeKG.build(ui, kg)
        sharded = forward_push_sharded(
            graph, range(8), str(tmp_path / "islands"), chunk_users=4,
            keep_residuals=True)
        assert sharded.num_shards == 2
        before = {entry["files"]["values"]: entry["row_start"]
                  for entry in sharded._shards}
        telemetry.reset()
        with telemetry.enabled():
            result = incremental_push(graph, sharded, [(0, 1)])
        counters = _counters()
        telemetry.reset()
        assert counters["storage.shards_reused"] == 1
        assert counters["storage.shards_rewritten"] == 1
        after = {entry["files"]["values"] for entry
                 in result.scores._shards}
        reused_files = set(before) & after
        assert len(reused_files) == 1
        # the reused shard is island B's (rows 4..8)
        assert before[next(iter(reused_files))] == 4
        # island B's users never changed
        assert all(int(u) < 4 for u in result.changed_users)
        # superseded shard files are gone from disk
        for name in set(before) - after:
            assert not os.path.exists(
                os.path.join(result.scores.directory, name))


# ----------------------------------------------------------------------
# Pickling by path (the spawn transport) + mmap CKG
# ----------------------------------------------------------------------

class TestByPathTransport:
    def test_sharded_scores_pickle_roundtrip(self, ckg, tmp_path):
        ram, sharded = _pair(ckg, tmp_path, max_open=3)
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone.max_open == 3
        assert np.array_equal(clone.toarray(), ram.toarray())

    def test_mmap_ckg_roundtrip_and_solve(self, ckg, tmp_path):
        directory = str(tmp_path / "ckg")
        ckg.save_npy(directory)
        mmap_ckg = load_npy(directory)
        assert isinstance(mmap_ckg, MmapCollaborativeKG)
        for attribute in ("heads", "relations", "tails", "indptr",
                          "item_nodes"):
            assert np.array_equal(np.asarray(getattr(mmap_ckg, attribute)),
                                  getattr(ckg, attribute))
        clone = pickle.loads(pickle.dumps(mmap_ckg))
        a = forward_push_batch(ckg, [0, 1], chunk_users=2)
        b = forward_push_batch(clone, [0, 1], chunk_users=2)
        assert np.array_equal(a.toarray(), b.toarray())

    def test_power_mmap_matches_dense(self, ckg, tmp_path):
        users = list(range(8))
        dense = personalized_pagerank_batch(ckg, users).scores
        mapped = personalized_pagerank_mmap(
            ckg, users, str(tmp_path / "power.npy"), chunk_users=3)
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(dense, np.asarray(mapped))


# ----------------------------------------------------------------------
# SparsePPRScores save/load (satellite: the residual round-trip audit)
# ----------------------------------------------------------------------

class TestSaveLoad:
    def test_roundtrip_without_residuals(self, ckg, tmp_path):
        scores = forward_push_batch(ckg, range(8), chunk_users=4)
        path = scores.save(str(tmp_path / "scores"))
        assert path.endswith(".npz")
        restored = SparsePPRScores.load(path)
        for attribute in ("users", "indptr", "node_ids", "values"):
            assert np.array_equal(getattr(scores, attribute),
                                  getattr(restored, attribute))
        assert restored.residual == scores.residual
        assert not restored.has_residuals

    def test_residuals_alpha_epsilon_roundtrip(self, ckg, tmp_path):
        scores = forward_push_batch(ckg, range(8), alpha=0.2, epsilon=1e-4,
                                    chunk_users=4, keep_residuals=True)
        restored = SparsePPRScores.load(
            scores.save(str(tmp_path / "res_scores")))
        assert restored.has_residuals
        assert restored.alpha == scores.alpha
        assert restored.epsilon == scores.epsilon
        for attribute in ("res_indptr", "res_node_ids", "res_values"):
            assert np.array_equal(getattr(scores, attribute),
                                  getattr(restored, attribute))

    def test_incremental_push_works_after_load(self, split, ckg, tmp_path):
        """Regression: a loaded structure must support maintenance —
        residual rows, alpha and epsilon all survive the round-trip."""
        scores = forward_push_batch(ckg, range(ckg.num_users),
                                    keep_residuals=True)
        restored = SparsePPRScores.load(
            scores.save(str(tmp_path / "maint")))
        pairs = [(0, next(i for i in range(ckg.num_items)
                          if i not in split.train.positives(0)))]
        direct = incremental_push(ckg, scores, pairs)
        loaded = incremental_push(ckg, restored, pairs)
        assert direct.push_ops == loaded.push_ops
        assert np.array_equal(direct.scores.toarray(),
                              loaded.scores.toarray())


# ----------------------------------------------------------------------
# Backend selection + trainer equivalence
# ----------------------------------------------------------------------

class TestStoreSelection:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store(None) == "ram"
        monkeypatch.setenv(STORE_ENV_VAR, "mmap")
        assert resolve_store(None) == "mmap"
        assert resolve_store("ram") == "ram"      # explicit wins
        with pytest.raises(ValueError, match="ram"):
            resolve_store("tape")
        monkeypatch.setenv(STORE_ENV_VAR, "tape")
        with pytest.raises(ValueError, match=STORE_ENV_VAR):
            resolve_store(None)

    @pytest.mark.parametrize("ppr_method", ["push", "power"])
    def test_trainer_mmap_matches_ram(self, split, ppr_method, tmp_path):
        def prepare(store):
            rec = KUCNetRecommender(
                KUCNetConfig(dim=8, depth=2, seed=0),
                TrainConfig(epochs=0, k=10, seed=0, ppr_method=ppr_method,
                            ppr_chunk_users=16, ppr_store=store,
                            ppr_store_dir=(str(tmp_path / store)
                                           if store == "mmap" else None)))
            rec.prepare(split)
            return rec

        ram, mmap = prepare("ram"), prepare("mmap")
        if ppr_method == "power":
            assert np.array_equal(np.asarray(ram.ppr_scores),
                                  np.asarray(mmap.ppr_scores))
        else:
            assert isinstance(mmap.ppr_scores, ShardedPPRScores)
            assert np.array_equal(ram.ppr_scores.toarray(),
                                  mmap.ppr_scores.toarray())

    def test_trainer_env_var_selects_mmap(self, split, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, "mmap")
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=0, k=10, seed=0, ppr_method="push"))
        rec.prepare(split)
        assert rec.ppr_store == "mmap"
        assert isinstance(rec.ppr_scores, ShardedPPRScores)
        assert isinstance(rec.ckg, MmapCollaborativeKG)

    def test_writer_refuses_silent_overwrite(self, ckg, tmp_path):
        directory = str(tmp_path / "once")
        forward_push_sharded(ckg, range(4), directory, chunk_users=2)
        with pytest.raises(FileExistsError, match="overwrite=True"):
            ShardWriter(directory, ckg.num_nodes)


# ----------------------------------------------------------------------
# Streamed generator (satellite: memory-bounded scale path)
# ----------------------------------------------------------------------

class TestStreamedGenerator:
    def test_memory_bounded_smoke(self):
        """Generating past the stream threshold stays within a peak-
        allocation budget that dense per-user Python lists would blow
        (60k users of sets/lists alone would be hundreds of MB)."""
        import tracemalloc

        from repro.data.synthetic import (STREAM_USER_THRESHOLD,
                                          SyntheticConfig, generate)

        config = SyntheticConfig(name="smoke", num_users=60_000,
                                 num_items=500, seed=3)
        assert config.num_users >= STREAM_USER_THRESHOLD  # auto-streams
        tracemalloc.start()
        dataset = generate(config)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 400 * 1024 * 1024, f"peak allocation {peak} bytes"
        assert dataset.ui_graph.num_users == 60_000
        assert dataset.ui_graph.num_interactions >= 2 * 60_000
        assert dataset.ui_graph.users.max() < 60_000
        assert dataset.kg.num_triplets > 0

    def test_streamed_flag_and_determinism(self):
        from repro.data.synthetic import SyntheticConfig, generate

        config = SyntheticConfig(name="s", num_users=300, num_items=120,
                                 stream=True, seed=11)
        a, b = generate(config), generate(config)
        assert np.array_equal(a.ui_graph.users, b.ui_graph.users)
        assert np.array_equal(a.ui_graph.items, b.ui_graph.items)
        assert np.array_equal(a.kg.heads, b.kg.heads)
        # plausible degree structure (mixture sampler, deduped)
        degrees = a.ui_graph.user_degrees()
        assert degrees.min() >= 1
        assert 2 <= degrees.mean() <= 20

    def test_scaled_keeps_stream_override(self):
        from repro.data.synthetic import SyntheticConfig

        config = SyntheticConfig(name="s", num_users=100, num_items=50,
                                 stream=True)
        assert config.scaled(2.0).stream is True
