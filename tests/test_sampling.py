"""Tests for computation graphs: structure, pruning, and Proposition 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import lastfm_like
from repro.graph import CollaborativeKG, KnowledgeGraph, UserItemGraph
from repro.ppr import personalized_pagerank_batch
from repro.sampling import (build_ui_computation_graph,
                            build_user_centric_graph, ui_subgraph_layers)
from repro.sampling.computation_graph import _top_k_per_group


@pytest.fixture(scope="module")
def ckg():
    ui = UserItemGraph(3, 4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
    kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
    return CollaborativeKG.build(ui, kg)


@pytest.fixture(scope="module")
def medium():
    dataset = lastfm_like(seed=1, scale=0.25)
    return dataset.build_ckg()


class TestUserCentricGraph:
    def test_layer0_is_the_users(self, ckg):
        graph = build_user_centric_graph(ckg, [0, 2], depth=2, k=None)
        assert graph.nodes[0].tolist() == [0, 2]
        assert graph.slots[0].tolist() == [0, 1]

    def test_layer1_matches_out_edges(self, ckg):
        graph = build_user_centric_graph(ckg, [0], depth=1, k=None)
        _, _, tails = ckg.out_edges(np.array([0]))
        assert set(graph.nodes[1].tolist()) == set(np.unique(tails).tolist())

    def test_edges_index_correct_tables(self, ckg):
        graph = build_user_centric_graph(ckg, [0, 1], depth=3, k=None)
        for level, layer in enumerate(graph.layers, start=1):
            assert layer.src_pos.max(initial=-1) < graph.layer_size(level - 1)
            assert layer.dst_pos.max(initial=-1) < graph.layer_size(level)
            # dst table rows hold the edge tails
            assert np.array_equal(graph.nodes[level][layer.dst_pos], layer.tails)
            assert np.array_equal(graph.nodes[level - 1][layer.src_pos], layer.heads)

    def test_slots_do_not_mix(self, ckg):
        graph = build_user_centric_graph(ckg, [0, 2], depth=2, k=None)
        for level, layer in enumerate(graph.layers, start=1):
            src_slots = graph.slots[level - 1][layer.src_pos]
            dst_slots = graph.slots[level][layer.dst_pos]
            assert np.array_equal(src_slots, dst_slots)

    def test_pruning_respects_budget(self, medium):
        users = [0, 1, 2]
        ppr = personalized_pagerank_batch(medium, users)
        k = 5
        graph = build_user_centric_graph(medium, users, depth=3,
                                         ppr_scores=ppr.scores, k=k)
        for level, layer in enumerate(graph.layers, start=1):
            counts = np.bincount(layer.src_pos, minlength=graph.layer_size(level - 1))
            assert counts.max(initial=0) <= k

    def test_pruned_graph_is_smaller(self, medium):
        users = [0, 1]
        ppr = personalized_pagerank_batch(medium, users)
        full = build_user_centric_graph(medium, users, depth=3, k=None)
        pruned = build_user_centric_graph(medium, users, depth=3,
                                          ppr_scores=ppr.scores, k=5)
        assert pruned.total_edges() < full.total_edges()

    def test_ppr_pruning_keeps_high_score_tails(self, medium):
        """PPR sampling keeps tails with higher average score than random."""
        users = [0]
        ppr = personalized_pagerank_batch(medium, users)
        rng = np.random.default_rng(0)
        ppr_graph = build_user_centric_graph(medium, users, depth=2,
                                             ppr_scores=ppr.scores, k=3)
        random_graph = build_user_centric_graph(medium, users, depth=2, k=3,
                                                sampler="random", rng=rng)
        score_of = ppr.scores[0]
        ppr_mean = np.mean([score_of[layer.tails].mean()
                            for layer in ppr_graph.layers])
        random_mean = np.mean([score_of[layer.tails].mean()
                               for layer in random_graph.layers])
        assert ppr_mean >= random_mean

    def test_random_sampler_deterministic_with_rng(self, medium):
        a = build_user_centric_graph(medium, [0], depth=2, k=4,
                                     sampler="random",
                                     rng=np.random.default_rng(3))
        b = build_user_centric_graph(medium, [0], depth=2, k=4,
                                     sampler="random",
                                     rng=np.random.default_rng(3))
        assert a.total_edges() == b.total_edges()
        assert np.array_equal(a.layers[0].tails, b.layers[0].tails)

    def test_final_rows_lookup(self, ckg):
        graph = build_user_centric_graph(ckg, [0], depth=2, k=None)
        last = graph.depth
        nodes = graph.nodes[last]
        rows = graph.final_rows(0, nodes)
        assert np.array_equal(graph.nodes[last][rows], nodes)

    def test_final_rows_missing_is_minus_one(self, ckg):
        graph = build_user_centric_graph(ckg, [0], depth=1, k=None)
        # user 2's island (item 3) is unreachable from user 0 in 1 hop
        unreachable = ckg.item_node(3)
        rows = graph.final_rows(0, np.asarray([unreachable]))
        assert rows[0] == -1

    def test_rows_for_pairs_empty_table(self, ckg):
        # Regression: an all-empty layer table used to wrap the clipped
        # searchsorted position to index -1 and report spurious matches.
        graph = build_user_centric_graph(ckg, [0], depth=1, k=None)
        graph.slots[1] = np.empty(0, dtype=np.int64)
        graph.nodes[1] = np.empty(0, dtype=np.int64)
        rows = graph.rows_for_pairs(1, np.array([0, 0]), np.array([0, 3]))
        assert rows.tolist() == [-1, -1]

    def test_validation(self, ckg):
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [0], depth=0)
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [], depth=1)
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [0], depth=1, k=0)
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [0], depth=1, k=2, sampler="ppr")
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [0], depth=1, sampler="bogus")


class TestUISubgraph:
    def test_endpoint_layers(self, ckg):
        node_sets, _ = ui_subgraph_layers(ckg, 0, 1, depth=3)
        assert node_sets[0] == {ckg.user_node(0)}
        assert node_sets[3] == {ckg.item_node(1)}

    def test_no_path_gives_empty_sets(self, ckg):
        # user 0 and item 3 live in disconnected components
        node_sets, edge_sets = ui_subgraph_layers(ckg, 0, 3, depth=3)
        assert all(not nodes for nodes in node_sets[1:])
        assert all(edges.size == 0 for edges in edge_sets[1:])

    def test_edges_connect_adjacent_layers(self, ckg):
        node_sets, edge_sets = ui_subgraph_layers(ckg, 0, 1, depth=3)
        for hop in range(1, 4):
            heads = ckg.heads[edge_sets[hop]]
            tails = ckg.tails[edge_sets[hop]]
            assert set(heads.tolist()) <= node_sets[hop - 1]
            assert set(tails.tolist()) <= node_sets[hop]

    def test_proposition1_nodes_and_edges(self, medium):
        """Proposition 1: U-I subgraph layers are contained in the
        user-centric graph layers, for every item."""
        user = 0
        depth = 3
        centric = build_user_centric_graph(medium, [user], depth=depth, k=None)
        centric_nodes = [set(nodes.tolist()) for nodes in centric.nodes]
        centric_edges = [set(zip(layer.heads.tolist(), layer.relations.tolist(),
                                 layer.tails.tolist()))
                         for layer in centric.layers]
        rng = np.random.default_rng(0)
        for item in rng.choice(medium.num_items, size=8, replace=False):
            node_sets, edge_sets = ui_subgraph_layers(medium, user, int(item), depth)
            for hop in range(1, depth + 1):
                assert node_sets[hop] <= centric_nodes[hop]
                ui_edges = set(zip(medium.heads[edge_sets[hop]].tolist(),
                                   medium.relations[edge_sets[hop]].tolist(),
                                   medium.tails[edge_sets[hop]].tolist()))
                assert ui_edges <= centric_edges[hop - 1]

    def test_eq12_user_centric_cheaper_than_sum_of_pairs(self, medium):
        """Eq. (12): the merged graph has far fewer edges than the sum of
        individual U-I computation graphs."""
        user = 0
        depth = 3
        centric = build_user_centric_graph(medium, [user], depth=depth, k=None)
        pair_total = sum(
            build_ui_computation_graph(medium, user, item, depth).total_edges()
            for item in range(medium.num_items)
        )
        assert centric.total_edges() < pair_total


class TestUIComputationGraph:
    def test_structure_valid(self, medium):
        graph = build_ui_computation_graph(medium, 0, 0, depth=3)
        for level, layer in enumerate(graph.layers, start=1):
            if layer.num_edges == 0:
                continue
            assert np.array_equal(graph.nodes[level][layer.dst_pos], layer.tails)
            assert np.array_equal(graph.nodes[level - 1][layer.src_pos], layer.heads)

    def test_single_slot(self, medium):
        graph = build_ui_computation_graph(medium, 0, 0, depth=3)
        assert graph.num_users == 1
        for slots in graph.slots:
            assert np.all(slots == 0)


class TestTopKPerGroup:
    def test_basic(self):
        groups = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.9, 0.5, 0.3, 0.7])
        keep = _top_k_per_group(groups, scores, 2)
        assert sorted(scores[keep].tolist()) == [0.3, 0.5, 0.7, 0.9]

    def test_k_larger_than_group(self):
        groups = np.array([0, 0, 1])
        keep = _top_k_per_group(groups, np.array([1.0, 2.0, 3.0]), 10)
        assert keep.tolist() == [0, 1, 2]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.floats(0, 1)),
                    min_size=1, max_size=50),
           st.integers(1, 5))
    def test_property_budget_and_top_scores(self, pairs, k):
        pairs.sort(key=lambda p: p[0])
        groups = np.array([g for g, _ in pairs])
        scores = np.array([s for _, s in pairs])
        keep = _top_k_per_group(groups, scores, k)
        kept_mask = np.zeros(len(pairs), dtype=bool)
        kept_mask[keep] = True
        for group in np.unique(groups):
            members = groups == group
            kept = kept_mask & members
            # budget respected
            assert kept.sum() <= k
            assert kept.sum() == min(k, members.sum())
            # kept scores dominate dropped scores
            if kept.any() and (members & ~kept_mask).any():
                assert scores[kept].min() >= scores[members & ~kept_mask].max() - 1e-12


class TestPrunedSubsetInvariant:
    def test_pruned_graph_is_subgraph_of_full(self, medium):
        """Pruning only removes: every pruned edge set is contained in the
        unpruned user-centric graph's (Algorithm 1 line 4 is a selection)."""
        users = [0, 1]
        ppr = personalized_pagerank_batch(medium, users)
        full = build_user_centric_graph(medium, users, depth=3, k=None)
        pruned = build_user_centric_graph(medium, users, depth=3,
                                          ppr_scores=ppr.scores, k=4)
        for level in range(3):
            full_edges = set(zip(
                full.slots[level + 1][full.layers[level].dst_pos].tolist(),
                full.layers[level].heads.tolist(),
                full.layers[level].relations.tolist(),
                full.layers[level].tails.tolist()))
            pruned_edges = set(zip(
                pruned.slots[level + 1][pruned.layers[level].dst_pos].tolist(),
                pruned.layers[level].heads.tolist(),
                pruned.layers[level].relations.tolist(),
                pruned.layers[level].tails.tolist()))
            assert pruned_edges <= full_edges
