"""Tests for Personalized PageRank (Eq. 13) and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CollaborativeKG, KnowledgeGraph, UserItemGraph
from repro.ppr import (personalized_pagerank, personalized_pagerank_batch,
                       top_k_items_by_ppr)


@pytest.fixture
def ckg():
    ui = UserItemGraph(3, 4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
    kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
    return CollaborativeKG.build(ui, kg)


class TestPPR:
    def test_scores_are_probability_distribution(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        assert scores.shape == (ckg.num_nodes,)
        assert np.all(scores >= 0)
        # Every node here has out-edges, so mass is conserved.
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_restart_node_has_high_mass(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        assert scores[0] == scores.max()
        assert scores[0] >= 0.15  # at least the restart mass

    def test_closer_nodes_score_higher(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        interacted = ckg.item_node(0)
        distant_user = ckg.user_node(2)
        assert scores[interacted] > scores[distant_user]

    def test_batch_matches_single(self, ckg):
        batch = personalized_pagerank_batch(ckg, [0, 1, 2])
        for user in (0, 1, 2):
            single = personalized_pagerank(ckg, user)
            assert np.allclose(batch.for_user(user), single)

    def test_for_user_unknown_raises(self, ckg):
        batch = personalized_pagerank_batch(ckg, [0])
        assert batch.has_user(0)
        assert not batch.has_user(2)
        with pytest.raises(KeyError):
            batch.for_user(2)

    def test_more_iterations_converge(self, ckg):
        coarse = personalized_pagerank(ckg, 0, iterations=2)
        fine = personalized_pagerank(ckg, 0, iterations=50)
        finer = personalized_pagerank(ckg, 0, iterations=100)
        assert np.abs(finer - fine).max() < np.abs(fine - coarse).max() + 1e-12

    def test_residual_reported(self, ckg):
        result = personalized_pagerank_batch(ckg, [0], iterations=100)
        assert result.residual < 1e-6

    def test_early_stop_with_tolerance(self, ckg):
        result = personalized_pagerank_batch(ckg, [0], iterations=500,
                                             tolerance=1e-10)
        assert result.residual < 1e-10

    def test_alpha_validation(self, ckg):
        with pytest.raises(ValueError):
            personalized_pagerank(ckg, 0, alpha=0.0)
        with pytest.raises(ValueError):
            personalized_pagerank(ckg, 0, alpha=1.5)

    def test_iterations_validation(self, ckg):
        with pytest.raises(ValueError):
            personalized_pagerank(ckg, 0, iterations=0)

    def test_user_range_validation(self, ckg):
        with pytest.raises(ValueError):
            personalized_pagerank(ckg, 99)
        with pytest.raises(ValueError):
            personalized_pagerank_batch(ckg, [])

    def test_precomputed_adjacency_matches(self, ckg):
        adjacency = ckg.normalized_adjacency()
        a = personalized_pagerank(ckg, 1)
        b = personalized_pagerank(ckg, 1, adjacency=adjacency)
        assert np.allclose(a, b)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_mass_conserved_for_any_alpha(self, alpha):
        ui = UserItemGraph(3, 4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
        kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
        graph = CollaborativeKG.build(ui, kg)
        scores = personalized_pagerank(graph, 0, alpha=alpha)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(scores >= 0)


class TestTopKItems:
    def test_interacted_items_ranked_first(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        ranked = top_k_items_by_ppr(ckg, scores, k=4)
        assert set(ranked[:2].tolist()) == {0, 1}

    def test_exclusion_masks_items(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        ranked = top_k_items_by_ppr(ckg, scores, k=4, exclude_items=[0, 1])
        assert 0 not in ranked[:2]
        assert 1 not in ranked[:2]

    def test_k_capped_at_num_items(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        assert len(top_k_items_by_ppr(ckg, scores, k=100)) == ckg.num_items

    def test_k_validation(self, ckg):
        scores = personalized_pagerank(ckg, 0)
        with pytest.raises(ValueError):
            top_k_items_by_ppr(ckg, scores, k=0)

    def test_saturated_exclusion_never_leaks(self, ckg):
        # Regression: when k exceeded the number of rankable items, the
        # -inf-masked excluded items used to resurface in the tail of
        # the ranking.  They must never appear at any position.
        scores = personalized_pagerank(ckg, 0)
        for excluded in ([0, 1], [0, 1, 2], [0, 1, 2, 3]):
            ranked = top_k_items_by_ppr(ckg, scores, k=ckg.num_items,
                                        exclude_items=excluded)
            assert not set(excluded) & set(ranked.tolist())
            assert len(ranked) == ckg.num_items - len(excluded)
