"""Tests for shared baseline infrastructure helpers."""

import numpy as np
import pytest

from repro.baselines import MF, BaselineConfig
from repro.baselines.base import sample_fixed_neighbors
from repro.data import Dataset, lastfm_like, traditional_split
from repro.graph import KnowledgeGraph, UserItemGraph


class TestSampleFixedNeighbors:
    def test_exact_size_without_replacement(self):
        rng = np.random.default_rng(0)
        out = sample_fixed_neighbors(rng, np.arange(100), 10)
        assert out.shape == (10,)
        assert len(set(out.tolist())) == 10  # no replacement needed

    def test_with_replacement_when_short(self):
        rng = np.random.default_rng(0)
        out = sample_fixed_neighbors(rng, np.asarray([7, 8]), 10)
        assert out.shape == (10,)
        assert set(out.tolist()) <= {7, 8}

    def test_empty_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_fixed_neighbors(rng, np.empty(0, dtype=np.int64), 3)


class TestBPRLoop:
    def test_empty_training_split_rejected(self):
        ui = UserItemGraph(2, 2, [(0, 0)])
        kg = KnowledgeGraph(2, 1, [(0, 0, 1)])
        dataset = Dataset(name="d", ui_graph=ui, kg=kg,
                          item_to_entity=np.arange(2))
        from repro.data import Split
        empty_train = UserItemGraph(2, 2, [])
        split = Split(dataset=dataset, train=empty_train,
                      test_positives={0: {0}}, setting="traditional")
        with pytest.raises(ValueError):
            MF(BaselineConfig(dim=4, epochs=1, seed=0)).fit(split)

    def test_negatives_never_positive(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        model = MF(BaselineConfig(dim=4, epochs=1, seed=0))
        model.split = split
        model.build(split)
        users = split.train.users[:50]
        negatives = model._sample_negatives(split, users,
                                            split.dataset.num_items)
        for user, negative in zip(users, negatives):
            assert not split.train.has_interaction(int(user), int(negative))

    def test_train_seconds_recorded(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        model = MF(BaselineConfig(dim=4, epochs=2, seed=0)).fit(split)
        assert model.train_seconds > 0
        assert len(model.epoch_history) == 2
        # cumulative time is non-decreasing
        times = [t for _, _, t in model.epoch_history]
        assert times == sorted(times)

    def test_eval_mode_after_fit(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        model = MF(BaselineConfig(dim=4, epochs=1, seed=0)).fit(split)
        assert not model.training
