"""Tests for shared baseline infrastructure helpers."""

import numpy as np
import pytest

from repro.baselines import MF, BaselineConfig
from repro.baselines.base import sample_fixed_neighbors
from repro.data import Dataset, lastfm_like, traditional_split
from repro.graph import KnowledgeGraph, UserItemGraph


class TestSampleFixedNeighbors:
    def test_exact_size_without_replacement(self):
        rng = np.random.default_rng(0)
        out = sample_fixed_neighbors(rng, np.arange(100), 10)
        assert out.shape == (10,)
        assert len(set(out.tolist())) == 10  # no replacement needed

    def test_with_replacement_when_short(self):
        rng = np.random.default_rng(0)
        out = sample_fixed_neighbors(rng, np.asarray([7, 8]), 10)
        assert out.shape == (10,)
        assert set(out.tolist()) <= {7, 8}

    def test_empty_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_fixed_neighbors(rng, np.empty(0, dtype=np.int64), 3)


class TestBPRLoop:
    def test_empty_training_split_rejected(self):
        ui = UserItemGraph(2, 2, [(0, 0)])
        kg = KnowledgeGraph(2, 1, [(0, 0, 1)])
        dataset = Dataset(name="d", ui_graph=ui, kg=kg,
                          item_to_entity=np.arange(2))
        from repro.data import Split
        empty_train = UserItemGraph(2, 2, [])
        split = Split(dataset=dataset, train=empty_train,
                      test_positives={0: {0}}, setting="traditional")
        with pytest.raises(ValueError):
            MF(BaselineConfig(dim=4, epochs=1, seed=0)).fit(split)

    def test_negatives_never_positive(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        model = MF(BaselineConfig(dim=4, epochs=1, seed=0))
        model.split = split
        model.build(split)
        users = split.train.users[:50]
        negatives = model._sample_negatives(split, users,
                                            split.dataset.num_items)
        for user, negative in zip(users, negatives):
            assert not split.train.has_interaction(int(user), int(negative))

    def test_train_seconds_recorded(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        model = MF(BaselineConfig(dim=4, epochs=2, seed=0)).fit(split)
        assert model.train_seconds > 0
        assert len(model.epoch_history) == 2
        # cumulative time is non-decreasing
        times = [stats.cumulative_seconds for stats in model.epoch_history]
        assert times == sorted(times)

    def test_eval_mode_after_fit(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        model = MF(BaselineConfig(dim=4, epochs=1, seed=0)).fit(split)
        assert not model.training


class TestEngineHooksOnBaselines:
    """Early stopping + best-checkpoint restore, now shared via repro.engine
    (they used to be KUCNet-only features)."""

    def _split(self):
        return traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)

    def test_baseline_stops_on_loss_plateau(self):
        split = self._split()
        # min_improvement=0.5 demands the loss *halve* every epoch —
        # impossible — so the run stops after 1 + patience epochs.
        config = BaselineConfig(dim=4, epochs=30, seed=0,
                                patience=2, min_improvement=0.5)
        model = MF(config).fit(split)
        assert len(model.epoch_history) == 3
        assert model.epoch_history[-1].epoch == 2

    def test_baseline_restores_best_epoch(self):
        split = self._split()
        snapshots = []
        config = BaselineConfig(dim=4, epochs=6, learning_rate=2.0, seed=0,
                                restore_best=True)
        model = MF(config)
        model.fit(split, epoch_callback=lambda epoch, m, t: snapshots.append(
            (m.epoch_history[-1].loss, m.state_dict())))
        best_loss, best_state = min(snapshots, key=lambda pair: pair[0])
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, best_state[name])
        # an absurd learning rate makes the last epoch worse than the
        # best one, so the restore actually rewound parameters
        assert snapshots[-1][0] > best_loss

    def test_baseline_emits_train_epoch_spans(self):
        from repro import telemetry

        split = self._split()
        with telemetry.enabled():
            telemetry.reset()
            MF(BaselineConfig(dim=4, epochs=2, seed=0)).fit(split)
            snapshot = telemetry.get_registry().snapshot()
        assert snapshot["spans"]["train.epoch"]["count"] == 2
        assert snapshot["counters"]["train.epochs"]["total"] == 2
