"""Tests for the performance-regression observatory (``repro.bench``).

Covers the workload registry, the timing harness (statistics + telemetry
snapshot), the ``BENCH_*.json`` schema round-trip, the dual-gate
comparison engine (strict counters, advisory wall times), the trend
report, and the ``repro bench`` CLI subcommands.
"""

import copy
import json

import pytest

from repro import bench
from repro import telemetry as tm
from repro.cli import main

#: two cheap workloads exercising both a micro (autodiff) and a macro
#: (pipeline) path; the macro one emits graph.* counters.
TEST_WORKLOADS = ["autodiff.gather_rows", "graph.build"]

FAST = bench.HarnessConfig(warmup=0, min_repeats=2, max_repeats=2,
                           budget_seconds=0.0)


@pytest.fixture(autouse=True)
def clean_registry():
    tm.disable()
    tm.reset()
    yield
    tm.disable()
    tm.reset()


@pytest.fixture(scope="module")
def quick_report():
    """One shared suite run (module-scoped: setup builds datasets)."""
    return bench.run_suite("quick", names=TEST_WORKLOADS, config=FAST)


class TestRegistry:
    def test_expected_workloads_registered(self):
        expected = {"autodiff.gather_rows", "autodiff.segment_sum",
                    "autodiff.attention_layer.fused",
                    "autodiff.attention_layer.reference", "graph.build",
                    "ppr.power", "ppr.push", "train.epoch", "eval.rank"}
        assert expected <= set(bench.WORKLOADS)

    def test_every_workload_has_params_for_every_suite(self):
        for workload in bench.WORKLOADS.values():
            for suite in bench.SUITES:
                assert suite in workload.params, (
                    f"{workload.name} lacks {suite} params")

    def test_unknown_workload_name_rejected(self):
        with pytest.raises(KeyError, match="unknown workloads"):
            bench.get_workloads(["no.such.workload"])

    def test_get_workloads_preserves_request_order(self):
        names = ["graph.build", "autodiff.gather_rows"]
        assert [w.name for w in bench.get_workloads(names)] == names


class TestHarness:
    def test_report_toplevel_schema(self, quick_report):
        assert quick_report["schema"] == bench.SCHEMA
        assert quick_report["suite"] == "quick"
        assert quick_report["created_unix"] > 0
        assert isinstance(quick_report["git_sha"], str)
        machine = quick_report["machine"]
        for key in ("platform", "python", "numpy", "cpu_count"):
            assert key in machine
        assert quick_report["manifest"]["record"] == "manifest"
        assert quick_report["manifest"]["run"] == "bench:quick"

    def test_workload_entries_carry_statistics(self, quick_report):
        assert set(quick_report["workloads"]) == set(TEST_WORKLOADS)
        for entry in quick_report["workloads"].values():
            assert entry["repeats"] == 2 == len(entry["seconds"])
            assert entry["min_seconds"] <= entry["median_seconds"] \
                <= entry["max_seconds"]
            assert entry["iqr_seconds"] >= 0.0
            assert entry["params"]

    def test_instrumented_snapshot_holds_counters_and_bench_span(
            self, quick_report):
        gather = quick_report["workloads"]["autodiff.gather_rows"]
        counters = gather["telemetry"]["counters"]
        assert counters["autodiff.gather_rows"]["total"] == 1
        assert counters["autodiff.gather_rows.rows"]["total"] == 20_000
        assert "bench.autodiff.gather_rows" in gather["telemetry"]["spans"]

        graph = quick_report["workloads"]["graph.build"]
        graph_counters = graph["telemetry"]["counters"]
        assert graph_counters["graph.builds"]["total"] == 1
        assert graph_counters["graph.edges"]["total"] > 0

    def test_harness_leaves_global_registry_clean(self, quick_report):
        assert tm.get_registry().is_empty()
        assert not tm.is_enabled()

    def test_counters_are_run_invariant(self, quick_report):
        """The strict-gate precondition: rerunning changes no counter."""
        again = bench.run_suite("quick", names=["graph.build"], config=FAST)
        base = quick_report["workloads"]["graph.build"]["telemetry"]["counters"]
        cand = again["workloads"]["graph.build"]["telemetry"]["counters"]
        assert {n: r["total"] for n, r in base.items()} \
            == {n: r["total"] for n, r in cand.items()}

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            bench.run_suite("huge")


class TestArtifact:
    def test_schema_round_trip(self, quick_report, tmp_path):
        path = str(tmp_path / "BENCH_quick.json")
        bench.save_report(quick_report, path)
        loaded = bench.load_report(path)
        assert loaded == json.loads(json.dumps(quick_report))

    def test_validate_rejects_wrong_schema(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["schema"] = "somebody.else/9"
        with pytest.raises(ValueError, match="schema"):
            bench.validate_report(bad)

    def test_validate_rejects_missing_workload_fields(self, quick_report):
        bad = copy.deepcopy(quick_report)
        del bad["workloads"]["graph.build"]["median_seconds"]
        del bad["workloads"]["graph.build"]["telemetry"]["counters"]
        with pytest.raises(ValueError) as excinfo:
            bench.validate_report(bad)
        message = str(excinfo.value)
        assert "median_seconds" in message and "telemetry" in message

    def test_validate_rejects_missing_manifest(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["manifest"] = {}
        with pytest.raises(ValueError, match="manifest"):
            bench.validate_report(bad)


class TestCompare:
    def test_self_compare_passes_with_zero_findings(self, quick_report):
        result = bench.compare_reports(quick_report, quick_report)
        assert result.passed
        assert result.findings == []
        assert result.workloads_compared == len(TEST_WORKLOADS)
        assert result.counters_compared > 0
        assert "PASS" in result.render()

    def test_doubled_counter_fails_the_gate(self, quick_report):
        regressed = copy.deepcopy(quick_report)
        counters = regressed["workloads"]["graph.build"]["telemetry"]["counters"]
        counters["graph.edges"]["total"] *= 2
        result = bench.compare_reports(quick_report, regressed)
        assert not result.passed
        [failure] = result.failures
        assert failure.gate == "counter"
        assert failure.name == "graph.edges"
        assert failure.workload == "graph.build"

    def test_halved_counter_warns_but_passes(self, quick_report):
        improved = copy.deepcopy(quick_report)
        counters = improved["workloads"]["graph.build"]["telemetry"]["counters"]
        counters["graph.edges"]["total"] /= 2
        result = bench.compare_reports(quick_report, improved)
        assert result.passed
        assert any(w.name == "graph.edges" and "improvement" in w.message
                   for w in result.warnings)

    def test_small_counter_jitter_within_tolerance_passes(self, quick_report):
        jittered = copy.deepcopy(quick_report)
        counters = jittered["workloads"]["graph.build"]["telemetry"]["counters"]
        counters["graph.edges"]["total"] *= 1.05
        result = bench.compare_reports(quick_report, jittered)
        assert result.passed and not result.warnings

    def test_disappeared_counter_fails(self, quick_report):
        candidate = copy.deepcopy(quick_report)
        del candidate["workloads"]["graph.build"]["telemetry"]["counters"][
            "graph.edges"]
        result = bench.compare_reports(quick_report, candidate)
        assert any(f.gate == "counter" and "disappeared" in f.message
                   for f in result.failures)

    def test_missing_workload_fails_new_workload_warns(self, quick_report):
        candidate = copy.deepcopy(quick_report)
        entry = candidate["workloads"].pop("graph.build")
        candidate["workloads"]["graph.rebuild"] = entry
        result = bench.compare_reports(quick_report, candidate)
        assert any(f.severity == "fail" and f.workload == "graph.build"
                   for f in result.findings)
        assert any(f.severity == "warn" and f.workload == "graph.rebuild"
                   for f in result.findings)

    def test_wall_time_regression_is_advisory_by_default(self, quick_report):
        slow = copy.deepcopy(quick_report)
        entry = slow["workloads"]["autodiff.gather_rows"]
        entry["median_seconds"] *= 10.0
        result = bench.compare_reports(quick_report, slow)
        assert result.passed
        assert any(w.gate == "time" for w in result.warnings)

        strict = bench.compare_reports(
            quick_report, slow, bench.CompareConfig(strict_time=True))
        assert not strict.passed
        assert any(f.gate == "time" for f in strict.failures)

    def test_noise_within_iqr_slack_passes_silently(self, quick_report):
        wobble = copy.deepcopy(quick_report)
        entry = wobble["workloads"]["autodiff.gather_rows"]
        base = quick_report["workloads"]["autodiff.gather_rows"]
        entry["median_seconds"] = (base["median_seconds"] * 1.2
                                   + base["iqr_seconds"])
        result = bench.compare_reports(quick_report, wobble)
        assert not [f for f in result.findings if f.gate == "time"]


class TestTrendReport:
    def test_trend_tables_and_skip_list(self, quick_report, tmp_path):
        bench.save_report(quick_report, str(tmp_path / "BENCH_a.json"))
        newer = copy.deepcopy(quick_report)
        newer["created_unix"] += 60.0
        bench.save_report(newer, str(tmp_path / "BENCH_b.json"))
        (tmp_path / "BENCH_bogus.json").write_text("{\"schema\": \"nope\"}")

        text = bench.trend_report(str(tmp_path))
        for workload in TEST_WORKLOADS:
            assert f"## `{workload}`" in text
        assert text.count("| 20") >= 4      # two rows per workload table
        assert "BENCH_bogus.json" in text   # skipped, not fatal

    def test_empty_directory_renders_note(self, tmp_path):
        text = bench.trend_report(str(tmp_path))
        assert "No valid" in text


class TestCLI:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "graph.build" in out and "ppr.push" in out

    def test_bench_run_writes_valid_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_quick.json")
        code = main(["bench", "run", "--suite", "quick",
                     "--workload", "autodiff.gather_rows",
                     "--warmup", "0", "--min-repeats", "1",
                     "--max-repeats", "1", "--budget-seconds", "0",
                     "--out", out])
        assert code == 0
        report = bench.load_report(out)
        assert list(report["workloads"]) == ["autodiff.gather_rows"]
        assert "[wrote" in capsys.readouterr().out

    def test_bench_run_unknown_workload(self, capsys):
        code = main(["bench", "run", "--workload", "no.such.workload"])
        assert code == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_bench_compare_exit_codes(self, quick_report, tmp_path, capsys):
        base = str(tmp_path / "BENCH_base.json")
        bench.save_report(quick_report, base)
        assert main(["bench", "compare", base, base]) == 0

        regressed = copy.deepcopy(quick_report)
        regressed["workloads"]["graph.build"]["telemetry"]["counters"][
            "graph.edges"]["total"] *= 2
        cand = str(tmp_path / "BENCH_cand.json")
        bench.save_report(regressed, cand)
        assert main(["bench", "compare", base, cand]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_compare_missing_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "compare", missing, missing]) == 2
        assert "bench compare" in capsys.readouterr().err

    def test_bench_report_to_file(self, quick_report, tmp_path):
        bench.save_report(quick_report, str(tmp_path / "BENCH_a.json"))
        out = str(tmp_path / "trend.md")
        assert main(["bench", "report", str(tmp_path), "--out", out]) == 0
        with open(out) as handle:
            assert "# Benchmark trend report" in handle.read()
