"""Tests for the extension baselines: LightGCN, NCF, TransE."""

import numpy as np
import pytest

from repro.baselines import (EXTRA_BASELINES, BaselineConfig, LightGCN, NCF,
                             TransERec)
from repro.data import lastfm_like, traditional_split
from repro.eval import evaluate


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)


FAST = BaselineConfig(dim=16, epochs=3, seed=0)


class TestContract:
    @pytest.mark.parametrize("model_cls", list(EXTRA_BASELINES.values()),
                             ids=list(EXTRA_BASELINES))
    def test_fit_and_score(self, split, model_cls):
        model = model_cls(FAST).fit(split)
        scores = model.score_users([0, 1])
        assert scores.shape == (2, split.dataset.num_items)
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("model_cls", list(EXTRA_BASELINES.values()),
                             ids=list(EXTRA_BASELINES))
    def test_loss_decreases(self, split, model_cls):
        model = model_cls(FAST).fit(split)
        losses = [stats.loss for stats in model.epoch_history]
        assert losses[-1] <= losses[0]

    @pytest.mark.parametrize("model_cls", list(EXTRA_BASELINES.values()),
                             ids=list(EXTRA_BASELINES))
    def test_beats_chance(self, split, model_cls):
        model = model_cls(BaselineConfig(dim=32, epochs=15, seed=0)).fit(split)
        result = evaluate(model, split, max_users=30)
        assert result.recall > 20.0 / split.dataset.num_items


class TestLightGCN:
    def test_no_transform_parameters(self, split):
        """LightGCN's only parameters are the embeddings."""
        model = LightGCN(FAST)
        model.build(split)
        dataset = split.dataset
        expected = (dataset.num_users + dataset.num_items) * FAST.dim
        assert model.num_parameters() == expected

    def test_propagation_preserves_shape(self, split):
        model = LightGCN(FAST, num_layers=3)
        model.build(split)
        hidden = model._propagate()
        total = split.dataset.num_users + split.dataset.num_items
        assert hidden.shape == (total, FAST.dim)

    def test_edge_norm_symmetric(self, split):
        model = LightGCN(FAST)
        model.build(split)
        # both directions of each undirected edge carry the same weight
        half = model._src.size // 2
        assert np.allclose(model._edge_norm[:half], model._edge_norm[half:])


class TestNCF:
    def test_two_branches_exist(self, split):
        model = NCF(FAST)
        model.build(split)
        names = {name for name, _ in model.named_parameters()}
        assert any("mlp_hidden" in n for n in names)
        assert any("head" in n for n in names)

    def test_pair_scores_shape(self, split):
        model = NCF(FAST)
        model.build(split)
        scores = model.pair_scores(np.array([0, 1]), np.array([2, 3]))
        assert scores.shape == (2,)


class TestTransE:
    def test_plausibility_is_negative_distance(self, split):
        model = TransERec(FAST)
        model.build(split)
        scores = model.pair_scores(np.array([0]), np.array([0]))
        assert scores.data[0] <= 0.0

    def test_kg_loss_defined(self, split):
        model = TransERec(FAST)
        model.build(split)
        extra = model.extra_loss(np.array([0]), np.array([0]), np.array([1]))
        assert extra is not None
        assert np.isfinite(extra.item())

    def test_training_improves_interact_plausibility(self, split):
        """After training, observed pairs score higher than random pairs."""
        model = TransERec(BaselineConfig(dim=16, epochs=8, seed=0)).fit(split)
        users = split.train.users[:100]
        items = split.train.items[:100]
        rng = np.random.default_rng(0)
        random_items = rng.integers(0, split.dataset.num_items, size=100)
        observed = model.pair_scores(users, items).data.mean()
        random_score = model.pair_scores(users, random_items).data.mean()
        assert observed > random_score
