"""Tests for metrics (Eq. 15-16) and the all-ranking protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import lastfm_like, traditional_split
from repro.eval import evaluate, ndcg_at_n, rank_items, recall_at_n


class TestRecall:
    def test_perfect(self):
        assert recall_at_n([1, 2, 3], {1, 2, 3}, n=3) == 1.0

    def test_none(self):
        assert recall_at_n([4, 5, 6], {1, 2, 3}, n=3) == 0.0

    def test_partial(self):
        assert recall_at_n([1, 9, 2], {1, 2, 3, 4}, n=3) == pytest.approx(0.5)

    def test_cutoff_applies(self):
        assert recall_at_n([9, 9, 9, 1], {1}, n=3) == 0.0
        assert recall_at_n([9, 9, 9, 1], {1}, n=4) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recall_at_n([1], {1}, n=0)
        with pytest.raises(ValueError):
            recall_at_n([1], set(), n=5)


class TestNdcg:
    def test_perfect_single(self):
        assert ndcg_at_n([1], {1}, n=20) == pytest.approx(1.0)

    def test_hit_at_top_beats_hit_lower(self):
        top = ndcg_at_n([1, 9, 9], {1}, n=3)
        low = ndcg_at_n([9, 9, 1], {1}, n=3)
        assert top > low

    def test_exact_value(self):
        # hit at position 2 of a single-relevant query: (1/log2(3)) / (1/log2(2))
        value = ndcg_at_n([9, 1], {1}, n=2)
        assert value == pytest.approx(np.log2(2) / np.log2(3))

    def test_ideal_normalizer_uses_min(self):
        # 5 relevant items but N=2: ideal is two hits at the top.
        assert ndcg_at_n([1, 2], {1, 2, 3, 4, 5}, n=2) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 30), min_size=1, max_size=10),
           st.permutations(list(range(31))))
    def test_bounds(self, relevant, ranked):
        value = ndcg_at_n(list(ranked), relevant, n=20)
        assert 0.0 <= value <= 1.0
        rec = recall_at_n(list(ranked), relevant, n=20)
        assert 0.0 <= rec <= 1.0


class TestRankItems:
    def test_ordering(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_items(scores, set(), 3).tolist() == [1, 2, 0]

    def test_exclusion(self):
        scores = np.array([0.1, 0.9, 0.5])
        ranked = rank_items(scores, {1}, 3)
        assert 1 not in ranked[:2]

    def test_n_capped(self):
        assert len(rank_items(np.array([1.0, 2.0]), set(), 10)) == 2

    def test_input_not_mutated(self):
        scores = np.array([0.1, 0.9])
        rank_items(scores, {1}, 2)
        assert scores[1] == 0.9


class _OracleScorer:
    """Scores test positives highest: must achieve perfect recall."""

    def __init__(self, split):
        self.split = split

    def score_users(self, users):
        num_items = self.split.dataset.num_items
        scores = np.zeros((len(users), num_items))
        for row, user in enumerate(users):
            for item in self.split.test_positives.get(user, ()):
                scores[row, item] = 10.0
        return scores


class _RandomScorer:
    def __init__(self, num_items, seed=0):
        self.num_items = num_items
        self.rng = np.random.default_rng(seed)

    def score_users(self, users):
        return self.rng.random((len(users), self.num_items))


class TestEvaluateProtocol:
    @pytest.fixture(scope="class")
    def split(self):
        return traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)

    def test_oracle_gets_high_scores(self, split):
        result = evaluate(_OracleScorer(split), split, n=20)
        # Perfect whenever |T| <= 20, which holds at this scale.
        assert result.recall > 0.95
        assert result.ndcg > 0.95

    def test_random_scorer_is_weak(self, split):
        result = evaluate(_RandomScorer(split.dataset.num_items), split, n=20)
        assert result.recall < 0.5

    def test_per_user_breakdown_complete(self, split):
        result = evaluate(_OracleScorer(split), split, n=20)
        assert set(result.per_user_recall) == set(split.test_users)
        assert result.num_users == len(split.test_users)

    def test_max_users_subsamples(self, split):
        result = evaluate(_OracleScorer(split), split, n=20, max_users=5)
        assert result.num_users == 5

    def test_batching_consistent(self, split):
        a = evaluate(_OracleScorer(split), split, batch_size=3)
        b = evaluate(_OracleScorer(split), split, batch_size=100)
        assert a.recall == pytest.approx(b.recall)

    def test_bad_scorer_shape_rejected(self, split):
        class Bad:
            def score_users(self, users):
                return np.zeros((1, split.dataset.num_items))

        with pytest.raises(ValueError):
            evaluate(Bad(), split, batch_size=4)


class TestExactValues:
    """Hand-computed end-to-end check of the evaluation pipeline."""

    def test_two_user_exact_metrics(self):
        import numpy as np
        from repro.data import Dataset, Split
        from repro.graph import KnowledgeGraph, UserItemGraph

        ui = UserItemGraph(2, 5, [(0, 0), (1, 1)])
        kg = KnowledgeGraph(5, 1, [(0, 0, 4)])
        dataset = Dataset(name="tiny", ui_graph=ui, kg=kg,
                          item_to_entity=np.arange(5))
        train = UserItemGraph(2, 5, [(0, 0), (1, 1)])
        split = Split(dataset=dataset, train=train,
                      test_positives={0: {2}, 1: {3, 4}},
                      setting="traditional")

        class Fixed:
            def score_users(self, users):
                table = {
                    # user 0: item 2 ranked 1st (after masking item 0)
                    0: np.array([9.0, 0.1, 5.0, 0.3, 0.2]),
                    # user 1: item 3 ranked 1st, item 4 ranked 3rd
                    1: np.array([0.5, 9.0, 0.1, 5.0, 0.4]),
                }
                return np.stack([table[u] for u in users])

        result = evaluate(Fixed(), split, n=2)
        # user 0: recall 1/1 = 1; ndcg = 1 (single hit at rank 1)
        # user 1: top-2 after masking = [3, 0]; recall 1/2; ndcg:
        #   dcg = 1/log2(2) = 1; ideal = 1/log2(2) + 1/log2(3)
        ideal = 1.0 + 1.0 / np.log2(3)
        expected_recall = (1.0 + 0.5) / 2
        expected_ndcg = (1.0 + 1.0 / ideal) / 2
        assert result.recall == pytest.approx(expected_recall)
        assert result.ndcg == pytest.approx(expected_ndcg)
