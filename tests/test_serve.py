"""Tests for the online serving layer (repro/serve/).

A stub scorer over a hand-built two-component graph exercises the
service mechanics precisely (caching, invalidation scope, exclusion
growth); one end-to-end fixture built from a really-trained recommender
checks the full path, and ``RecommendationServer`` is driven over real
HTTP sockets.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import lastfm_like, traditional_split
from repro.graph import CollaborativeKG, KnowledgeGraph, UserItemGraph
from repro.ppr import forward_push_batch
from repro.serve import (RecommendationServer, RecommendationService,
                         ServeConfig)


class _StubModel:
    """Deterministic scorer: item id 0 best, then 1, 2, ... for everyone."""

    def eval(self):
        pass

    def propagate(self, graph):
        return graph

    def score_all_items(self, propagation, item_nodes):
        row = np.arange(len(item_nodes), 0, -1, dtype=np.float64)
        return np.tile(row, (64, 1))


def _stub_service(**config_kwargs):
    """Service over two disconnected components: users {0,1} with items
    {0,1}, users {2,3} with items {2,3}."""
    ui = UserItemGraph(4, 4, [(0, 0), (1, 0), (1, 1), (2, 2), (3, 2),
                              (3, 3)])
    kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
    ckg = CollaborativeKG.build(ui, kg)
    scores = forward_push_batch(ckg, range(4), epsilon=1e-5,
                                keep_residuals=True)
    positives = {0: {0}, 1: {0, 1}, 2: {2}, 3: {2, 3}}
    config = ServeConfig(**{"top_k": 3, **config_kwargs})
    return RecommendationService(
        _StubModel(), KUCNetConfig(dim=4, depth=2, seed=0),
        TrainConfig(seed=0, k=4, ppr_method="push"),
        ckg, scores, positives, config=config)


@pytest.fixture(scope="module")
def trained():
    split = traditional_split(lastfm_like(seed=0, scale=0.15), seed=0)
    recommender = KUCNetRecommender(
        KUCNetConfig(dim=8, depth=2, seed=0),
        TrainConfig(epochs=1, k=10, seed=0, batch_users=16,
                    ppr_method="push"))
    recommender.fit(split)
    return recommender, split


class TestService:
    def test_recommend_is_deterministic_and_cached(self):
        service = _stub_service()
        first = service.recommend([0, 2], k=2)
        assert all(len(ranking) == 2 for ranking in first)
        assert service.cached_users() == {0, 2}
        second = service.recommend([0, 2], k=2)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_known_positives_never_recommended(self):
        service = _stub_service()
        ranking = service.recommend([1])[0]
        # User 1's positives {0, 1} are excluded even though the stub
        # scores item 0 highest for everyone.
        assert not {0, 1} & set(ranking.tolist())

    def test_k_slices_the_cached_ranking(self):
        service = _stub_service()
        full = service.recommend([2])[0]
        short = service.recommend([2], k=1)[0]
        np.testing.assert_array_equal(short, full[:1])

    def test_duplicate_users_served_from_one_scoring(self):
        service = _stub_service()
        rankings = service.recommend([0, 0, 0])
        assert len(rankings) == 3
        for ranking in rankings[1:]:
            np.testing.assert_array_equal(ranking, rankings[0])

    def test_validation(self):
        service = _stub_service()
        with pytest.raises(ValueError):
            service.recommend([])
        with pytest.raises(ValueError, match="out of range"):
            service.recommend([99])
        with pytest.raises(ValueError, match="k must be"):
            service.recommend([0], k=service.config.top_k + 1)
        with pytest.raises(ValueError, match="k must be"):
            service.recommend([0], k=0)

    def test_requires_residuals(self):
        ui = UserItemGraph(2, 2, [(0, 0), (1, 1)])
        kg = KnowledgeGraph(3, 1, [(0, 0, 2)])
        ckg = CollaborativeKG.build(ui, kg)
        truncated = forward_push_batch(ckg, range(2), epsilon=1e-4)
        with pytest.raises(ValueError, match="keep_residuals"):
            RecommendationService(_StubModel(), KUCNetConfig(dim=4),
                                  TrainConfig(), ckg, truncated, {})

    def test_lru_cache_is_bounded(self):
        service = _stub_service(cache_entries=2)
        service.recommend([0])
        service.recommend([1])
        service.recommend([2])  # evicts user 0, the least recent
        assert service.cached_users() == {1, 2}

    def test_update_evicts_only_affected_component(self):
        service = _stub_service()
        service.recommend([0, 1, 2, 3])
        summary = service.add_interactions([(0, 1)])
        assert summary["added"] == 1
        assert summary["push_ops"] > 0
        # Users 2 and 3 live in a disconnected component: their score
        # rows cannot change, so their cached rankings survive.
        assert 0 not in service.cached_users()
        assert {2, 3} <= service.cached_users()
        assert summary["cache_invalidated"] <= 2

    def test_update_grows_exclusions_and_graph(self):
        service = _stub_service()
        edges_before = service.ckg.num_edges
        assert 1 in set(service.recommend([0])[0].tolist())
        service.add_interactions([(0, 1)])
        assert service.ckg.num_edges == edges_before + 2
        assert service.ckg.has_interaction(0, 1)
        assert 1 not in set(service.recommend([0])[0].tolist())
        assert service.stats()["serve_interactions_added"] == 1

    def test_update_skips_known_and_duplicate_pairs(self):
        service = _stub_service()
        summary = service.add_interactions([(0, 0), (0, 1), (0, 1)])
        assert summary["added"] == 1
        assert summary["skipped"] == 2
        with pytest.raises(ValueError):
            service.add_interactions([])
        with pytest.raises(ValueError, match="out of range"):
            service.add_interactions([(99, 0)])

    def test_counters_recorded(self):
        service = _stub_service()
        telemetry.reset()
        telemetry.enable()
        try:
            service.recommend([0, 2])
            service.recommend([0, 2])
            service.add_interactions([(0, 1)])
            counters = telemetry.get_registry().snapshot()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert counters["serve.requests"]["total"] == 4
        assert counters["serve.cache_misses"]["total"] == 2
        assert counters["serve.cache_hits"]["total"] == 2
        assert counters["serve.interactions"]["total"] == 1
        assert counters["ppr.incremental_pushes"]["total"] > 0

    def test_reset_cache(self):
        service = _stub_service()
        service.recommend([0, 1])
        service.reset_cache()
        assert service.cached_users() == set()


class TestFromRecommender:
    def test_end_to_end_recommend_and_update(self, trained):
        recommender, split = trained
        service = RecommendationService.from_recommender(
            recommender, split, ServeConfig(top_k=10))
        users = [0, 1, 2]
        rankings = service.recommend(users)
        for user, ranking in zip(users, rankings):
            assert len(ranking) == 10
            positives = set(split.train.positives(user))
            assert not positives & set(ranking.tolist())

        target = int(rankings[0][0])
        summary = service.add_interactions([(0, target)])
        assert summary["added"] == 1
        assert target not in set(service.recommend([0])[0].tolist())

    def test_requires_prepared_recommender(self, trained):
        _, split = trained
        unprepared = KUCNetRecommender(KUCNetConfig(dim=8, seed=0),
                                       TrainConfig(seed=0))
        with pytest.raises(ValueError, match="prepared"):
            RecommendationService.from_recommender(unprepared, split)


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=5) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


class TestHTTP:
    @pytest.fixture
    def server(self):
        instance = RecommendationServer(_stub_service(), port=0,
                                        snapshot_interval=0.0)
        port = instance.start()
        yield instance, f"http://127.0.0.1:{port}"
        instance.stop()

    def test_recommend_endpoint(self, server):
        _, url = server
        status, body = _post(f"{url}/recommend", {"users": [2], "k": 2})
        assert status == 200
        assert body["k"] == 2
        assert len(body["results"]["2"]) == 2
        assert 2 not in body["results"]["2"]  # training positive

    def test_interactions_endpoint_then_fresh_ranking(self, server):
        instance, url = server
        _, before = _post(f"{url}/recommend", {"users": [0]})
        target = before["results"]["0"][0]
        status, summary = _post(f"{url}/interactions",
                                {"pairs": [[0, target]]})
        assert status == 200
        assert summary["added"] == 1
        assert summary["push_ops"] > 0
        _, after = _post(f"{url}/recommend", {"users": [0]})
        assert target not in after["results"]["0"]
        assert instance.service.interactions_added == 1

    def test_malformed_requests_are_400_json(self, server):
        _, url = server
        for path, body in [("/recommend", {"users": []}),
                           ("/recommend", {"users": [0], "k": 99}),
                           ("/interactions", {"pairs": [[1, 2, 3]]}),
                           ("/interactions", {})]:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _post(f"{url}{path}", body)
            assert caught.value.code == 400
            error = json.loads(caught.value.read().decode("utf-8"))
            assert "error" in error

    def test_unknown_path_is_404(self, server):
        _, url = server
        with pytest.raises(urllib.error.HTTPError) as caught:
            _post(f"{url}/nope", {})
        assert caught.value.code == 404

    def test_healthz_includes_service_stats(self, server):
        _, url = server
        with urllib.request.urlopen(f"{url}/healthz", timeout=5) as reply:
            health = json.loads(reply.read().decode("utf-8"))
        assert health["status"] == "ok"
        assert health["serve_users"] == 4
        assert health["serve_cache_entries"] == 0

    def test_metrics_scrape_stays_valid(self, server):
        from repro.runstore import validate_prometheus_text
        _, url = server
        with urllib.request.urlopen(f"{url}/metrics", timeout=5) as reply:
            assert reply.status == 200
            validate_prometheus_text(reply.read().decode("utf-8"))
