"""Tests for the graph substrates: UserItemGraph, KnowledgeGraph, CKG."""

import numpy as np
import pytest

from repro.graph import (INTERACT_RELATION, CollaborativeKG, KnowledgeGraph,
                         UserItemGraph)


@pytest.fixture
def tiny_ui():
    # 2 users, 3 items; mirrors Figure 1's green graph in miniature.
    return UserItemGraph(2, 3, [(0, 0), (0, 1), (1, 1), (1, 2)])


@pytest.fixture
def tiny_kg():
    # 5 entities (items are entities 0-2; 3, 4 are attribute entities),
    # 2 relations.
    return KnowledgeGraph(5, 2, [(0, 0, 3), (1, 0, 3), (1, 1, 4), (2, 1, 4)])


@pytest.fixture
def tiny_ckg(tiny_ui, tiny_kg):
    return CollaborativeKG.build(tiny_ui, tiny_kg)


class TestUserItemGraph:
    def test_counts(self, tiny_ui):
        assert tiny_ui.num_interactions == 4
        assert tiny_ui.density() == pytest.approx(4 / 6)

    def test_duplicates_dropped(self):
        graph = UserItemGraph(1, 1, [(0, 0), (0, 0)])
        assert graph.num_interactions == 1

    def test_positives(self, tiny_ui):
        assert tiny_ui.positives(0) == {0, 1}
        assert tiny_ui.positives(1) == {1, 2}
        assert tiny_ui.positives(5) == set()

    def test_has_interaction(self, tiny_ui):
        assert tiny_ui.has_interaction(0, 1)
        assert not tiny_ui.has_interaction(0, 2)

    def test_degrees(self, tiny_ui):
        assert tiny_ui.item_degrees().tolist() == [1, 2, 1]
        assert tiny_ui.user_degrees().tolist() == [2, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            UserItemGraph(2, 2, [(0, 5)])
        with pytest.raises(ValueError):
            UserItemGraph(2, 2, [(-1, 0)])
        with pytest.raises(ValueError):
            UserItemGraph(0, 2, [])

    def test_restrict_items(self, tiny_ui):
        restricted = tiny_ui.restrict_items([0, 1])
        assert restricted.num_interactions == 3
        assert not restricted.has_interaction(1, 2)
        # Id spaces preserved.
        assert restricted.num_items == tiny_ui.num_items

    def test_restrict_users(self, tiny_ui):
        restricted = tiny_ui.restrict_users([0])
        assert restricted.positives(1) == set()
        assert restricted.positives(0) == {0, 1}

    def test_empty_interactions(self):
        graph = UserItemGraph(2, 2, [])
        assert graph.num_interactions == 0
        assert graph.users_with_interactions() == []


class TestKnowledgeGraph:
    def test_counts(self, tiny_kg):
        assert tiny_kg.num_triplets == 4
        assert tiny_kg.relation_counts().tolist() == [2, 2]

    def test_entity_degrees(self, tiny_kg):
        degrees = tiny_kg.entity_degrees()
        assert degrees[3] == 2  # two inbound edges
        assert degrees[1] == 2  # two outbound edges

    def test_validation(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(2, 1, [(0, 0, 5)])
        with pytest.raises(ValueError):
            KnowledgeGraph(2, 1, [(0, 3, 1)])

    def test_triplets_per_item(self, tiny_kg):
        assert tiny_kg.triplets_per_item(2) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            tiny_kg.triplets_per_item(0)


class TestCollaborativeKG:
    def test_node_layout(self, tiny_ckg):
        # users 0-1, entities at offset 2, no fresh item nodes (identity align)
        assert tiny_ckg.user_node(1) == 1
        assert tiny_ckg.entity_node(0) == 2
        assert tiny_ckg.item_node(0) == 2
        assert tiny_ckg.num_nodes == 2 + 5

    def test_edge_counts_include_reverses(self, tiny_ckg):
        # 4 interactions + 4 KG triplets, doubled by reverses.
        assert tiny_ckg.num_edges == 16

    def test_relation_layout(self, tiny_ckg):
        assert tiny_ckg.num_base_relations == 3  # interact + 2 KG relations
        assert tiny_ckg.num_relations == 6
        assert tiny_ckg.reverse_relation(0) == 3
        assert tiny_ckg.reverse_relation(3) == 0
        assert tiny_ckg.relation_name(0) == "interact"
        assert tiny_ckg.relation_name(3) == "-interact"
        assert tiny_ckg.relation_name(1) == "rel_0"

    def test_out_edges_of_user(self, tiny_ckg):
        heads, rels, tails = tiny_ckg.out_edges(np.array([0]))
        assert np.all(heads == 0)
        assert np.all(rels == INTERACT_RELATION)
        assert set(tails.tolist()) == {tiny_ckg.item_node(0), tiny_ckg.item_node(1)}

    def test_reverse_edge_exists(self, tiny_ckg):
        item_node = tiny_ckg.item_node(1)
        heads, rels, tails = tiny_ckg.out_edges(np.array([item_node]))
        reverse_interact = tiny_ckg.reverse_relation(INTERACT_RELATION)
        users_reached = tails[rels == reverse_interact]
        assert set(users_reached.tolist()) == {0, 1}

    def test_out_edge_ids_multiple_nodes(self, tiny_ckg):
        ids = tiny_ckg.out_edge_ids(np.array([0, 1]))
        assert len(ids) == tiny_ckg.out_degree(0) + tiny_ckg.out_degree(1)
        assert set(tiny_ckg.heads[ids].tolist()) == {0, 1}

    def test_out_edge_ids_empty(self, tiny_ckg):
        assert tiny_ckg.out_edge_ids(np.empty(0, dtype=np.int64)).size == 0

    def test_unaligned_items_get_fresh_nodes(self, tiny_ui, tiny_kg):
        ckg = CollaborativeKG.build(tiny_ui, tiny_kg, item_to_entity=[0, -1, 2])
        assert ckg.item_node(0) == ckg.entity_node(0)
        assert ckg.item_node(1) == ckg.num_users + ckg.num_entities  # fresh
        assert ckg.num_nodes == 2 + 5 + 1

    def test_alignment_validation(self, tiny_ui, tiny_kg):
        with pytest.raises(ValueError):
            CollaborativeKG.build(tiny_ui, tiny_kg, item_to_entity=[0, 1])
        with pytest.raises(ValueError):
            CollaborativeKG.build(tiny_ui, tiny_kg, item_to_entity=[0, 1, 99])

    def test_identity_alignment_needs_enough_entities(self, tiny_ui):
        small_kg = KnowledgeGraph(2, 1, [(0, 0, 1)])
        with pytest.raises(ValueError):
            CollaborativeKG.build(tiny_ui, small_kg)

    def test_node_to_item(self, tiny_ckg):
        assert tiny_ckg.node_to_item(tiny_ckg.item_node(2)) == 2
        assert tiny_ckg.node_to_item(0) is None

    def test_normalized_adjacency_columns(self, tiny_ckg):
        matrix = tiny_ckg.normalized_adjacency()
        sums = np.asarray(matrix.sum(axis=0)).ravel()
        # Every node has at least one out-edge here (reverses), so all
        # columns sum to 1.
        assert np.allclose(sums, 1.0)

    def test_average_degree(self, tiny_ckg):
        assert tiny_ckg.average_degree() == pytest.approx(16 / 7)

    def test_csr_indptr_consistent(self, tiny_ckg):
        assert tiny_ckg.indptr[-1] == tiny_ckg.num_edges
        # heads sorted ascending
        assert np.all(np.diff(tiny_ckg.heads) >= 0)


class TestOutEdgeIdsProperty:
    """Property check of the vectorized multi-range expansion against a
    straightforward per-node loop."""

    def test_matches_naive_loop(self, tiny_ckg):
        import numpy as np
        rng = np.random.default_rng(0)
        for _ in range(10):
            nodes = rng.choice(tiny_ckg.num_nodes,
                               size=rng.integers(1, 5), replace=False)
            fast = tiny_ckg.out_edge_ids(nodes)
            naive = np.concatenate([
                np.arange(tiny_ckg.indptr[n], tiny_ckg.indptr[n + 1])
                for n in nodes
            ]) if nodes.size else np.empty(0, dtype=np.int64)
            assert np.array_equal(fast, naive)
