"""Golden fixed-seed training-loss trajectories (the engine's safety net).

The callback-driven :mod:`repro.engine` replaced six hand-rolled epoch
loops.  The bar for that migration — and for any future change to the
engine — is *bitwise determinism*: at a fixed seed the per-epoch losses
must be identical to the trajectories the pre-engine loops produced.
Those trajectories are recorded in ``tests/fixtures/golden_losses.json``
and asserted exactly (``==`` on the JSON round-tripped floats) by
``tests/test_golden_losses.py``.

One trainer per former loop family is pinned:

* ``kucnet`` — :class:`repro.core.KUCNetRecommender` (the §IV-D loop);
* ``mf`` — :class:`repro.baselines.MF`, standing in for every
  BPR-trained baseline that shares ``BPRModelRecommender``'s loop;
* ``transe`` — :class:`repro.linkpred.LinkPredictor`, standing in for
  the triplet-ranking loops.

Regenerate (only when an *intentional* numerical change lands)::

    PYTHONPATH=src:. python -m tests.golden_losses

and say in the commit message why the trajectories moved.
"""

from __future__ import annotations

import json
import os

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "fixtures",
                            "golden_losses.json")


def compute_golden_losses() -> dict:
    """Train the three pinned configurations; return per-epoch losses."""
    import numpy as np

    from repro.baselines import MF, BaselineConfig
    from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
    from repro.data import lastfm_like, traditional_split
    from repro.linkpred import LinkPredConfig, LinkPredictor, split_triplets

    split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)

    kucnet = KUCNetRecommender(
        KUCNetConfig(dim=8, depth=3, seed=0),
        TrainConfig(epochs=3, k=10, batch_users=16, seed=0))
    kucnet.fit(split)

    mf = MF(BaselineConfig(dim=8, epochs=3, batch_size=128, seed=0))
    mf.fit(split)

    kg = split.dataset.kg
    train_triplets, _ = split_triplets(kg, test_fraction=0.2, seed=0)
    transe = LinkPredictor(LinkPredConfig(scorer="transe", dim=8, epochs=3,
                                          batch_size=128, seed=0))
    transe.fit(kg, train_triplets)

    return {
        "kucnet": [float(stats.loss) for stats in kucnet.history],
        "mf": [float(stats.loss) for stats in mf.epoch_history],
        "transe": [float(stats.loss) for stats in transe.history],
    }


def load_golden_losses() -> dict:
    with open(FIXTURE_PATH) as handle:
        return json.load(handle)


def main() -> None:
    losses = compute_golden_losses()
    with open(FIXTURE_PATH, "w") as handle:
        json.dump(losses, handle, indent=2)
        handle.write("\n")
    print(f"wrote {FIXTURE_PATH}")
    for name, values in losses.items():
        print(f"  {name}: {values}")


if __name__ == "__main__":
    main()
