"""Training-health monitor tests (repro.health).

Covers the alert/policy machinery, the engine :class:`HealthHook`
(NaN/Inf guards, grad-norm and update-ratio tracking, EWMA loss-spike
detection), the standalone PPR-residual and sampler monitors, the
trainer integrations, and the JSONL record flow through the existing
telemetry sinks.
"""

import json
import math
import warnings

import numpy as np
import pytest

from repro import telemetry as tm
from repro.autodiff import Adam, Module, Parameter
from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import lastfm_like, traditional_split
from repro.engine import Engine
from repro.health import (EpochHealth, HealthAlert, HealthConfig,
                          HealthError, HealthHook, HealthMonitor,
                          check_ppr_residual, check_sampler, check_snapshot)


@pytest.fixture(autouse=True)
def clean_state():
    tm.disable()
    tm.reset()
    tm.disable_events()
    yield
    tm.disable()
    tm.reset()
    tm.disable_events()


class Quadratic(Module):
    """Minimal trainable module: loss = mean((w - target)^2)."""

    def __init__(self, target: float = 3.0):
        super().__init__()
        self.w = Parameter(np.zeros(4), name="w")
        self.target = target

    def loss(self):
        diff = self.w - self.target
        return (diff * diff).mean()


def fit(module, hook, *, epochs=1, batches=2, step=None, lr=0.1):
    engine = Engine(Adam(module.parameters(), lr=lr), hooks=[hook])
    return engine.fit(step or (lambda batch: module.loss()),
                      lambda epoch: [None] * batches, epochs=epochs)


# ----------------------------------------------------------------------
# Monitor + policy machinery
# ----------------------------------------------------------------------

class TestHealthMonitor:
    def test_warn_policy_warns_and_collects(self):
        monitor = HealthMonitor()
        with pytest.warns(RuntimeWarning, match=r"health\[grad_norm\]"):
            monitor.alert("grad_norm", "too big", value=9.0, threshold=1.0)
        assert monitor.alert_count == 1
        assert monitor.alerts[0].severity == "warn"

    def test_raise_policy_escalates_fatal_only(self):
        monitor = HealthMonitor(HealthConfig(policy="raise"))
        with pytest.warns(RuntimeWarning):
            monitor.alert("grad_norm", "warn stays warn")
        with pytest.raises(HealthError, match=r"\[non_finite_loss\]"):
            monitor.alert("non_finite_loss", "NaN", severity="fatal")
        assert monitor.alert_count == 2

    def test_fatal_under_warn_policy_only_warns(self):
        monitor = HealthMonitor(HealthConfig(policy="warn"))
        with pytest.warns(RuntimeWarning):
            monitor.alert("non_finite_loss", "NaN", severity="fatal")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            HealthConfig(policy="explode")

    def test_alerts_bump_counters_and_emit_instants(self):
        monitor = HealthMonitor()
        with tm.capture_events() as log:
            with pytest.warns(RuntimeWarning):
                monitor.alert("grad_norm", "x")
        counters = tm.get_registry().snapshot()["counters"]
        assert counters["health.alerts"]["total"] == 1
        assert counters["health.alerts.grad_norm"]["total"] == 1
        instants = [e for e in log.events() if e.kind == "I"]
        assert instants and instants[0].name == "health.alert"
        assert instants[0].args["check"] == "grad_norm"

    def test_records_epochs_then_alerts(self):
        monitor = HealthMonitor()
        monitor.record_epoch(EpochHealth(epoch=0, loss=0.5))
        with pytest.warns(RuntimeWarning):
            monitor.alert("loss_spike", "x", value=2.0, threshold=1.0)
        records = monitor.records()
        assert [r["record"] for r in records] == ["health", "alert"]

    def test_non_finite_value_serializes(self):
        alert = HealthAlert(check="non_finite_loss", severity="fatal",
                            message="NaN", value=float("nan"))
        record = alert.to_record()
        assert record["value"] == "nan"
        json.dumps(record)                  # stays JSON-serializable


# ----------------------------------------------------------------------
# Engine hook
# ----------------------------------------------------------------------

class TestHealthHook:
    def test_healthy_run_is_quiet_and_records_epochs(self):
        module = Quadratic()
        module.w.data[:] = 1.0
        hook = HealthHook(module=module)
        with tm.enabled():
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                fit(module, hook, epochs=3)
        monitor = hook.monitor
        assert monitor.alert_count == 0
        assert [e.epoch for e in monitor.epochs] == [0, 1, 2]
        for epoch in monitor.epochs:
            assert set(epoch.grad_norm) == {"w"}
            assert epoch.grad_norm["w"] > 0.0
            assert epoch.update_ratio["w"] > 0.0
            assert epoch.batches == 2
        gauges = tm.get_registry().snapshot()["gauges"]
        assert "health.grad_norm.w" in gauges
        assert "health.update_ratio.w" in gauges

    def test_update_ratio_tracks_relative_weight_change(self):
        # From w=0, |W_start| hits the 1e-12 floor, so epoch 0's ratio is
        # huge; start from a known weight instead and bound the ratio.
        module = Quadratic()
        module.w.data[:] = 1.0
        hook = HealthHook(module=module,
                          config=HealthConfig(update_ratio_max=1e9))
        fit(module, hook, epochs=1, lr=0.1)
        ratio = hook.monitor.epochs[0].update_ratio["w"]
        # two Adam steps of ~lr each from |W|=2: ratio ~ 0.1, never huge
        assert 0.0 < ratio < 1.0

    def test_nan_loss_is_fatal(self):
        module = Quadratic()

        def nan_step(batch):
            return module.loss() * float("nan")

        hook = HealthHook(module=module)
        # A NaN loss also poisons the gradients, so non_finite_grad
        # warnings ride along — capture all of them, then assert the
        # loss alert is among them.
        with pytest.warns(RuntimeWarning) as captured:
            fit(module, hook, step=nan_step)
        assert any("health[non_finite_loss]" in str(w.message)
                   for w in captured)
        checks = {a.check for a in hook.monitor.alerts}
        assert "non_finite_loss" in checks
        assert all(a.severity == "fatal"
                   for a in hook.monitor.alerts
                   if a.check == "non_finite_loss")

    def test_nan_loss_raises_under_strict_policy(self):
        module = Quadratic()

        def nan_step(batch):
            return module.loss() * float("nan")

        hook = HealthHook(module=module,
                          config=HealthConfig(policy="raise"))
        with pytest.raises(HealthError, match="non_finite_loss"):
            fit(module, hook, step=nan_step)

    def test_non_finite_grad_detected(self):
        module = Quadratic()

        class Poison(HealthHook):
            def on_batch_end(self, engine, epoch, index, loss):
                module.w.grad[0] = float("inf")
                HealthHook.on_batch_end(self, engine, epoch, index, loss)

        hook = Poison(module=module)
        with pytest.warns(RuntimeWarning, match="non_finite_grad"):
            fit(module, hook)
        assert any(a.check == "non_finite_grad" and a.severity == "fatal"
                   for a in hook.monitor.alerts)

    def test_grad_norm_threshold(self):
        module = Quadratic()
        hook = HealthHook(module=module,
                          config=HealthConfig(grad_norm_max=1e-9))
        with pytest.warns(RuntimeWarning, match=r"health\[grad_norm\]"):
            fit(module, hook)
        alert = [a for a in hook.monitor.alerts if a.check == "grad_norm"][0]
        assert alert.value > alert.threshold
        assert alert.context["group"] == "w"

    def test_update_ratio_threshold(self):
        module = Quadratic()
        module.w.data[:] = 1.0
        hook = HealthHook(module=module,
                          config=HealthConfig(update_ratio_max=1e-12))
        with pytest.warns(RuntimeWarning, match=r"health\[update_ratio\]"):
            fit(module, hook)
        assert any(a.check == "update_ratio" for a in hook.monitor.alerts)

    def test_loss_spike_detector(self):
        module = Quadratic()
        losses = iter([1.0, 1.0, 1.0, 1.0, 100.0, 1.0])

        def scripted_step(batch):
            return module.loss() * 0.0 + next(losses)

        hook = HealthHook(module=module,
                          config=HealthConfig(loss_spike_warmup=3,
                                              loss_spike_ratio=3.0))
        with pytest.warns(RuntimeWarning, match=r"health\[loss_spike\]"):
            fit(module, hook, batches=6, step=scripted_step)
        spikes = [a for a in hook.monitor.alerts if a.check == "loss_spike"]
        assert len(spikes) == 1
        assert spikes[0].value == pytest.approx(100.0)

    def test_no_spike_during_warmup(self):
        module = Quadratic()
        losses = iter([1.0, 100.0])

        def scripted_step(batch):
            return module.loss() * 0.0 + next(losses)

        hook = HealthHook(module=module,
                          config=HealthConfig(loss_spike_warmup=8))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            fit(module, hook, batches=2, step=scripted_step)
        assert not any(a.check == "loss_spike"
                       for a in hook.monitor.alerts)

    def test_optimizer_fallback_group(self):
        # No module: the hook reads engine.optimizer.params as "model".
        module = Quadratic()
        hook = HealthHook()
        fit(module, hook)
        assert set(hook.monitor.epochs[0].grad_norm) == {"model"}


# ----------------------------------------------------------------------
# Standalone monitors
# ----------------------------------------------------------------------

class TestStandaloneMonitors:
    def test_ppr_residual_below_cap_is_quiet(self):
        monitor = HealthMonitor()
        assert check_ppr_residual(0.1, 100, monitor) is None
        assert monitor.alert_count == 0

    def test_ppr_residual_drift_alerts(self):
        monitor = HealthMonitor()
        with tm.enabled(), pytest.warns(RuntimeWarning,
                                        match=r"health\[ppr_residual\]"):
            alert = check_ppr_residual(50.0, 100, monitor)
        assert alert.value == pytest.approx(0.5)
        gauges = tm.get_registry().snapshot()["gauges"]
        assert gauges["health.ppr_residual_per_user"]["value"] == \
            pytest.approx(0.5)

    def test_sampler_exhaustion_cap(self):
        monitor = HealthMonitor()
        assert check_sampler(0, monitor) is None
        with pytest.warns(RuntimeWarning, match="sampler_exhausted"):
            assert check_sampler(3, monitor) is not None

    def test_check_snapshot_scans_registry_dump(self):
        monitor = HealthMonitor()
        snapshot = {
            "counters": {"train.sampler_exhausted": {"total": 2.0}},
            "gauges": {"ppr.residual_mass": {"value": 30.0},
                       "ppr.num_users": {"value": 100.0}},
        }
        with pytest.warns(RuntimeWarning):
            alerts = check_snapshot(snapshot, monitor)
        assert {a.check for a in alerts} == {"sampler_exhausted",
                                             "ppr_residual"}

    def test_check_snapshot_quiet_on_clean_dump(self):
        monitor = HealthMonitor()
        assert check_snapshot({"counters": {}, "gauges": {}}, monitor) == []


# ----------------------------------------------------------------------
# Trainer integrations
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.1), seed=0)


class TestTrainerIntegration:
    def test_fit_with_health_policy_records_epochs(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=2, k=5, seed=0, health_policy="warn"))
        with tm.enabled():
            rec.fit(split)
        monitor = rec.health_monitor
        assert monitor is not None
        assert len(monitor.epochs) == 2
        epoch = monitor.epochs[0]
        assert epoch.grad_norm and epoch.update_ratio
        gauges = tm.get_registry().snapshot()["gauges"]
        assert any(name.startswith("health.grad_norm.")
                   for name in gauges)

    def test_no_monitor_by_default(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=5, seed=0))
        rec.prepare(split)
        assert rec.health_monitor is None

    def test_push_residual_checked_in_prepare(self, split):
        # An absurdly loose epsilon leaves nearly all probability mass
        # unpushed: the per-user residual blows through the cap.
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=5, seed=0, ppr_method="push",
                        ppr_epsilon=10.0, health_policy="warn"))
        with pytest.warns(RuntimeWarning, match=r"health\[ppr_residual\]"):
            rec.prepare(split)
        assert any(a.check == "ppr_residual"
                   for a in rec.health_monitor.alerts)

    def test_sampler_exhaustion_alerts(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=5, seed=0, health_policy="warn"))
        rec.prepare(split)
        user = next(iter(rec._user_positives))
        # Shrink the negative pool to exactly this user's positives: no
        # negative can exist, the rejection loop saturates, and the
        # exact-set-difference fallback comes up empty.
        rec._train_item_pool = rec._user_positives[user].copy()
        with tm.enabled(), pytest.warns(
                RuntimeWarning, match=r"health\[sampler_exhausted\]"):
            rec._sample_pairs([user], split)
        assert any(a.check == "sampler_exhausted" and a.severity == "fatal"
                   for a in rec.health_monitor.alerts)
        counters = tm.get_registry().snapshot()["counters"]
        assert counters["train.sampler_exhausted"]["total"] == 1
        assert counters["health.alerts"]["total"] == 1

    def test_sampler_exhaustion_raises_under_strict_policy(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=5, seed=0, health_policy="raise"))
        rec.prepare(split)
        user = next(iter(rec._user_positives))
        rec._train_item_pool = rec._user_positives[user].copy()
        with pytest.raises(HealthError, match="sampler_exhausted"):
            rec._sample_pairs([user], split)

    def test_eval_nan_scores_guarded(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=5, seed=0))
        rec.prepare(split)

        class NaNScorer:
            def score_users(self, users):
                scores = np.zeros((len(users), split.dataset.num_items))
                scores[0, 0] = float("nan")
                return scores

        from repro.eval import evaluate
        monitor = HealthMonitor(HealthConfig(policy="raise"))
        with pytest.raises(HealthError, match="nan_scores"):
            evaluate(NaNScorer(), split, health=monitor)


# ----------------------------------------------------------------------
# Records through the sinks
# ----------------------------------------------------------------------

class TestHealthSinkFlow:
    def test_jsonl_round_trip_with_manifest(self, tmp_path):
        monitor = HealthMonitor()
        monitor.record_epoch(EpochHealth(
            epoch=0, loss=0.7, grad_norm={"w": 0.2},
            update_ratio={"w": 0.01}, batches=3))
        with pytest.warns(RuntimeWarning):
            monitor.alert("grad_norm", "big", value=2.0, threshold=1.0)
        path = tmp_path / "health.jsonl"
        with tm.enabled():
            tm.counter("train.pairs", 10)
        manifest = tm.RunManifest(run="health-test", seed=0)
        lines = tm.write_jsonl(str(path), manifest=manifest,
                               extra_records=monitor.records())
        records = list(tm.read_jsonl(str(path)))
        assert lines == len(records)
        kinds = [r["record"] for r in records]
        assert kinds[0] == "manifest"
        assert "health" in kinds and "alert" in kinds
        health = [r for r in records if r["record"] == "health"][0]
        assert health["grad_norm"] == {"w": 0.2}
        # Old readers keep working: split_records skips the new kinds.
        parsed_manifest, sections = tm.split_records(records)
        assert parsed_manifest["run"] == "health-test"
        assert sections["counter"]["train.pairs"]["total"] == 10
