"""Deep correctness tests: full-layer gradient checks and batching
equivalences for the propagation machinery."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.core.layers import AttentionMessagePassing
from repro.data import lastfm_like
from repro.ppr import personalized_pagerank_batch
from repro.sampling import LayerEdges, build_user_centric_graph


class TestLayerGradients:
    """Finite-difference check of one full attention layer — every
    parameter's gradient, through gather / attention / segment-sum."""

    @pytest.fixture
    def layer_setup(self):
        rng = np.random.default_rng(0)
        layer = AttentionMessagePassing(dim=4, attn_dim=3, num_relations=3,
                                        activation="tanh", rng=rng)
        edges = LayerEdges(
            src_pos=np.array([0, 0, 1, 2, 2]),
            relations=np.array([0, 1, 2, 0, 1]),
            dst_pos=np.array([0, 1, 1, 2, 0]),
            heads=np.zeros(5, dtype=np.int64),
            tails=np.zeros(5, dtype=np.int64),
        )
        hidden = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        return layer, edges, hidden

    def test_all_parameters_gradcheck(self, layer_setup):
        layer, edges, hidden = layer_setup
        params = layer.parameters()

        def forward():
            out, _ = layer(hidden, edges, 3)
            return (out * out).sum()

        check_gradients(forward, params + [hidden], atol=1e-4, rtol=1e-3)

    def test_no_attention_layer_gradcheck(self):
        rng = np.random.default_rng(1)
        layer = AttentionMessagePassing(dim=3, attn_dim=2, num_relations=2,
                                        activation="identity",
                                        use_attention=False, rng=rng)
        edges = LayerEdges(
            src_pos=np.array([0, 1]),
            relations=np.array([0, 1]),
            dst_pos=np.array([0, 0]),
            heads=np.zeros(2, dtype=np.int64),
            tails=np.zeros(2, dtype=np.int64),
        )
        hidden = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        # attention params receive no gradient but must not break the check
        trainable = [layer.relation_embedding.weight,
                     layer.message_transform.weight, hidden]

        def forward():
            out, _ = layer(hidden, edges, 1)
            return (out * out).sum()

        check_gradients(forward, trainable, atol=1e-4, rtol=1e-3)


class TestBatchingEquivalence:
    """A batched user-centric graph is the disjoint union of the
    single-user graphs — node and edge sets per slot must match."""

    @pytest.fixture(scope="class")
    def setup(self):
        dataset = lastfm_like(seed=2, scale=0.25)
        ckg = dataset.build_ckg()
        ppr = personalized_pagerank_batch(ckg, [0, 1, 2])
        return ckg, ppr.scores

    @pytest.mark.parametrize("k", [None, 6])
    def test_batched_equals_single(self, setup, k):
        ckg, scores = setup
        users = [0, 2]
        batched = build_user_centric_graph(
            ckg, users, depth=3,
            ppr_scores=scores[[0, 2]] if k else None, k=k)
        for slot, user in enumerate(users):
            single = build_user_centric_graph(
                ckg, [user], depth=3,
                ppr_scores=scores[[user]] if k else None, k=k)
            for level in range(1, 4):
                batched_nodes = set(
                    batched.nodes[level][batched.slots[level] == slot].tolist())
                single_nodes = set(single.nodes[level].tolist())
                assert batched_nodes == single_nodes
            # edge multisets per layer match
            for level in range(3):
                b_layer = batched.layers[level]
                mask = batched.slots[level + 1][b_layer.dst_pos] == slot
                batched_edges = sorted(zip(b_layer.heads[mask].tolist(),
                                           b_layer.relations[mask].tolist(),
                                           b_layer.tails[mask].tolist()))
                s_layer = single.layers[level]
                single_edges = sorted(zip(s_layer.heads.tolist(),
                                          s_layer.relations.tolist(),
                                          s_layer.tails.tolist()))
                assert batched_edges == single_edges
