"""Tests for synthetic dataset generation, splits, and serialization."""

import numpy as np
import pytest

from repro.data import (Dataset, SyntheticConfig, alibaba_ifashion_like,
                        amazon_book_like, disgenet_like, generate,
                        lastfm_like, load_dataset, new_item_split,
                        new_user_split, save_dataset, traditional_split)


@pytest.fixture(scope="module")
def small():
    return lastfm_like(seed=3, scale=0.3)


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = lastfm_like(seed=7, scale=0.2)
        b = lastfm_like(seed=7, scale=0.2)
        assert np.array_equal(a.ui_graph.users, b.ui_graph.users)
        assert np.array_equal(a.kg.heads, b.kg.heads)

    def test_different_seeds_differ(self):
        a = lastfm_like(seed=1, scale=0.2)
        b = lastfm_like(seed=2, scale=0.2)
        assert not (np.array_equal(a.ui_graph.users, b.ui_graph.users)
                    and np.array_equal(a.ui_graph.items, b.ui_graph.items))

    def test_every_user_has_interactions(self, small):
        degrees = small.ui_graph.user_degrees()
        assert degrees.min() >= 2

    def test_items_are_aligned_identity(self, small):
        assert np.array_equal(small.item_to_entity,
                              np.arange(small.num_items))

    def test_kg_entities_cover_items(self, small):
        assert small.kg.num_entities >= small.num_items

    def test_statistics_keys(self, small):
        stats = small.statistics()
        for key in ("users", "items", "interactions", "entities",
                    "relations", "triplets"):
            assert key in stats
            assert stats[key] >= 0

    def test_ifashion_is_first_order_dominated(self):
        """The iFashion analogue's attributes are mostly item-unique."""
        rich = lastfm_like(seed=0, scale=0.3)
        poor = alibaba_ifashion_like(seed=0, scale=0.3)

        def shared_attr_fraction(dataset):
            # attribute entities with >= 2 inbound edges / all attr entities
            degrees = np.zeros(dataset.kg.num_entities, dtype=int)
            np.add.at(degrees, dataset.kg.tails, 1)
            attr = degrees[dataset.num_items:]
            attr = attr[attr > 0]
            return (attr >= 2).mean() if attr.size else 0.0

        assert shared_attr_fraction(rich) > shared_attr_fraction(poor)

    def test_disgenet_has_user_kg(self):
        dataset = disgenet_like(seed=0, scale=0.4)
        assert dataset.num_user_relations == 1
        assert len(dataset.user_triplets) > 0
        users = {u for u, _, _ in dataset.user_triplets}
        assert max(users) < dataset.num_users

    def test_scaled_config(self):
        config = SyntheticConfig(name="x", num_users=100, num_items=50)
        scaled = config.scaled(0.5)
        assert scaled.num_users == 50
        assert scaled.num_items == 25
        assert config.num_users == 100  # original untouched

    def test_build_ckg_from_dataset(self, small):
        ckg = small.build_ckg()
        assert ckg.num_users == small.num_users
        assert ckg.num_edges >= 2 * small.ui_graph.num_interactions

    def test_disgenet_ckg_includes_user_edges(self):
        dataset = disgenet_like(seed=0, scale=0.4)
        ckg = dataset.build_ckg()
        # user->user edges exist
        heads, rels, tails = ckg.out_edges(np.arange(dataset.num_users))
        user_user = (heads < dataset.num_users) & (tails < dataset.num_users)
        assert user_user.any()


class TestTraditionalSplit:
    def test_every_test_item_in_train(self, small):
        split = traditional_split(small, seed=0)
        train_items = {int(i) for i in split.train.items}
        for items in split.test_positives.values():
            assert items <= train_items

    def test_no_overlap_between_train_and_test(self, small):
        split = traditional_split(small, seed=0)
        for user, items in split.test_positives.items():
            assert not (items & split.train.positives(user))

    def test_interaction_conservation(self, small):
        split = traditional_split(small, seed=0)
        # train + test <= total (test may drop items unseen in training)
        total = split.train.num_interactions + split.num_test_interactions()
        assert total <= small.ui_graph.num_interactions
        assert total >= 0.9 * small.ui_graph.num_interactions

    def test_every_user_keeps_a_training_item(self, small):
        split = traditional_split(small, seed=0)
        for user in split.test_positives:
            assert split.train.positives(user)

    def test_fraction_validation(self, small):
        with pytest.raises(ValueError):
            traditional_split(small, test_fraction=0.0)
        with pytest.raises(ValueError):
            traditional_split(small, test_fraction=1.0)

    def test_deterministic(self, small):
        a = traditional_split(small, seed=5)
        b = traditional_split(small, seed=5)
        assert a.test_positives == b.test_positives


class TestNewItemSplit:
    def test_held_out_items_absent_from_train(self, small):
        split = new_item_split(small, fold=0, seed=0)
        train_items = {int(i) for i in split.train.items}
        test_items = set(split.candidate_items.tolist())
        assert not (train_items & test_items)

    def test_test_positives_are_candidates(self, small):
        split = new_item_split(small, fold=0, seed=0)
        candidates = set(split.candidate_items.tolist())
        for items in split.test_positives.values():
            assert items <= candidates

    def test_folds_partition_items(self, small):
        all_items = set()
        for fold in range(5):
            split = new_item_split(small, fold=fold, seed=0)
            fold_items = set(split.candidate_items.tolist())
            assert not (all_items & fold_items)
            all_items |= fold_items
        assert all_items == set(range(small.num_items))

    def test_fold_validation(self, small):
        with pytest.raises(ValueError):
            new_item_split(small, fold=5, num_folds=5)


class TestNewUserSplit:
    def test_held_out_users_have_no_training_history(self, small):
        split = new_user_split(small, fold=0, seed=0)
        for user in split.test_positives:
            assert not split.train.positives(user)

    def test_folds_partition_users(self, small):
        all_users = set()
        for fold in range(5):
            split = new_user_split(small, fold=fold, seed=0)
            fold_users = set(split.test_positives)
            assert not (all_users & fold_users)
            all_users |= fold_users
        # every user with interactions appears in exactly one test fold
        assert all_users == set(small.ui_graph.users_with_interactions())


class TestSerialization:
    def test_roundtrip(self, small, tmp_path):
        directory = str(tmp_path / "dataset")
        save_dataset(small, directory)
        loaded = load_dataset(directory)
        assert loaded.name == small.name
        assert loaded.num_users == small.num_users
        assert np.array_equal(loaded.ui_graph.users, small.ui_graph.users)
        assert np.array_equal(loaded.ui_graph.items, small.ui_graph.items)
        assert np.array_equal(loaded.kg.heads, small.kg.heads)
        assert np.array_equal(loaded.kg.relations, small.kg.relations)
        assert np.array_equal(loaded.item_to_entity, small.item_to_entity)

    def test_roundtrip_with_user_kg(self, tmp_path):
        dataset = disgenet_like(seed=0, scale=0.4)
        directory = str(tmp_path / "disgenet")
        save_dataset(dataset, directory)
        loaded = load_dataset(directory)
        assert loaded.num_user_relations == 1
        assert sorted(loaded.user_triplets) == sorted(dataset.user_triplets)

    def test_malformed_file_rejected(self, tmp_path, small):
        directory = str(tmp_path / "broken")
        save_dataset(small, directory)
        with open(f"{directory}/kg.tsv", "a") as handle:
            handle.write("1\t2\n")  # wrong column count
        with pytest.raises(ValueError):
            load_dataset(directory)


class TestPresets:
    @pytest.mark.parametrize("preset", [lastfm_like, amazon_book_like,
                                        alibaba_ifashion_like, disgenet_like])
    def test_presets_generate_valid_datasets(self, preset):
        dataset = preset(seed=0, scale=0.2)
        assert dataset.ui_graph.num_interactions > 0
        assert dataset.kg.num_triplets > 0
        ckg = dataset.build_ckg()
        assert ckg.num_edges > 0


class TestSplitHelpers:
    def test_num_test_interactions(self, small):
        split = traditional_split(small, seed=0)
        total = sum(len(items) for items in split.test_positives.values())
        assert split.num_test_interactions() == total

    def test_test_users_sorted(self, small):
        split = traditional_split(small, seed=0)
        assert split.test_users == sorted(split.test_positives)

    def test_statistics_match_manual_counts(self, small):
        stats = small.statistics()
        assert stats["users"] == small.ui_graph.num_users
        assert stats["items"] == small.ui_graph.num_items
        assert stats["interactions"] == small.ui_graph.num_interactions
        assert stats["entities"] == small.kg.num_entities
        assert stats["triplets"] == (small.kg.num_triplets
                                     + len(small.user_triplets))
