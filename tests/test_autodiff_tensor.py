"""Unit tests for the core Tensor arithmetic and its gradients."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients


RNG = np.random.default_rng(0)


def make(shape, requires_grad=True):
    return Tensor(RNG.normal(size=shape), requires_grad=requires_grad)


class TestForward:
    def test_add_matches_numpy(self):
        a, b = make((3, 4)), make((3, 4))
        assert np.allclose((a + b).data, a.data + b.data)

    def test_add_broadcasts(self):
        a, b = make((3, 4)), make((4,))
        assert (a + b).shape == (3, 4)

    def test_scalar_right_ops(self):
        a = make((2, 2))
        assert np.allclose((2.0 * a).data, 2.0 * a.data)
        assert np.allclose((1.0 - a).data, 1.0 - a.data)
        assert np.allclose((1.0 / (a + 10.0)).data, 1.0 / (a.data + 10.0))

    def test_matmul_shapes(self):
        a, b = make((3, 4)), make((4, 5))
        assert (a @ b).shape == (3, 5)

    def test_matvec(self):
        a, v = make((3, 4)), make((4,))
        assert (a @ v).shape == (3,)

    def test_vecmat(self):
        v, a = make((3,)), make((3, 4))
        assert (v @ a).shape == (4,)

    def test_reductions(self):
        a = make((3, 4))
        assert (a.sum()).shape == ()
        assert a.sum(axis=0).shape == (4,)
        assert a.mean(axis=1, keepdims=True).shape == (3, 1)
        assert np.allclose(a.mean().item(), a.data.mean())

    def test_transpose_reshape(self):
        a = make((3, 4))
        assert a.T.shape == (4, 3)
        assert a.reshape(4, 3).shape == (4, 3)
        assert a.reshape((12,)).shape == (12,)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        y = x.sigmoid().data
        assert np.all(np.isfinite(y))
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0)

    def test_softplus_extreme_values_stable(self):
        x = Tensor(np.array([-1000.0, 1000.0]))
        y = x.softplus().data
        assert np.all(np.isfinite(y))
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(1000.0)

    def test_backward_requires_scalar(self):
        a = make((2, 2))
        with pytest.raises(ValueError):
            a.backward()

    def test_detach_cuts_graph(self):
        a = make((2, 2))
        b = (a * 2.0).detach()
        (b.sum()).backward()
        assert a.grad is None


class TestBackward:
    def test_add_grad(self):
        a, b = make((3, 4)), make((3, 4))
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_broadcast_add_grad(self):
        a, b = make((3, 4)), make((4,))
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_broadcast_scalar_shape_grad(self):
        a, b = make((3, 4)), make((1, 4))
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_grad(self):
        a, b = make((3, 4)), make((3, 4))
        check_gradients(lambda: (a * b * a).sum(), [a, b])

    def test_div_grad(self):
        a, b = make((3, 3)), Tensor(RNG.normal(size=(3, 3)) + 5.0, requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow_grad(self):
        a = Tensor(np.abs(RNG.normal(size=(3, 3))) + 0.5, requires_grad=True)
        check_gradients(lambda: (a**3.0).sum(), [a])

    def test_matmul_grad(self):
        a, b = make((3, 4)), make((4, 2))
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matvec_grad(self):
        a, v = make((3, 4)), make((4,))
        check_gradients(lambda: (a @ v).sum(), [a, v])

    def test_vecmat_grad(self):
        v, a = make((3,)), make((3, 4))
        check_gradients(lambda: (v @ a).sum(), [v, a])

    def test_nonlinearity_grads(self):
        a = make((4, 3))
        check_gradients(lambda: a.sigmoid().sum(), [a])
        check_gradients(lambda: a.tanh().sum(), [a])
        check_gradients(lambda: a.exp().sum(), [a])
        check_gradients(lambda: a.softplus().sum(), [a])

    def test_relu_grad_away_from_kink(self):
        a = Tensor(RNG.normal(size=(4, 3)) + np.sign(RNG.normal(size=(4, 3))) * 0.5,
                   requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_log_grad(self):
        a = Tensor(np.abs(RNG.normal(size=(3, 3))) + 1.0, requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sum_axis_grad(self):
        a = make((3, 4))
        check_gradients(lambda: (a.sum(axis=0) ** 2.0).sum(), [a])

    def test_mean_grad(self):
        a = make((3, 4))
        check_gradients(lambda: (a.mean(axis=1) ** 2.0).sum(), [a])

    def test_max_grad(self):
        a = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_transpose_grad(self):
        a = make((3, 4))
        b = make((3, 4))
        check_gradients(lambda: (a.T @ b).sum(), [a, b])

    def test_reshape_grad(self):
        a = make((3, 4))
        check_gradients(lambda: (a.reshape(2, 6) ** 2.0).sum(), [a])

    def test_grad_accumulates_across_uses(self):
        a = make((3,))
        out = (a * a).sum() + a.sum()
        out.backward()
        assert np.allclose(a.grad, 2 * a.data + 1.0)

    def test_zero_grad(self):
        a = make((3,))
        (a.sum()).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Regression guard: 5000-op chain must not hit recursion limits.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.001
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)
