"""Tests for the 13 baseline recommenders of Tables III-V."""

import numpy as np
import pytest

from repro.baselines import (BASELINES, CKAN, CKE, FM, KGAT, KGIN, KGNNLS, MF,
                             NFM, REDGNN, RGCN, BaselineConfig, PathSim,
                             PPRRecommender, RippleNet)
from repro.data import (disgenet_like, lastfm_like, new_item_split,
                        new_user_split, traditional_split)
from repro.eval import evaluate


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)


@pytest.fixture(scope="module")
def new_item(split):
    return new_item_split(split.dataset, fold=0, seed=0)


FAST = BaselineConfig(dim=16, epochs=3, seed=0)

EMBEDDING_MODELS = [MF, FM, NFM, RippleNet, KGNNLS, CKAN, KGIN, CKE, RGCN, KGAT]


class TestAllBaselinesContract:
    @pytest.mark.parametrize("model_cls", EMBEDDING_MODELS,
                             ids=[m.name for m in EMBEDDING_MODELS])
    def test_fit_and_score_shape(self, split, model_cls):
        model = model_cls(FAST).fit(split)
        scores = model.score_users([0, 1, 2])
        assert scores.shape == (3, split.dataset.num_items)
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("model_cls", EMBEDDING_MODELS,
                             ids=[m.name for m in EMBEDDING_MODELS])
    def test_training_reduces_loss(self, split, model_cls):
        model = model_cls(FAST).fit(split)
        losses = [stats.loss for stats in model.epoch_history]
        assert losses[-1] <= losses[0]

    @pytest.mark.parametrize("model_cls", EMBEDDING_MODELS,
                             ids=[m.name for m in EMBEDDING_MODELS])
    def test_beats_random_ranking(self, split, model_cls):
        """A trained model must beat the random-chance recall level."""
        model = model_cls(BaselineConfig(dim=32, epochs=15, seed=0)).fit(split)
        result = evaluate(model, split, max_users=30)
        chance = 20.0 / split.dataset.num_items
        assert result.recall > chance

    def test_registry_complete(self):
        assert len(BASELINES) == 13
        expected = {"MF", "FM", "NFM", "RippleNet", "KGNN-LS", "CKAN",
                    "KGIN", "CKE", "R-GCN", "KGAT", "PPR", "PathSim",
                    "REDGNN"}
        assert set(BASELINES) == expected

    def test_epoch_callback_fires(self, split):
        events = []
        MF(FAST).fit(split, epoch_callback=lambda e, m, t: events.append(e))
        assert events == [0, 1, 2]


class TestHeuristicBaselines:
    def test_ppr_recommender(self, split):
        model = PPRRecommender().fit(split)
        result = evaluate(model, split, max_users=30)
        chance = 20.0 / split.dataset.num_items
        assert result.recall > chance
        assert model.num_parameters() == 0

    def test_ppr_requires_fit(self):
        with pytest.raises(RuntimeError):
            PPRRecommender().score_users([0])

    def test_pathsim_paths_detected(self, split):
        model = PathSim().fit(split)
        assert "UIUI" in model.path_names
        assert "UIEI" in model.path_names

    def test_pathsim_user_kg_path(self):
        dataset = disgenet_like(seed=0, scale=0.4)
        model = PathSim().fit(traditional_split(dataset, seed=0))
        assert "UUI" in model.path_names
        assert "UII" in model.path_names  # gene-gene

    def test_pathsim_beats_chance(self, split):
        model = PathSim().fit(split)
        result = evaluate(model, split, max_users=30)
        assert result.recall > 20.0 / split.dataset.num_items

    def test_redgnn_trains_and_scores(self, split):
        model = REDGNN(dim=16, depth=3, epochs=2).fit(split)
        scores = model.score_users([0, 1])
        assert scores.shape == (2, split.dataset.num_items)
        assert model.num_parameters() > 0


class TestNewItemBehaviour:
    """Reproduces Table IV's qualitative split: embedding methods collapse
    on new items, non-embedding subgraph/path methods keep working.

    Uses a mid-size dataset: at very small scales the chance level
    (cutoff / #items) is so high that orderings drown in noise.
    """

    @pytest.fixture(scope="class")
    def big_new_item(self):
        return new_item_split(lastfm_like(seed=0, scale=0.6), fold=0, seed=0)

    @pytest.fixture(scope="class")
    def mf_recall(self, big_new_item):
        model = MF(BaselineConfig(dim=16, epochs=8, seed=0)).fit(big_new_item)
        return evaluate(model, big_new_item, max_users=40).recall

    def test_mf_near_chance_on_new_items(self, big_new_item, mf_recall):
        # MF has no signal for unseen items: at or below ~2x chance level.
        chance = 20.0 / big_new_item.dataset.num_items
        assert mf_recall < 2 * chance

    def test_pathsim_beats_mf_on_new_items(self, big_new_item, mf_recall):
        model = PathSim().fit(big_new_item)
        result = evaluate(model, big_new_item, max_users=40)
        assert result.recall > mf_recall

    def test_redgnn_beats_mf_on_new_items(self, big_new_item, mf_recall):
        model = REDGNN(dim=16, depth=4, epochs=6).fit(big_new_item)
        result = evaluate(model, big_new_item, max_users=40)
        assert result.recall > mf_recall

    def test_ppr_beats_mf_on_new_items(self, big_new_item, mf_recall):
        model = PPRRecommender().fit(big_new_item)
        result = evaluate(model, big_new_item, max_users=40)
        assert result.recall > mf_recall


class TestNewUserBehaviour:
    def test_heuristics_reach_new_users_via_user_kg(self):
        dataset = disgenet_like(seed=0, scale=0.5)
        split = new_user_split(dataset, fold=0, seed=0)
        chance = 20.0 / dataset.num_items
        ppr = evaluate(PPRRecommender().fit(split), split, max_users=20)
        assert ppr.recall > chance
        pathsim = evaluate(PathSim().fit(split), split, max_users=20)
        assert pathsim.recall > chance


class TestModelSpecifics:
    def test_fm_context_features_padded(self, split):
        model = FM(FAST)
        model.build(split)
        context = model._item_context
        assert context.shape == (split.dataset.num_items, model.context_size)
        assert context.max() <= model._dummy

    def test_nfm_has_mlp(self, split):
        model = NFM(FAST)
        model.build(split)
        names = {name for name, _ in model.named_parameters()}
        assert any("mlp_hidden" in name for name in names)

    def test_cke_transr_loss_defined(self, split):
        model = CKE(FAST)
        model.build(split)
        extra = model.extra_loss(np.array([0]), np.array([0]), np.array([1]))
        assert extra is not None
        assert np.isfinite(extra.item())

    def test_ripplenet_memories_cover_active_users(self, split):
        model = RippleNet(FAST)
        model.build(split)
        active = split.train.users_with_interactions()
        covered = sum(1 for user in active if int(user) in model._memories)
        assert covered / len(active) > 0.9

    def test_kgat_attention_normalized(self, split):
        model = KGAT(FAST)
        model.build(split)
        attention = model._attention()
        sums = np.zeros(model.ckg.num_nodes)
        np.add.at(sums, model.ckg.tails, attention)
        present = np.unique(model.ckg.tails)
        assert np.allclose(sums[present], 1.0)

    def test_kgin_requires_alignment(self, split):
        model = KGIN(FAST)
        broken = split.dataset
        original = broken.item_to_entity
        broken.item_to_entity = np.full(broken.num_items, -1, dtype=np.int64)
        try:
            with pytest.raises(ValueError):
                model.build(split)
        finally:
            broken.item_to_entity = original

    def test_rgcn_basis_decomposition_param_count(self, split):
        model = RGCN(BaselineConfig(dim=8, epochs=1, seed=0), num_layers=1,
                     num_bases=2)
        model.build(split)
        ckg = model.ckg
        expected = (ckg.num_nodes * 8          # node embeddings
                    + 2 * 8 * 8                # bases
                    + ckg.num_relations * 2    # coefficients
                    + 8 * 8)                   # self loop
        assert model.num_parameters() == expected
