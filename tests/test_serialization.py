"""Tests for model state serialization and run determinism."""

import numpy as np
import pytest

from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.baselines import MF, KGIN, BaselineConfig
from repro.data import lastfm_like, traditional_split


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)


class TestKUCNetStateDict:
    def test_roundtrip_preserves_scores(self, split):
        source = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                   TrainConfig(epochs=2, k=10, seed=0))
        source.fit(split)
        state = source.model.state_dict()

        target = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=99),
                                   TrainConfig(epochs=0, k=10, seed=0))
        target.prepare(split)
        target.model.load_state_dict(state)

        assert np.allclose(source.score_users([0, 1]),
                           target.score_users([0, 1]))

    def test_state_contains_all_layers(self, split):
        model = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                  TrainConfig(epochs=1, k=10, seed=0))
        model.fit(split)
        names = set(model.model.state_dict())
        for layer in range(3):
            assert any(name.startswith(f"layers.{layer}.") for name in names)
        assert "readout" in names


class TestDeterminism:
    def test_kucnet_same_seed_same_result(self, split):
        def run():
            model = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=7),
                                      TrainConfig(epochs=2, k=10, seed=7))
            model.fit(split)
            return model.score_users([0, 1, 2])

        assert np.allclose(run(), run())

    def test_kucnet_different_seed_differs(self, split):
        def run(seed):
            model = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=seed),
                                      TrainConfig(epochs=2, k=10, seed=seed))
            model.fit(split)
            return model.score_users([0, 1, 2])

        assert not np.allclose(run(1), run(2))

    @pytest.mark.parametrize("model_cls", [MF, KGIN])
    def test_baseline_same_seed_same_result(self, split, model_cls):
        def run():
            model = model_cls(BaselineConfig(dim=8, epochs=2, seed=3))
            model.fit(split)
            return model.score_users([0, 1])

        assert np.allclose(run(), run())


class TestBaselineStateDict:
    def test_mf_roundtrip(self, split):
        source = MF(BaselineConfig(dim=8, epochs=2, seed=0)).fit(split)
        target = MF(BaselineConfig(dim=8, epochs=0, seed=5))
        target.build(split)
        target.split = split
        target.load_state_dict(source.state_dict())
        assert np.allclose(source.score_users([0]), target.score_users([0]))


class TestModelPersistence:
    def test_save_load_roundtrip(self, split, tmp_path):
        source = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                   TrainConfig(epochs=2, k=10, seed=0))
        source.fit(split)
        path = str(tmp_path / "model.npz")
        source.save(path)

        restored = KUCNetRecommender.load(path, split)
        assert restored.model_config.dim == 8
        assert restored.train_config.k == 10
        assert np.allclose(source.score_users([0, 1, 2]),
                           restored.score_users([0, 1, 2]))

    def test_save_before_fit_raises(self, tmp_path):
        rec = KUCNetRecommender()
        with pytest.raises(RuntimeError):
            rec.save(str(tmp_path / "x.npz"))

    def test_suffixless_path_roundtrips(self, split, tmp_path):
        """Regression: ``save("model")`` wrote ``model.npz`` (np.savez
        appends the suffix) while ``load("model")`` looked for the bare
        name and raised FileNotFoundError."""
        source = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                   TrainConfig(epochs=1, k=10, seed=0))
        source.fit(split)
        path = str(tmp_path / "model")
        source.save(path)
        assert (tmp_path / "model.npz").exists()

        restored = KUCNetRecommender.load(path, split)
        assert np.allclose(source.score_users([0, 1]),
                           restored.score_users([0, 1]))

    def test_suffix_mix_and_match(self, split, tmp_path):
        """Either spelling on either side resolves to the same artifact."""
        source = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                   TrainConfig(epochs=1, k=10, seed=0))
        source.fit(split)
        source.save(str(tmp_path / "weights.npz"))
        restored = KUCNetRecommender.load(str(tmp_path / "weights"), split)
        assert np.allclose(source.score_users([0]),
                           restored.score_users([0]))

    def test_tuple_k_roundtrip(self, split, tmp_path):
        from repro.core import kucnet_adaptive
        source = kucnet_adaptive(KUCNetConfig(dim=8, depth=3, seed=0),
                                 TrainConfig(epochs=1, k=8, seed=0))
        source.fit(split)
        path = str(tmp_path / "adaptive.npz")
        source.save(path)
        restored = KUCNetRecommender.load(path, split)
        assert restored.train_config.k == (8, 4, 3)
