"""Tests for repro.runstore: registry, diff/trend, hook, live exporter."""

import copy
import json
import os
import threading
import types
import urllib.error
import urllib.request

import pytest

from repro import runstore, telemetry as tm
from repro.bench.artifact import SCHEMA
from repro.bench.compare import compare_reports
from repro.cli import main
from repro.engine import Engine
from repro.runstore import (MetricsExporter, RunRecorderHook, RunStore,
                            render_prometheus, robust_z_scores,
                            validate_prometheus_text)


@pytest.fixture(autouse=True)
def clean_telemetry_and_exporter():
    """Every test starts disabled, with no registry state or exporter."""
    tm.disable()
    tm.reset()
    yield
    runstore.stop_exporter()
    tm.disable()
    tm.reset()


def make_snapshot(counters=None, gauges=None):
    """A registry snapshot with the given counter totals."""
    registry = tm.MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.add(name, value)
    for name, value in (gauges or {}).items():
        registry.set_gauge(name, value)
    registry.record_span("train.epoch", 0.01, 0.01)
    registry.observe("autodiff.tape_bytes", 1024.0)
    return registry.snapshot()


def make_bench_report(counters, median=0.01, suite="quick"):
    """A minimal valid repro.bench/1 report with one workload."""
    return {
        "schema": SCHEMA, "suite": suite, "git_sha": "deadbeef",
        "machine": {}, "config": {}, "created_unix": 1_700_000_000.0,
        "manifest": {"record": "manifest", "run": f"bench:{suite}",
                     "seed": 0, "config": {}, "dataset": {}, "metrics": {},
                     "created_unix": 1_700_000_000.0},
        "workloads": {
            "train.epoch": {
                "median_seconds": median, "iqr_seconds": 0.001,
                "min_seconds": median, "max_seconds": median,
                "repeats": 3, "warmup": 1,
                "seconds": [median] * 3,
                "telemetry": make_snapshot(counters),
            },
        },
    }


def commit_run(store, kind="train", counters=None, name="train:test",
               **kwargs):
    manifest = tm.RunManifest(run=name, seed=0,
                              metrics={"recall@20": 0.25})
    return store.commit(kind, manifest,
                        snapshot=make_snapshot(counters or {"a": 1.0}),
                        **kwargs)


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "registry"))


class TestRunStore:
    def test_commit_writes_run_dir_and_index_line(self, store):
        record = commit_run(
            store, counters={"train.epochs": 3.0, "ppr.push_ops": 500.0},
            health_records=[{"record": "health", "epoch": 0},
                            {"record": "alert", "check": "grad_norm"}],
            wall_seconds=1.5)

        directory = store.run_dir(record.run_id)
        present = sorted(os.listdir(directory))
        assert present == ["health.json", "manifest.json", "metrics.json",
                           "record.json"]
        assert record.kind == "train"
        assert record.counters["train.epochs"] == 3.0
        assert record.alerts == 1
        assert record.wall_seconds == 1.5
        assert record.metrics == {"recall@20": 0.25}

        with open(store.index_path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 1
        assert lines[0]["run_id"] == record.run_id
        assert lines[0]["counters"]["ppr.push_ops"] == 500.0

    def test_round_trip_through_index_and_files(self, store):
        record = commit_run(store, counters={"graph.edges": 42.0})
        [loaded] = list(store.iter_records())
        assert loaded == record
        assert store.load_manifest(record.run_id)["run"] == "train:test"
        metrics = store.load_metrics(record.run_id)
        assert metrics["counters"]["graph.edges"]["total"] == 42.0

    def test_get_by_unique_prefix_and_ambiguity(self, store):
        first = commit_run(store)
        second = commit_run(store)
        assert store.get(first.run_id) == first
        # Both ids share the timestamp-kind-pid stem; the full stem
        # matches the first exactly, while a shorter shared prefix is
        # ambiguous.
        with pytest.raises(KeyError, match="ambiguous"):
            store.get(first.run_id[:10])
        assert store.get(second.run_id) == second
        with pytest.raises(KeyError, match="unknown run"):
            store.get("nope")

    def test_iter_records_is_lazy(self, store):
        for _ in range(3):
            commit_run(store)
        stream = store.iter_records()
        assert isinstance(stream, types.GeneratorType)
        assert next(stream).kind == "train"

    def test_records_limit_keeps_newest(self, store):
        ids = [commit_run(store).run_id for _ in range(4)]
        tail = store.records(limit=2)
        assert [r.run_id for r in tail] == ids[-2:]

    def test_gc_removes_oldest_and_rewrites_index(self, store):
        ids = [commit_run(store).run_id for _ in range(4)]
        would = store.gc(keep=1, dry_run=True)
        assert sorted(would) == sorted(ids[:3])
        assert len(store.records()) == 4  # dry run removed nothing

        removed = store.gc(keep=1)
        assert sorted(removed) == sorted(ids[:3])
        survivors = store.records()
        assert [r.run_id for r in survivors] == ids[-1:]
        for run_id in removed:
            assert not os.path.exists(store.run_dir(run_id))
        assert os.path.exists(store.run_dir(ids[-1]))

    def test_gc_by_kind_leaves_other_kinds_alone(self, store):
        train_ids = [commit_run(store).run_id for _ in range(2)]
        bench_id = commit_run(store, kind="bench").run_id
        removed = store.gc(keep=0, kind="train")
        assert sorted(removed) == sorted(train_ids)
        assert [r.run_id for r in store.records()] == [bench_id]

    def test_active_store_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv(runstore.ENV_RUNS_DIR, raising=False)
        assert runstore.active_store() is None
        explicit = runstore.active_store(str(tmp_path / "x"))
        assert explicit is not None and explicit.root.endswith("x")
        monkeypatch.setenv(runstore.ENV_RUNS_DIR, str(tmp_path / "y"))
        from_env = runstore.active_store()
        assert from_env is not None and from_env.root.endswith("y")

    def test_suppression_nests(self):
        assert not runstore.auto_commit_suppressed()
        with runstore.suppress_auto_commit():
            assert runstore.auto_commit_suppressed()
            with runstore.suppress_auto_commit():
                assert runstore.auto_commit_suppressed()
            assert runstore.auto_commit_suppressed()
        assert not runstore.auto_commit_suppressed()


class TestRunRecorderHook:
    def _fit(self, hook):
        engine = Engine(optimizer=None, hooks=[hook])
        engine.fit(step=lambda batch: None,
                   batches=lambda epoch: [(0, 1)], epochs=2)

    def test_commits_train_run_on_fit_end(self, store):
        with tm.enabled():
            tm.counter("train.pairs", 7)
            hook = RunRecorderHook(
                lambda: tm.RunManifest(run="train:hooked"), store=store)
            self._fit(hook)
        assert hook.last_record is not None
        [record] = store.records()
        assert record.kind == "train" and record.name == "train:hooked"
        assert record.counters["train.pairs"] == 7.0

    def test_inert_without_active_store(self, monkeypatch):
        monkeypatch.delenv(runstore.ENV_RUNS_DIR, raising=False)
        hook = RunRecorderHook(
            lambda: pytest.fail("manifest_fn must not run"))
        self._fit(hook)
        assert hook.last_record is None

    def test_suppressed_inside_cli_owned_commits(self, store):
        hook = RunRecorderHook(
            lambda: pytest.fail("manifest_fn must not run"), store=store)
        with runstore.suppress_auto_commit():
            self._fit(hook)
        assert hook.last_record is None
        assert store.records() == []

    def test_env_var_enables_recording(self, store, monkeypatch):
        monkeypatch.setenv(runstore.ENV_RUNS_DIR, store.root)
        hook = RunRecorderHook(lambda: tm.RunManifest(run="train:env"))
        self._fit(hook)
        [record] = store.records()
        assert record.name == "train:env"


class TestDiff:
    def test_bench_runs_reproduce_bench_compare_verdict(self, store):
        report = make_bench_report({"ppr.push_ops": 1000.0,
                                    "graph.edges": 64.0})
        manifest = tm.RunManifest.from_record(report["manifest"])
        a = store.commit("bench", manifest, bench_report=report)
        b = store.commit("bench", manifest,
                         bench_report=copy.deepcopy(report))

        _, _, result = runstore.diff_runs(store, a.run_id, b.run_id)
        direct = compare_reports(report, report)
        assert result.passed and direct.passed
        assert result.findings == direct.findings
        assert result.counters_compared == direct.counters_compared

    def test_doubled_counter_fails_like_bench_compare(self, store):
        base = make_bench_report({"ppr.push_ops": 1000.0})
        worse = copy.deepcopy(base)
        worse["workloads"]["train.epoch"]["telemetry"]["counters"][
            "ppr.push_ops"]["total"] *= 2
        manifest = tm.RunManifest.from_record(base["manifest"])
        a = store.commit("bench", manifest, bench_report=base)
        b = store.commit("bench", manifest, bench_report=worse)

        _, _, result = runstore.diff_runs(store, a.run_id, b.run_id)
        assert not result.passed
        [failure] = result.failures
        assert failure.gate == "counter" and failure.name == "ppr.push_ops"
        # Same verdict the bench compare engine gives on the raw reports.
        assert not compare_reports(base, worse).passed

    def test_non_bench_runs_diff_as_pseudo_workload(self, store):
        a = commit_run(store, counters={"train.epochs": 3.0},
                       wall_seconds=2.0)
        b = commit_run(store, counters={"train.epochs": 3.0},
                       wall_seconds=2.1)
        base_label, cand_label, result = runstore.diff_runs(
            store, a.run_id, b.run_id)
        assert base_label == a.run_id and cand_label == b.run_id
        assert result.passed
        assert result.workloads_compared == 1

        worse = commit_run(store, counters={"train.epochs": 9.0})
        _, _, regressed = runstore.diff_runs(store, a.run_id, worse.run_id)
        assert not regressed.passed

    def test_path_reference_loads_bench_artifact(self, store, tmp_path):
        report = make_bench_report({"graph.edges": 10.0})
        path = str(tmp_path / "BENCH_quick.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle)
        manifest = tm.RunManifest.from_record(report["manifest"])
        run = store.commit("bench", manifest,
                           bench_report=copy.deepcopy(report))
        label, _, result = runstore.diff_runs(store, path, run.run_id)
        assert label == "BENCH_quick.json"
        assert result.passed


class TestTrend:
    def test_robust_z_flags_outlier_not_masked_by_it(self):
        values = [100.0, 100.0, 100.0, 100.0, 1000.0]
        scores = robust_z_scores(values)
        assert scores[:4] == [0.0] * 4
        assert scores[4] == float("inf")  # MAD 0: any deviation flags

        noisy = [10.0, 11.0, 9.0, 10.5, 9.5, 100.0]
        scores = robust_z_scores(noisy)
        assert abs(scores[-1]) > 3.0
        assert all(abs(s) < 3.0 for s in scores[:-1])

    def test_compute_trend_flags_anomalous_run(self, store):
        for _ in range(4):
            commit_run(store, counters={"ppr.push_ops": 1000.0})
        odd = commit_run(store, counters={"ppr.push_ops": 5000.0})
        report = runstore.compute_trend(store)
        assert report.anomalous_run_ids == [odd.run_id]
        [trend] = [t for t in report.counters if t.name == "ppr.push_ops"]
        assert trend.anomalies == [odd.run_id]
        text = runstore.render_trend(report)
        assert "5000 !" in text and "anomalies" in text

    def test_trend_defaults_include_health_alerts_when_recorded(self, store):
        commit_run(store, counters={"health.alerts": 2.0})
        report = runstore.compute_trend(store)
        assert "health.alerts" in [t.name for t in report.counters]

    def test_trend_streams_index_without_opening_run_files(self, store,
                                                           monkeypatch):
        for _ in range(3):
            commit_run(store)
        monkeypatch.setattr(RunStore, "load_metrics",
                            lambda *a: pytest.fail("opened a run file"))
        report = runstore.compute_trend(store)
        assert len(report.runs) == 3


class TestExporter:
    def test_render_prometheus_labels_and_synthesized_health(self):
        snapshot = make_snapshot({"train.epochs": 3.0,
                                  "ppr.push_ops": 12.0},
                                 gauges={"ppr.residual_mass": 1e-3})
        text = render_prometheus(snapshot)
        assert 'repro_counter_total{name="train.epochs"} 3' in text
        assert 'repro_counter_total{name="ppr.push_ops"} 12' in text
        assert 'repro_counter_total{name="health.alerts"} 0' in text
        assert 'repro_gauge{name="ppr.residual_mass"}' in text
        assert 'repro_span_seconds_total{name="train.epoch"}' in text
        assert 'repro_histogram_max{name="autodiff.tape_bytes"} 1024' in text
        counts = validate_prometheus_text(text)
        assert counts["samples"] >= 6 and counts["families"] >= 4

    def test_validate_rejects_malformed_text(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus_text("this is { not prometheus\n")
        with pytest.raises(ValueError, match="no samples"):
            validate_prometheus_text("# TYPE repro_gauge gauge\n")
        with pytest.raises(ValueError, match="newline"):
            validate_prometheus_text("repro_gauge 1")

    def test_http_scrape_serves_live_and_published_metrics(self):
        registry = tm.MetricsRegistry()
        registry.add("train.epochs", 2.0)
        exporter = MetricsExporter(port=0, registry=registry,
                                   snapshot_interval=0.0)
        port = exporter.start()
        try:
            # Published snapshots (finished bench workloads) merge with
            # the live registry in one scrape.
            exporter.publish(make_snapshot({"ppr.push_ops": 7.0}))
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5) as reply:
                assert reply.status == 200
                assert "text/plain" in reply.headers["Content-Type"]
                body = reply.read().decode("utf-8")
            validate_prometheus_text(body)
            assert 'repro_counter_total{name="train.epochs"} 2' in body
            assert 'repro_counter_total{name="ppr.push_ops"} 7' in body
            assert 'repro_counter_total{name="health.alerts"} 0' in body

            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5) as reply:
                health = json.loads(reply.read().decode("utf-8"))
            assert health["status"] == "ok"
            assert health["health_alerts"] == 0.0

            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5)
        finally:
            exporter.stop()

    def test_singleton_start_stop_and_publish(self):
        assert runstore.active_exporter() is None
        runstore.publish_snapshot(make_snapshot({"x": 1.0}))  # no-op, no err
        exporter = runstore.start_exporter(0, snapshot_interval=0.0)
        try:
            assert runstore.active_exporter() is exporter
            assert runstore.start_exporter(0) is exporter  # idempotent
            runstore.publish_snapshot(make_snapshot({"ppr.sweeps": 4.0}))
            merged = exporter.combined_snapshot()
            assert merged["counters"]["ppr.sweeps"]["total"] == 4.0
        finally:
            runstore.stop_exporter()
        assert runstore.active_exporter() is None

    def test_taken_port_raises_clear_error(self):
        # Regression: binding a taken port used to leak the raw OSError
        # traceback; it now raises a RuntimeError pointing at port 0.
        first = MetricsExporter(port=0, registry=tm.MetricsRegistry(),
                                snapshot_interval=0.0)
        port = first.start()
        assert port > 0 and first.port == port  # ephemeral port reported
        second = MetricsExporter(port=port, registry=tm.MetricsRegistry(),
                                 snapshot_interval=0.0)
        try:
            with pytest.raises(RuntimeError, match="already in use"):
                second.start()
        finally:
            first.stop()

    def test_background_snapshot_thread_is_bounded(self):
        exporter = MetricsExporter(port=0, registry=tm.MetricsRegistry(),
                                   snapshot_interval=0.01, max_snapshots=3)
        exporter.start()
        try:
            deadline = threading.Event()
            deadline.wait(0.15)
            assert len(exporter._snapshots) <= 3
            assert exporter._snapshot_thread is not None
            assert exporter._snapshot_thread.daemon
        finally:
            exporter.stop()


class TestRunsCLI:
    def _seed(self, store):
        a = commit_run(store, counters={"train.epochs": 2.0})
        b = commit_run(store, counters={"train.epochs": 2.0})
        return a, b

    def test_list_shows_runs(self, store, capsys):
        a, b = self._seed(store)
        assert main(["runs", "list", "--dir", store.root]) == 0
        out = capsys.readouterr().out
        assert a.run_id in out and b.run_id in out

    def test_list_empty_registry(self, store, capsys):
        assert main(["runs", "list", "--dir", store.root]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show_prints_record_and_manifest(self, store, capsys):
        a, _ = self._seed(store)
        assert main(["runs", "show", a.run_id, "--dir", store.root]) == 0
        out = capsys.readouterr().out
        assert a.run_id in out and "train:test" in out

    def test_show_unknown_run_exits_2(self, store, capsys):
        assert main(["runs", "show", "missing", "--dir", store.root]) == 2
        assert "missing" in capsys.readouterr().err

    def test_diff_exit_codes_follow_verdict(self, store, capsys):
        a, b = self._seed(store)
        assert main(["runs", "diff", a.run_id, b.run_id,
                     "--dir", store.root]) == 0
        assert "PASS" in capsys.readouterr().out
        worse = commit_run(store, counters={"train.epochs": 20.0})
        assert main(["runs", "diff", a.run_id, worse.run_id,
                     "--dir", store.root]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_trend_renders_table(self, store, capsys):
        self._seed(store)
        assert main(["runs", "trend", "--dir", store.root,
                     "--counter", "train.epochs"]) == 0
        out = capsys.readouterr().out
        assert "train.epochs" in out and "no anomalies" in out

    def test_gc_dry_run_then_real(self, store, capsys):
        a, b = self._seed(store)
        assert main(["runs", "gc", "--keep", "1", "--dry-run",
                     "--dir", store.root]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert main(["runs", "gc", "--keep", "1",
                     "--dir", store.root]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert [r.run_id for r in store.records()] == [b.run_id]


class TestManifestCoercionInCommit:
    def test_numpy_and_path_configs_commit_cleanly(self, store, tmp_path):
        import numpy as np

        manifest = tm.RunManifest(
            run="train:coerce", seed=np.int64(3),
            config={"out": tmp_path / "weights.npz",
                    "budgets": np.array([10, 20, 30])},
            metrics={"loss": np.float32(0.5)})
        record = store.commit("train", manifest,
                              snapshot=make_snapshot({"a": 1.0}))
        loaded = store.load_manifest(record.run_id)
        assert loaded["config"]["budgets"] == [10, 20, 30]
        assert loaded["config"]["out"].endswith("weights.npz")
        assert record.metrics["loss"] == 0.5
