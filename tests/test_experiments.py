"""Tests for the experiment harness: profiles, factories, tables, runners."""

import os

import numpy as np
import pytest

from repro.baselines import Recommender
from repro.experiments import (EXPERIMENTS, PROFILES, Profile, TableResult,
                               TABLE3_METHODS, TABLE4_METHODS,
                               active_profile, kucnet_settings, make_method,
                               run_table2)
from repro.experiments.profiles import active_profile as profile_fn

MINI = Profile(name="mini", scale=0.15, baseline_epochs=1, kucnet_epochs=1,
               eval_users=5, num_seeds=1)


class TestProfiles:
    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert active_profile().name == "quick"

    def test_env_selects_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert active_profile().name == "full"

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            active_profile()

    def test_profiles_registered(self):
        assert set(PROFILES) == {"quick", "full"}


class TestMethodFactory:
    @pytest.mark.parametrize("name", TABLE4_METHODS)
    def test_all_methods_instantiable(self, name):
        model = make_method(name, "lastfm_like", "traditional", MINI)
        assert isinstance(model, Recommender) or hasattr(model, "score_users")

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            make_method("GPT", "lastfm_like", "traditional", MINI)

    def test_kucnet_settings_per_setting(self):
        traditional = kucnet_settings("lastfm_like", "traditional", MINI)
        new_item = kucnet_settings("lastfm_like", "new_item", MINI)
        assert traditional.model_config.depth == 3
        assert new_item.model_config.depth == 4
        assert new_item.train_config.k < traditional.train_config.k

    def test_kucnet_overrides(self):
        model = kucnet_settings("lastfm_like", "traditional", MINI, depth=5,
                                k=7, sampler="random")
        assert model.model_config.depth == 5
        assert model.train_config.k == 7
        assert model.train_config.sampler == "random"

    def test_table_method_lists(self):
        assert TABLE3_METHODS[-1] == "KUCNet"
        assert set(TABLE4_METHODS) - set(TABLE3_METHODS) == {"PPR", "PathSim",
                                                             "REDGNN"}


class TestTableResult:
    @pytest.fixture
    def table(self):
        return TableResult(
            title="Demo",
            columns=["recall", "ndcg"],
            rows={"MF": {"recall": 0.1, "ndcg": 0.05},
                  "KUCNet": {"recall": 0.2, "ndcg": 0.15}},
            paper={"MF": {"recall": 0.07}, "KUCNet": {"recall": 0.12,
                                                      "ndcg": 0.11}},
            notes=["a note"])

    def test_render_contains_rows_and_paper(self, table):
        text = table.render()
        assert "KUCNet" in text
        assert "0.2000" in text
        assert "recall (paper)" in text
        assert "0.1200" in text
        assert "note: a note" in text

    def test_missing_cells_render_as_dash(self, table):
        assert "-" in table.render()  # MF has no paper ndcg

    def test_markdown(self, table):
        markdown = table.render_markdown()
        assert markdown.startswith("### Demo")
        assert "| MF |" in markdown

    def test_save(self, table, tmp_path):
        path = table.save(str(tmp_path), "demo")
        assert os.path.exists(path)
        with open(path) as handle:
            assert "KUCNet" in handle.read()

    def test_save_json_round_trips_schema_and_cells(self, table, tmp_path):
        import json

        path = table.save_json(str(tmp_path), "demo")
        assert path.endswith("demo.json")
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == "repro.table/1"
        assert payload["title"] == "Demo"
        assert payload["rows"]["KUCNet"]["recall"] == 0.2
        assert payload["paper"]["MF"] == {"recall": 0.07}
        assert payload["notes"] == ["a note"]


class TestRunners:
    def test_registry_covers_all_tables_and_figures(self):
        expected = {"table2", "table3", "table4", "table5", "table6",
                    "table7", "table8", "table9", "fig4", "fig5", "fig6",
                    "fig7", "ppr_backends"}
        assert set(EXPERIMENTS) == expected

    def test_run_table2_mini(self):
        result = run_table2(MINI)
        assert set(result.rows) == {"lastfm_like", "amazon_book_like",
                                    "alibaba_ifashion_like", "disgenet_like"}
        for cells in result.rows.values():
            assert cells["interactions"] > 0
            assert cells["triplets"] > 0
        # paper side-by-side present
        assert result.paper["lastfm_like"]["users"] == 23566


class TestPaperValues:
    """Sanity checks of the transcribed paper numbers in experiments.paper."""

    def test_table3_rows_complete(self):
        from repro.experiments import paper
        for dataset, rows in paper.PAPER_TABLE3.items():
            assert set(rows) == set(TABLE3_METHODS), dataset
            for recall, ndcg in rows.values():
                assert 0.0 <= ndcg <= recall <= 1.0

    def test_table4_rows_complete(self):
        from repro.experiments import paper
        for dataset, rows in paper.PAPER_TABLE4.items():
            assert set(rows) == set(TABLE4_METHODS), dataset

    def test_kucnet_is_bold_where_paper_says(self):
        """Spot-check the transcription against the paper's bold cells."""
        from repro.experiments import paper
        t3 = paper.PAPER_TABLE3
        # Table III: KUCNet best recall on Last-FM and Amazon-Book,
        # KGIN best on iFashion.
        for dataset in ("lastfm_like", "amazon_book_like"):
            best = max(t3[dataset], key=lambda m: t3[dataset][m][0])
            assert best == "KUCNet"
        ifashion_best = max(t3["alibaba_ifashion_like"],
                            key=lambda m: t3["alibaba_ifashion_like"][m][0])
        assert ifashion_best == "KGIN"
        # Table IV: KUCNet best recall everywhere.
        for dataset, rows in paper.PAPER_TABLE4.items():
            assert max(rows, key=lambda m: rows[m][0]) == "KUCNet", dataset

    def test_table8_depth_grids(self):
        from repro.experiments import paper
        for label, cells in paper.PAPER_TABLE8.items():
            assert set(cells) == {3, 4, 5}, label
