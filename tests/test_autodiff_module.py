"""Tests for Module/Parameter discovery, layers, and optimizers."""

import numpy as np
import pytest

from repro.autodiff import (Adam, Dropout, Embedding, Linear, Module,
                            Parameter, ReLU, SGD, Sequential, Tensor)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 1)
        self.extra = Parameter(np.zeros(3))
        self.blocks = [Linear(2, 2), Linear(2, 2)]
        self.named = {"head": Linear(3, 3)}

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModule:
    def test_parameter_discovery_recurses(self):
        net = TinyNet()
        names = {name for name, _ in net.named_parameters()}
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "extra" in names
        assert "blocks.0.weight" in names
        assert "named.head.weight" in names

    def test_num_parameters(self):
        layer = Linear(4, 8)
        assert layer.num_parameters() == 4 * 8 + 8

    def test_linear_no_bias(self):
        layer = Linear(4, 8, bias=False)
        assert layer.num_parameters() == 32

    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.load_state_dict(net1.state_dict())
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(net1(x).data, net2(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("extra")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5), ReLU())
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([0, 3, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[1], out.data[2])

    def test_gradient_only_on_touched_rows(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        emb(np.array([2, 2, 5])).sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[2], 2.0)
        assert np.allclose(grad[5], 1.0)
        assert np.allclose(grad[0], 0.0)


class TestOptimizers:
    @staticmethod
    def _quadratic_problem():
        # Minimize ||w - target||^2; both optimizers should converge.
        target = np.array([1.0, -2.0, 3.0])
        w = Parameter(np.zeros(3))
        return w, target

    def test_sgd_converges(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((w - Tensor(target)) ** 2.0).sum()
            loss.backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((w - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-3)

    def test_adam_converges(self):
        w, target = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((w - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        w1, target = self._quadratic_problem()
        w2 = Parameter(np.zeros(3))
        plain, decayed = Adam([w1], lr=0.1), Adam([w2], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            for w, opt in ((w1, plain), (w2, decayed)):
                opt.zero_grad()
                ((w - Tensor(target)) ** 2.0).sum().backward()
                opt.step()
        assert np.linalg.norm(w2.data) < np.linalg.norm(w1.data)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_step_skips_missing_grads(self):
        w = Parameter(np.ones(2))
        opt = Adam([w], lr=0.1)
        opt.step()  # no backward happened; must not crash
        assert np.allclose(w.data, 1.0)


class TestTrainingIntegration:
    def test_learn_xor(self):
        """End-to-end: a 2-layer MLP learns XOR with Adam."""
        rng = np.random.default_rng(42)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        net = Sequential(Linear(2, 8, rng=rng), Tanh_(), Linear(8, 1, rng=rng))
        opt = Adam(net.parameters(), lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            logits = net(Tensor(x)).reshape(4)
            from repro.autodiff import binary_cross_entropy_with_logits
            loss = binary_cross_entropy_with_logits(logits, y)
            loss.backward()
            opt.step()
        preds = (net(Tensor(x)).data.reshape(4) > 0).astype(float)
        assert np.array_equal(preds, y)


class Tanh_(Module):
    def forward(self, x):
        return x.tanh()
