"""Tests for functional ops: gathers, segment reductions, losses."""

import numpy as np
import pytest

from repro.autodiff import (Tensor, binary_cross_entropy_with_logits, bpr_loss,
                            check_gradients, concat, gather_rows, l2_penalty,
                            log_sigmoid, segment_max, segment_softmax,
                            segment_sum, softmax, stack)
from repro.autodiff.ops import dropout

RNG = np.random.default_rng(1)


def make(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestGatherScatter:
    def test_gather_forward(self):
        x = make((5, 3))
        idx = np.array([0, 2, 2, 4])
        out = gather_rows(x, idx)
        assert np.allclose(out.data, x.data[idx])

    def test_gather_grad_accumulates_duplicates(self):
        x = make((5, 3))
        idx = np.array([1, 1, 1])
        gather_rows(x, idx).sum().backward()
        assert np.allclose(x.grad[1], 3.0)
        assert np.allclose(x.grad[0], 0.0)

    def test_gather_gradcheck(self):
        x = make((4, 2))
        idx = np.array([0, 3, 3, 1, 2])
        check_gradients(lambda: (gather_rows(x, idx) ** 2.0).sum(), [x])

    def test_segment_sum_forward(self):
        x = Tensor(np.arange(8, dtype=float).reshape(4, 2), requires_grad=True)
        seg = np.array([0, 0, 2, 2])
        out = segment_sum(x, seg, 3)
        assert out.shape == (3, 2)
        assert np.allclose(out.data[0], x.data[0] + x.data[1])
        assert np.allclose(out.data[1], 0.0)
        assert np.allclose(out.data[2], x.data[2] + x.data[3])

    def test_segment_sum_gradcheck(self):
        x = make((5, 2))
        seg = np.array([0, 1, 1, 0, 2])
        check_gradients(lambda: (segment_sum(x, seg, 3) ** 2.0).sum(), [x])

    def test_segment_sum_length_mismatch_raises(self):
        x = make((4, 2))
        with pytest.raises(ValueError):
            segment_sum(x, np.array([0, 1]), 2)

    def test_segment_max_forward(self):
        x = Tensor(np.array([[1.0], [5.0], [2.0]]), requires_grad=True)
        out = segment_max(x, np.array([0, 0, 1]), 2)
        assert out.data[0, 0] == 5.0
        assert out.data[1, 0] == 2.0

    def test_segment_softmax_sums_to_one(self):
        x = make((6,))
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = segment_softmax(x, seg, 3)
        sums = np.zeros(3)
        np.add.at(sums, seg, out.data)
        assert np.allclose(sums, 1.0)

    def test_segment_softmax_gradcheck(self):
        x = make((5,))
        seg = np.array([0, 0, 1, 1, 1])
        check_gradients(lambda: (segment_softmax(x, seg, 2) * segment_softmax(x, seg, 2)).sum(),
                        [x], atol=1e-4)


class TestShapeOps:
    def test_concat_forward_and_grad(self):
        a, b = make((2, 3)), make((4, 3))
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: (concat([a, b], axis=0) ** 2.0).sum(), [a, b])

    def test_concat_axis1(self):
        a, b = make((2, 3)), make((2, 2))
        assert concat([a, b], axis=1).shape == (2, 5)

    def test_stack(self):
        a, b = make((3,)), make((3,))
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda: (stack([a, b]) ** 2.0).sum(), [a, b])


class TestActivationsAndLosses:
    def test_softmax_rows_sum_to_one(self):
        x = make((4, 6))
        assert np.allclose(softmax(x, axis=-1).data.sum(axis=-1), 1.0)

    def test_softmax_gradcheck(self):
        x = make((3, 4))
        check_gradients(lambda: (softmax(x) * softmax(x)).sum(), [x], atol=1e-4)

    def test_log_sigmoid_stable(self):
        x = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        y = log_sigmoid(x).data
        assert np.all(np.isfinite(y))
        assert y[0] == pytest.approx(-1000.0)
        assert y[2] == pytest.approx(0.0, abs=1e-12)

    def test_bpr_loss_value(self):
        pos = Tensor(np.array([2.0]))
        neg = Tensor(np.array([0.0]))
        expected = -np.log(1.0 / (1.0 + np.exp(-2.0)))
        assert bpr_loss(pos, neg).item() == pytest.approx(expected)

    def test_bpr_loss_decreases_with_margin(self):
        neg = Tensor(np.zeros(4))
        low = bpr_loss(Tensor(np.full(4, 0.1)), neg).item()
        high = bpr_loss(Tensor(np.full(4, 3.0)), neg).item()
        assert high < low

    def test_bpr_gradcheck(self):
        pos, neg = make((6,)), make((6,))
        check_gradients(lambda: bpr_loss(pos, neg), [pos, neg])

    def test_bce_with_logits_matches_naive(self):
        logits = make((8,))
        labels = (RNG.random(8) > 0.5).astype(float)
        loss = binary_cross_entropy_with_logits(logits, labels).item()
        p = 1.0 / (1.0 + np.exp(-logits.data))
        naive = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        assert loss == pytest.approx(naive)

    def test_bce_gradcheck(self):
        logits = make((5,))
        labels = np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        check_gradients(lambda: binary_cross_entropy_with_logits(logits, labels), [logits])

    def test_l2_penalty(self):
        a, b = make((2, 2)), make((3,))
        value = l2_penalty([a, b]).item()
        assert value == pytest.approx((a.data**2).sum() + (b.data**2).sum())

    def test_l2_penalty_empty(self):
        assert l2_penalty([]).item() == 0.0


class TestDropout:
    def test_eval_mode_identity(self):
        x = make((10, 10))
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_training_zeroes_and_rescales(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((200, 50)))
        out = dropout(x, 0.5, training=True, rng=rng)
        zero_fraction = (out.data == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        surviving = out.data[out.data != 0]
        assert np.allclose(surviving, 2.0)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            dropout(make((2,)), 1.0, training=True)
