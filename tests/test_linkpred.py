"""Tests for the KG link-prediction subsystem."""

import numpy as np
import pytest

from repro.graph import KnowledgeGraph
from repro.linkpred import (DistMult, LinkPredConfig, LinkPredictor,
                            SubgraphLinkPredConfig, SubgraphLinkPredictor,
                            TransE, TransR, relational_graph_from_kg,
                            split_triplets)


@pytest.fixture(scope="module")
def kg():
    """A KG with planted structure: entities in two clusters, relation 0
    links within clusters, relation 1 links to per-cluster hubs."""
    rng = np.random.default_rng(0)
    num_entities = 40
    triplets = []
    for entity in range(30):
        cluster = entity % 2
        # relation 0: within-cluster ring
        triplets.append((entity, 0, (entity + 2) % 30))
        # relation 1: link to the cluster hub (entities 30/31)
        triplets.append((entity, 1, 30 + cluster))
        if rng.random() < 0.5:
            triplets.append((entity, 0, (entity + 4) % 30))
    return KnowledgeGraph(num_entities, 2, triplets)


class TestScorers:
    @pytest.mark.parametrize("scorer_cls", [TransE, DistMult, TransR])
    def test_score_shapes(self, kg, scorer_cls):
        scorer = scorer_cls(kg.num_entities, kg.num_relations, 8,
                            rng=np.random.default_rng(0))
        scores = scorer.score(kg.heads[:5], kg.relations[:5], kg.tails[:5])
        assert scores.shape == (5,)

    @pytest.mark.parametrize("scorer_cls", [TransE, DistMult, TransR])
    def test_score_all_tails(self, kg, scorer_cls):
        scorer = scorer_cls(kg.num_entities, kg.num_relations, 8,
                            rng=np.random.default_rng(0))
        scores = scorer.score_all_tails(0, 0)
        assert scores.shape == (kg.num_entities,)
        assert np.all(np.isfinite(scores))

    def test_transe_gradients_flow(self, kg):
        scorer = TransE(kg.num_entities, kg.num_relations, 8,
                        rng=np.random.default_rng(0))
        loss = -scorer.score(kg.heads[:4], kg.relations[:4], kg.tails[:4]).mean()
        loss.backward()
        assert scorer.entity_embedding.weight.grad is not None
        assert scorer.relation_embedding.weight.grad is not None

    def test_transr_projection_grad(self, kg):
        scorer = TransR(kg.num_entities, kg.num_relations, 4,
                        rng=np.random.default_rng(0))
        loss = -scorer.score(kg.heads[:4], kg.relations[:4], kg.tails[:4]).mean()
        loss.backward()
        assert scorer.projection.grad is not None
        assert np.abs(scorer.projection.grad).sum() > 0


class TestSplit:
    def test_partition(self, kg):
        train, test = split_triplets(kg, test_fraction=0.2, seed=0)
        assert train.shape[0] + test.shape[0] == kg.num_triplets
        assert test.shape[0] == round(kg.num_triplets * 0.2)

    def test_validation(self, kg):
        with pytest.raises(ValueError):
            split_triplets(kg, test_fraction=0.0)


class TestLinkPredictor:
    def test_transe_learns_planted_structure(self, kg):
        train, test = split_triplets(kg, test_fraction=0.15, seed=0)
        predictor = LinkPredictor(LinkPredConfig(scorer="transe", dim=16,
                                                 epochs=40, seed=0))
        predictor.fit(kg, train)
        result = predictor.evaluate(test)
        # random MRR over 40 entities is ~0.11; planted structure should
        # be learnable well above that.
        assert result.mrr > 0.25, f"transe: {result}"

    def test_distmult_learns_some_structure(self, kg):
        """DistMult is a *symmetric* scorer, so the directed ring relation
        is beyond it; it should still beat random via the hub relation."""
        train, test = split_triplets(kg, test_fraction=0.15, seed=0)
        predictor = LinkPredictor(LinkPredConfig(scorer="distmult", dim=32,
                                                 epochs=80, learning_rate=0.05,
                                                 seed=0))
        predictor.fit(kg, train)
        result = predictor.evaluate(test)
        assert result.mrr > 0.15, f"distmult: {result}"

    def test_loss_decreases(self, kg):
        predictor = LinkPredictor(LinkPredConfig(dim=8, epochs=10, seed=0))
        predictor.fit(kg)
        assert predictor.losses[-1] < predictor.losses[0]

    def test_filtered_ranking_masks_known_tails(self, kg):
        predictor = LinkPredictor(LinkPredConfig(dim=8, epochs=2, seed=0))
        predictor.fit(kg)
        # every known tail except the target is filtered, so the rank of
        # a training triplet cannot exceed num_entities
        rank = predictor.rank_tail(int(kg.heads[0]), int(kg.relations[0]),
                                   int(kg.tails[0]))
        assert 1 <= rank <= kg.num_entities

    def test_unknown_scorer_rejected(self):
        with pytest.raises(ValueError):
            LinkPredictor(LinkPredConfig(scorer="rotate"))

    def test_evaluate_requires_triplets(self, kg):
        predictor = LinkPredictor(LinkPredConfig(dim=8, epochs=1, seed=0))
        predictor.fit(kg)
        with pytest.raises(ValueError):
            predictor.evaluate(np.empty((0, 3)))


class TestRelationalGraph:
    def test_wraps_kg_with_reverses(self, kg):
        graph = relational_graph_from_kg(kg)
        assert graph.num_nodes == kg.num_entities
        assert graph.num_edges == 2 * kg.num_triplets
        assert graph.num_relations == 2 * kg.num_relations

    def test_out_edges_work(self, kg):
        graph = relational_graph_from_kg(kg)
        heads, rels, tails = graph.out_edges(np.asarray([0]))
        assert np.all(heads == 0)
        assert heads.size > 0


class TestSubgraphLinkPredictor:
    def test_fits_and_evaluates(self, kg):
        train, test = split_triplets(kg, test_fraction=0.15, seed=0)
        predictor = SubgraphLinkPredictor(
            SubgraphLinkPredConfig(dim=16, depth=3, epochs=8, seed=0))
        predictor.fit(kg, train)
        result = predictor.evaluate(test)
        assert result.mrr > 0.15  # clearly above the ~0.11 random level
        assert predictor.losses[-1] < predictor.losses[0]

    def test_inductive_on_unseen_tails(self, kg):
        """The subgraph predictor scores entities with no trained
        embedding (here: all of them — it has no entity table at all)."""
        predictor = SubgraphLinkPredictor(
            SubgraphLinkPredConfig(dim=8, depth=3, epochs=2, seed=0))
        predictor.fit(kg)
        # no parameter array scales with the entity count: the predictor
        # would have identical size on a KG with 10x the entities
        for layer in predictor.layers:
            for param in layer.parameters():
                assert kg.num_entities not in param.shape
        assert kg.num_entities not in predictor.readout.shape

    def test_rank_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SubgraphLinkPredictor().rank_tail(0, 0, 1)
