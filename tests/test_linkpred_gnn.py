"""Tests for the GNN link predictors: CompGCN and NBFNet."""

import numpy as np
import pytest

from repro.graph import KnowledgeGraph
from repro.linkpred import (CompGCN, GNNLinkPredConfig, GNNLinkPredictor,
                            NBFNet, split_triplets)


@pytest.fixture(scope="module")
def kg():
    triplets = []
    for entity in range(30):
        triplets.append((entity, 0, (entity + 2) % 30))
        triplets.append((entity, 1, 30 + entity % 2))
    return KnowledgeGraph(40, 2, triplets)


class TestCompGCN:
    def test_encode_shapes(self, kg):
        model = CompGCN(kg, dim=8, num_layers=2,
                        rng=np.random.default_rng(0))
        entities, relations = model.encode()
        assert entities.shape == (kg.num_entities, 8)
        assert relations.shape == (2 * kg.num_relations, 8)

    def test_score_shape_and_gradients(self, kg):
        model = CompGCN(kg, dim=8, rng=np.random.default_rng(0))
        scores = model.score(kg.heads[:4], kg.relations[:4], kg.tails[:4])
        assert scores.shape == (4,)
        (-scores.mean()).backward()
        assert model.entity_embedding.weight.grad is not None
        assert model.relation_embedding.weight.grad is not None

    def test_transductive_parameters_scale_with_entities(self, kg):
        model = CompGCN(kg, dim=8, rng=np.random.default_rng(0))
        shapes = [p.shape for p in model.parameters()]
        assert (kg.num_entities, 8) in shapes  # has an entity table


class TestNBFNet:
    def test_pair_states_shape(self, kg):
        model = NBFNet(kg, dim=8, num_layers=2,
                       rng=np.random.default_rng(0))
        state = model.pair_states(np.array([0, 5]), np.array([0, 1]))
        assert state.shape == (2 * kg.num_entities, 8)

    def test_boundary_condition(self, kg):
        """Before propagation contributes, only the head row is non-zero;
        after L layers unreachable entities stay at tanh(0 + boundary)=0."""
        model = NBFNet(kg, dim=8, num_layers=1,
                       rng=np.random.default_rng(0))
        state = model.pair_states(np.array([0]), np.array([0]))
        values = np.abs(state.data).sum(axis=1)
        # entities 32..39 are isolated: never reached, no boundary
        assert np.allclose(values[32:40], 0.0)

    def test_inductive_no_entity_table(self, kg):
        model = NBFNet(kg, dim=8, rng=np.random.default_rng(0))
        for param in model.parameters():
            assert kg.num_entities not in param.shape

    def test_score_all_tails_matches_score(self, kg):
        model = NBFNet(kg, dim=8, rng=np.random.default_rng(0))
        all_scores = model.score_all_tails(0, 0)
        some = model.score(np.array([0, 0]), np.array([0, 0]),
                           np.array([2, 7])).data
        assert np.allclose(all_scores[[2, 7]], some)


class TestGNNLinkPredictor:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            GNNLinkPredictor(GNNLinkPredConfig(model="gat"))

    @pytest.mark.parametrize("model", ["compgcn", "nbfnet"])
    def test_fit_evaluate_beats_random(self, kg, model):
        train, test = split_triplets(kg, test_fraction=0.15, seed=0)
        predictor = GNNLinkPredictor(
            GNNLinkPredConfig(model=model, dim=16, epochs=8, seed=0))
        predictor.fit(kg, train)
        result = predictor.evaluate(test)
        assert result.mrr > 0.12  # random is ~0.11 over 40 entities
        assert predictor.losses[-1] <= predictor.losses[0]

    def test_nbfnet_beats_compgcn_inductively(self, kg):
        """The subgraph-lineage claim (§II-C): the inductive DP method
        outranks the transductive GNN on this sparse KG."""
        train, test = split_triplets(kg, test_fraction=0.15, seed=0)
        results = {}
        for model in ("compgcn", "nbfnet"):
            predictor = GNNLinkPredictor(
                GNNLinkPredConfig(model=model, dim=16, epochs=10, seed=0))
            predictor.fit(kg, train)
            results[model] = predictor.evaluate(test).mrr
        assert results["nbfnet"] > results["compgcn"]

    def test_rank_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GNNLinkPredictor().rank_tail(0, 0, 1)


class TestWeightDecayThreading:
    """Regression: the GNN loops used to build Adam with no decay at all."""

    def test_gnn_default_matches_linkpred_config(self, kg):
        from repro.linkpred import LinkPredConfig

        assert GNNLinkPredConfig().weight_decay == LinkPredConfig().weight_decay

    def test_gnn_optimizer_sees_configured_value(self, kg):
        config = GNNLinkPredConfig(model="compgcn", dim=4, num_layers=1,
                                   epochs=1, batch_size=16,
                                   weight_decay=3e-4, seed=0)
        predictor = GNNLinkPredictor(config).fit(kg)
        assert predictor.optimizer.weight_decay == 3e-4

    def test_gnn_optimizer_sees_default(self, kg):
        config = GNNLinkPredConfig(model="compgcn", dim=4, num_layers=1,
                                   epochs=1, batch_size=16, seed=0)
        predictor = GNNLinkPredictor(config).fit(kg)
        assert predictor.optimizer.weight_decay == 1e-6

    def test_subgraph_optimizer_sees_configured_value(self, kg):
        from repro.linkpred import (SubgraphLinkPredConfig,
                                    SubgraphLinkPredictor)

        config = SubgraphLinkPredConfig(dim=4, depth=2, epochs=1,
                                        batch_size=16, weight_decay=2e-5,
                                        seed=0)
        predictor = SubgraphLinkPredictor(config).fit(kg)
        assert predictor.optimizer.weight_decay == 2e-5
        assert SubgraphLinkPredConfig().weight_decay == 1e-6


class TestEngineHistory:
    def test_gnn_history_is_epoch_stats(self, kg):
        from repro.engine import EpochStats

        config = GNNLinkPredConfig(model="compgcn", dim=4, num_layers=1,
                                   epochs=2, batch_size=16, seed=0)
        predictor = GNNLinkPredictor(config).fit(kg)
        assert len(predictor.history) == 2
        assert all(isinstance(s, EpochStats) for s in predictor.history)
        assert predictor.losses == [s.loss for s in predictor.history]

    def test_gnn_emits_train_epoch_spans(self, kg):
        from repro import telemetry

        config = GNNLinkPredConfig(model="compgcn", dim=4, num_layers=1,
                                   epochs=2, batch_size=16, seed=0)
        with telemetry.enabled():
            telemetry.reset()
            GNNLinkPredictor(config).fit(kg)
            snapshot = telemetry.get_registry().snapshot()
        assert snapshot["spans"]["train.epoch"]["count"] == 2
        assert snapshot["spans"]["train.batch"]["count"] > 0
