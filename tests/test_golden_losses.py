"""Golden-loss determinism guard for the repro.engine migration.

The fixtures in ``tests/fixtures/golden_losses.json`` were recorded from
the pre-engine hand-rolled loops; the engine-backed trainers must
reproduce them *bitwise* (exact ``==``, no tolerance).  If one of these
tests fails, a change altered either the training math or the RNG
consumption order of a migrated loop — see ``tests/golden_losses.py``
for the pinned configurations and the regeneration procedure.
"""

import pytest

from .golden_losses import compute_golden_losses, load_golden_losses


@pytest.fixture(scope="module")
def trajectories():
    return compute_golden_losses()


@pytest.fixture(scope="module")
def golden():
    return load_golden_losses()


@pytest.mark.parametrize("trainer", ["kucnet", "mf", "transe"])
def test_per_epoch_losses_bitwise_identical(trajectories, golden, trainer):
    assert trajectories[trainer] == golden[trainer], (
        f"{trainer}: fixed-seed per-epoch losses diverged from the "
        "pre-engine trajectory — the engine migration contract is "
        "bitwise determinism")


def test_fixture_covers_all_three_loop_families(golden):
    assert set(golden) == {"kucnet", "mf", "transe"}
    assert all(len(losses) == 3 for losses in golden.values())
