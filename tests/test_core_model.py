"""Tests for the KUCNet model: layers, propagation, scoring, gradients."""

import numpy as np
import pytest

from repro.autodiff import Tensor, bpr_loss
from repro.core import KUCNet, KUCNetConfig
from repro.core.layers import AttentionMessagePassing
from repro.data import lastfm_like, traditional_split
from repro.ppr import personalized_pagerank_batch
from repro.sampling import build_user_centric_graph


@pytest.fixture(scope="module")
def setup():
    dataset = lastfm_like(seed=0, scale=0.2)
    split = traditional_split(dataset, seed=0)
    ckg = dataset.build_ckg(split.train)
    users = [0, 1, 2]
    ppr = personalized_pagerank_batch(ckg, users)
    graph = build_user_centric_graph(ckg, users, depth=3,
                                     ppr_scores=ppr.scores, k=10)
    return dataset, split, ckg, graph


class TestLayer:
    def test_output_shape(self, setup):
        _, _, ckg, graph = setup
        layer = AttentionMessagePassing(dim=8, attn_dim=3,
                                        num_relations=ckg.num_relations,
                                        rng=np.random.default_rng(0))
        h0 = Tensor(np.zeros((graph.layer_size(0), 8)))
        hidden, attention = layer(h0, graph.layers[0], graph.layer_size(1),
                                  collect_attention=True)
        assert hidden.shape == (graph.layer_size(1), 8)
        assert attention.shape == (graph.layers[0].num_edges,)

    def test_attention_omitted_by_default(self, setup):
        _, _, ckg, graph = setup
        layer = AttentionMessagePassing(dim=8, attn_dim=3,
                                        num_relations=ckg.num_relations,
                                        rng=np.random.default_rng(0))
        h0 = Tensor(np.zeros((graph.layer_size(0), 8)))
        _, attention = layer(h0, graph.layers[0], graph.layer_size(1))
        assert attention is None

    def test_attention_in_unit_interval(self, setup):
        _, _, ckg, graph = setup
        layer = AttentionMessagePassing(dim=8, attn_dim=3,
                                        num_relations=ckg.num_relations,
                                        rng=np.random.default_rng(0))
        h0 = Tensor(np.random.default_rng(0).normal(size=(graph.layer_size(0), 8)))
        _, attention = layer(h0, graph.layers[0], graph.layer_size(1),
                             collect_attention=True)
        assert np.all(attention >= 0)
        assert np.all(attention <= 1)

    def test_no_attention_variant_uses_ones(self, setup):
        _, _, ckg, graph = setup
        layer = AttentionMessagePassing(dim=8, attn_dim=3,
                                        num_relations=ckg.num_relations,
                                        use_attention=False,
                                        rng=np.random.default_rng(0))
        h0 = Tensor(np.zeros((graph.layer_size(0), 8)))
        _, attention = layer(h0, graph.layers[0], graph.layer_size(1),
                             collect_attention=True)
        assert np.all(attention == 1.0)

    def test_empty_layer_returns_zeros(self, setup):
        _, _, ckg, _ = setup
        from repro.sampling import LayerEdges
        layer = AttentionMessagePassing(dim=4, attn_dim=3,
                                        num_relations=ckg.num_relations)
        empty = LayerEdges(*(np.empty(0, dtype=np.int64) for _ in range(5)))
        hidden, attention = layer(Tensor(np.zeros((2, 4))), empty, 3)
        assert hidden.shape == (3, 4)
        assert np.all(hidden.data == 0)

    def test_invalid_activation_rejected(self, setup):
        _, _, ckg, _ = setup
        with pytest.raises(ValueError):
            AttentionMessagePassing(dim=4, attn_dim=3,
                                    num_relations=ckg.num_relations,
                                    activation="gelu")


class TestModel:
    def test_propagation_shapes(self, setup):
        _, _, ckg, graph = setup
        model = KUCNet(ckg.num_relations, KUCNetConfig(dim=8, depth=3, seed=0))
        propagation = model.propagate(graph)
        assert len(propagation.hidden) == 4
        for level in range(4):
            assert propagation.hidden[level].shape == (graph.layer_size(level), 8)

    def test_depth_mismatch_rejected(self, setup):
        _, _, ckg, graph = setup
        model = KUCNet(ckg.num_relations, KUCNetConfig(depth=4))
        with pytest.raises(ValueError):
            model.propagate(graph)

    def test_unreached_items_score_zero(self, setup):
        dataset, _, ckg, graph = setup
        model = KUCNet(ckg.num_relations, KUCNetConfig(dim=8, depth=3, seed=0))
        propagation = model.propagate(graph)
        scores = model.score_all_items(propagation, ckg.item_nodes)
        assert scores.shape == (3, dataset.num_items)
        reached = {int(n) for n in graph.nodes[3]}
        for item in range(dataset.num_items):
            if ckg.item_node(item) not in reached:
                assert np.all(scores[:, item] == 0.0)

    def test_score_all_matches_pair_scores(self, setup):
        dataset, _, ckg, graph = setup
        model = KUCNet(ckg.num_relations, KUCNetConfig(dim=8, depth=3, seed=0))
        propagation = model.propagate(graph)
        all_scores = model.score_all_items(propagation, ckg.item_nodes)
        items = np.arange(min(20, dataset.num_items))
        for slot in range(3):
            pair = model.pair_scores(propagation,
                                     np.full(items.size, slot),
                                     ckg.item_nodes[items])
            assert np.allclose(pair.data, all_scores[slot, items])

    def test_gradients_flow_to_all_layers(self, setup):
        _, split, ckg, graph = setup
        model = KUCNet(ckg.num_relations, KUCNetConfig(dim=8, depth=3, seed=0))
        propagation = model.propagate(graph)
        # pick reachable items for slots 0 and 1
        last = graph.depth
        reachable = [(int(s), int(n)) for s, n in
                     zip(graph.slots[last], graph.nodes[last])
                     if ckg.node_to_item(int(n)) is not None]
        assert len(reachable) >= 2
        slots = np.asarray([reachable[0][0], reachable[1][0]])
        nodes = np.asarray([reachable[0][1], reachable[1][1]])
        pos = model.pair_scores(propagation, slots, nodes)
        neg = model.pair_scores(propagation, slots[::-1].copy(), nodes[::-1].copy())
        loss = bpr_loss(pos, neg)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        touched = sum(1 for g in grads if g is not None and np.abs(g).sum() > 0)
        # relation embeddings, transforms, attention params, readout
        assert touched >= 3 * 3  # at least 3 parameters per layer touched

    def test_deterministic_given_seed(self, setup):
        _, _, ckg, graph = setup
        a = KUCNet(ckg.num_relations, KUCNetConfig(dim=8, seed=11))
        b = KUCNet(ckg.num_relations, KUCNetConfig(dim=8, seed=11))
        pa = a.propagate(graph)
        pb = b.propagate(graph)
        assert np.allclose(pa.hidden[-1].data, pb.hidden[-1].data)

    def test_num_parameters_independent_of_graph_size(self, setup):
        """KUCNet has no node embeddings: parameter count depends only on
        d, d_alpha, L, and the relation vocabulary (Fig. 5's claim)."""
        _, _, ckg, _ = setup
        config = KUCNetConfig(dim=8, attn_dim=3, depth=3)
        model = KUCNet(ckg.num_relations, config)
        expected_per_layer = (ckg.num_relations * 8   # relation embedding
                              + 8 * 8                 # message transform
                              + 2 * 3 * 8             # attention maps
                              + 3 + 3)                # attention bias+vector
        assert model.num_parameters() == 3 * expected_per_layer + 8
