"""Tests for the public KGAT/KGIN dataset-format loader."""

import os

import numpy as np
import pytest

from repro.data import lastfm_like, traditional_split
from repro.data.kgat_format import load_kgat_dataset, save_kgat_dataset


@pytest.fixture
def kgat_dir(tmp_path):
    """A miniature KGAT-format dataset on disk."""
    directory = tmp_path / "mini"
    directory.mkdir()
    (directory / "train.txt").write_text(
        "0 0 1 2\n"
        "1 1 3\n"
        "2 0\n")
    (directory / "test.txt").write_text(
        "0 3\n"
        "1 0\n")
    (directory / "kg_final.txt").write_text(
        "0 0 4\n"
        "1 0 4\n"
        "2 1 5\n"
        "3 1 5\n")
    return str(directory)


class TestLoad:
    def test_shapes(self, kgat_dir):
        dataset, split = load_kgat_dataset(kgat_dir)
        assert dataset.num_users == 3
        assert dataset.num_items == 4
        assert dataset.kg.num_entities == 6
        assert dataset.kg.num_relations == 2
        assert dataset.kg.num_triplets == 4

    def test_split_contents(self, kgat_dir):
        _, split = load_kgat_dataset(kgat_dir)
        assert split.train.positives(0) == {0, 1, 2}
        assert split.test_positives[0] == {3}
        assert split.test_positives[1] == {0}
        assert split.setting == "traditional"

    def test_identity_alignment(self, kgat_dir):
        dataset, _ = load_kgat_dataset(kgat_dir)
        assert np.array_equal(dataset.item_to_entity, np.arange(4))

    def test_name_from_directory(self, kgat_dir):
        dataset, _ = load_kgat_dataset(kgat_dir)
        assert dataset.name == "mini"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_kgat_dataset(str(tmp_path))

    def test_malformed_kg_raises(self, kgat_dir):
        with open(os.path.join(kgat_dir, "kg_final.txt"), "a") as handle:
            handle.write("1 2\n")
        with pytest.raises(ValueError):
            load_kgat_dataset(kgat_dir)

    def test_malformed_interactions_raise(self, kgat_dir):
        with open(os.path.join(kgat_dir, "train.txt"), "a") as handle:
            handle.write("3 not_an_item\n")
        with pytest.raises(ValueError):
            load_kgat_dataset(kgat_dir)

    def test_test_items_outside_training_dropped(self, tmp_path):
        """The traditional setting requires I_test ⊂ I_train."""
        directory = tmp_path / "d"
        directory.mkdir()
        (directory / "train.txt").write_text("0 0\n")
        (directory / "test.txt").write_text("0 1\n")  # item 1 never trained
        (directory / "kg_final.txt").write_text("0 0 2\n1 0 2\n")
        _, split = load_kgat_dataset(str(directory))
        assert split.test_positives == {}

    def test_empty_dataset_rejected(self, tmp_path):
        directory = tmp_path / "e"
        directory.mkdir()
        for name in ("train.txt", "test.txt", "kg_final.txt"):
            (directory / name).write_text("")
        with pytest.raises(ValueError):
            load_kgat_dataset(str(directory))


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        dataset = lastfm_like(seed=0, scale=0.2)
        split = traditional_split(dataset, seed=0)
        directory = str(tmp_path / "roundtrip")
        save_kgat_dataset(dataset, split, directory)
        loaded_dataset, loaded_split = load_kgat_dataset(directory)

        assert loaded_dataset.num_users == dataset.num_users
        assert loaded_split.train.num_interactions == split.train.num_interactions
        assert loaded_split.test_positives == split.test_positives
        assert loaded_dataset.kg.num_triplets == dataset.kg.num_triplets

    def test_pipeline_runs_on_loaded_dataset(self, tmp_path):
        """End-to-end: KUCNet trains on a dataset loaded from KGAT format."""
        from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
        from repro.eval import evaluate

        dataset = lastfm_like(seed=0, scale=0.2)
        split = traditional_split(dataset, seed=0)
        directory = str(tmp_path / "pipeline")
        save_kgat_dataset(dataset, split, directory)
        _, loaded_split = load_kgat_dataset(directory)

        model = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                  TrainConfig(epochs=1, k=10, seed=0))
        model.fit(loaded_split)
        result = evaluate(model, loaded_split, max_users=10)
        assert 0.0 <= result.recall <= 1.0
