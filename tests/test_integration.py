"""Integration tests: the full pipeline across presets and settings.

Small-scale end-to-end runs of dataset -> split -> CKG -> PPR -> train ->
evaluate, exercising every preset in every applicable setting.
"""

import numpy as np
import pytest

from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import (PRESETS, new_item_split, new_user_split,
                        traditional_split)
from repro.eval import evaluate

TINY = dict(scale=0.2, seed=0)


def make_model(depth=3):
    return KUCNetRecommender(
        KUCNetConfig(dim=12, depth=depth, seed=0),
        TrainConfig(epochs=2, k=10, batch_users=8, seed=0))


class TestAllPresetsTraditional:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_pipeline_runs(self, preset):
        dataset = PRESETS[preset](**TINY)
        split = traditional_split(dataset, seed=0)
        model = make_model().fit(split)
        result = evaluate(model, split, max_users=10)
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.ndcg <= 1.0
        assert np.isfinite(model.history[-1].loss)


class TestAllPresetsNewItem:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_pipeline_runs(self, preset):
        dataset = PRESETS[preset](**TINY)
        split = new_item_split(dataset, fold=0, seed=0)
        model = make_model(depth=4).fit(split)
        result = evaluate(model, split, max_users=10)
        assert 0.0 <= result.recall <= 1.0


class TestNewUserWithUserKG:
    def test_disgenet_new_user(self):
        dataset = PRESETS["disgenet_like"](**TINY)
        split = new_user_split(dataset, fold=0, seed=0)
        model = make_model(depth=4).fit(split)
        result = evaluate(model, split, max_users=10)
        assert 0.0 <= result.recall <= 1.0

    def test_new_user_without_user_kg_scores_zero_like(self):
        """Without user-side KG links, a new user's node is isolated in
        the training CKG, so all scores are 0 — the structural reason the
        paper needs the DisGeNet user-KG for this setting."""
        dataset = PRESETS["lastfm_like"](**TINY)
        split = new_user_split(dataset, fold=0, seed=0)
        model = make_model().fit(split)
        user = split.test_users[0]
        scores = model.score_users([user])
        assert np.allclose(scores, 0.0)


class TestConsistencyAcrossEvaluations:
    def test_repeated_evaluation_identical(self):
        """Scoring is deterministic at inference (PPR pruning is
        deterministic, dropout disabled in eval)."""
        dataset = PRESETS["lastfm_like"](**TINY)
        split = traditional_split(dataset, seed=0)
        model = make_model().fit(split)
        first = evaluate(model, split, max_users=15)
        second = evaluate(model, split, max_users=15)
        assert first.recall == pytest.approx(second.recall)
        assert first.per_user_ndcg == second.per_user_ndcg
