"""Tests for the MCRec meta-path baseline."""

import numpy as np
import pytest

from repro.baselines import MCRec, BaselineConfig
from repro.data import lastfm_like, new_item_split, traditional_split
from repro.eval import evaluate


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)


@pytest.fixture(scope="module")
def built(split):
    model = MCRec(BaselineConfig(dim=16, epochs=1, seed=0))
    model.split = split
    model.build(split)
    return model


class TestPathSampling:
    def test_uiui_path_structure(self, built, split):
        user = split.train.users_with_interactions()[0]
        item = sorted(split.train.positives(user))[0]
        path = built._sample_uiui(user, item)
        assert path is not None
        assert len(path) == 4
        assert path[0] == user                      # starts at the user
        assert path[3] == built._item_offset + item  # ends at the item
        assert built._item_offset <= path[1] < built._entity_offset  # item
        assert path[2] < built.num_users            # bridging user

    def test_uiei_path_structure(self, built, split):
        # find an item with KG attributes
        item = next(i for i in range(split.dataset.num_items)
                    if built._item_attrs.get(i))
        path = built._sample_uiei(0, item)
        assert path is not None
        assert path[2] >= built._entity_offset       # attribute entity
        assert path[3] == built._item_offset + item

    def test_pathless_pair_returns_none(self, built, split):
        # an item with no interactions has no UIUI paths
        interacted = set(split.train.items.tolist())
        lonely = next((i for i in range(split.dataset.num_items)
                       if i not in interacted), None)
        if lonely is not None:
            assert built._sample_uiui(0, lonely) is None

    def test_path_feature_shape(self, built):
        pairs = [(0, 0), (1, 1)]
        feature = built._path_feature(pairs, built._sample_uiui)
        assert feature.shape == (2, built.config.dim)

    def test_path_feature_zero_when_no_instances(self, built):
        feature = built._path_feature([(0, 0)], lambda u, i: None)
        assert np.all(feature.data == 0)


class TestTraining:
    def test_fit_and_score(self, split):
        model = MCRec(BaselineConfig(dim=16, epochs=2, seed=0)).fit(split)
        scores = model.score_users([0, 1])
        assert scores.shape == (2, split.dataset.num_items)
        assert np.all(np.isfinite(scores))

    def test_beats_chance(self, split):
        model = MCRec(BaselineConfig(dim=16, epochs=4, seed=0)).fit(split)
        result = evaluate(model, split, max_users=25)
        assert result.recall > 20.0 / split.dataset.num_items

    def test_collapses_on_new_items(self):
        """Like the other embedding/path-instance methods, MCRec has no
        signal for held-out items (Table IV's qualitative point)."""
        dataset = lastfm_like(seed=0, scale=0.25)
        split = new_item_split(dataset, fold=0, seed=0)
        model = MCRec(BaselineConfig(dim=16, epochs=2, seed=0)).fit(split)
        result = evaluate(model, split, max_users=25)
        chance = 20.0 / dataset.num_items
        assert result.recall < 2.5 * chance
