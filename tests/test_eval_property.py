"""Property-based tests for the evaluation stack against brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval import ndcg_at_n, rank_items, recall_at_n


scores_arrays = hnp.arrays(np.float64, st.integers(5, 40),
                           elements=st.floats(-10, 10, allow_nan=False,
                                              allow_infinity=False,
                                              width=32))


@settings(max_examples=50, deadline=None)
@given(scores_arrays, st.integers(1, 20))
def test_rank_items_matches_argsort(scores, n):
    ranked = rank_items(scores, set(), n)
    brute = np.argsort(-scores, kind="stable")[:min(n, scores.size)]
    # scores may tie; compare the score sequences, not the indices
    assert np.allclose(scores[ranked], scores[brute])


@settings(max_examples=50, deadline=None)
@given(scores_arrays,
       st.sets(st.integers(0, 39), min_size=1, max_size=5),
       st.integers(1, 20))
def test_rank_items_never_returns_excluded(scores, exclude, n):
    exclude = {e for e in exclude if e < scores.size}
    ranked = rank_items(scores, exclude, n)
    assert not (set(ranked.tolist()) & exclude)
    assert len(set(ranked.tolist())) == len(ranked)  # no duplicates


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=30, unique=True),
       st.sets(st.integers(0, 50), min_size=1, max_size=10),
       st.integers(1, 25))
def test_recall_matches_brute_force(ranked, relevant, n):
    value = recall_at_n(ranked, relevant, n)
    brute = len(set(ranked[:n]) & relevant) / len(relevant)
    assert value == brute


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=30, unique=True),
       st.sets(st.integers(0, 50), min_size=1, max_size=10))
def test_ndcg_monotone_in_hit_position(ranked, relevant):
    """Moving a hit to an earlier (miss) position never lowers ndcg."""
    base = ndcg_at_n(ranked, relevant, 20)
    hits = [i for i, item in enumerate(ranked) if item in relevant]
    misses = [i for i, item in enumerate(ranked) if item not in relevant]
    early_misses = [m for m in misses if hits and m < hits[0]]
    if not hits or not early_misses:
        return
    hit, miss = hits[0], early_misses[0]
    swapped = list(ranked)
    swapped[hit], swapped[miss] = swapped[miss], swapped[hit]
    assert ndcg_at_n(swapped, relevant, 20) >= base - 1e-12


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(0, 30), min_size=1, max_size=8))
def test_perfect_ranking_is_optimal(relevant):
    """Putting all relevant items first yields ndcg = recall = 1 (at
    cutoff >= |relevant|)."""
    ranked = sorted(relevant) + [item for item in range(31, 60)]
    assert recall_at_n(ranked, relevant, 30) == 1.0
    assert abs(ndcg_at_n(ranked, relevant, 30) - 1.0) < 1e-12
