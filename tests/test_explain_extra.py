"""Tests for explanation DOT export and trainer early stopping."""

import numpy as np
import pytest

from repro.core import (KUCNetConfig, KUCNetRecommender, TrainConfig, explain)
from repro.core.explain import explanation_to_dot
from repro.data import lastfm_like, traditional_split
from repro.eval import rank_items


@pytest.fixture(scope="module")
def trained():
    split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)
    rec = KUCNetRecommender(KUCNetConfig(dim=16, depth=3, seed=0),
                            TrainConfig(epochs=3, k=15, seed=0))
    rec.fit(split)
    return split, rec


class TestDotExport:
    def test_dot_structure(self, trained):
        split, rec = trained
        user = split.test_users[0]
        scores = rec.score_users([user])[0]
        item = int(rank_items(scores, split.train.positives(user), 1)[0])
        propagation = rec.propagate_users([user], collect_attention=True)
        edges = explain(propagation, rec.ckg, 0, item, threshold=0.0)
        dot = explanation_to_dot(edges, rec.ckg, title="demo")
        assert dot.startswith('digraph "demo"')
        assert dot.rstrip().endswith("}")
        assert "->" in dot
        assert "shape=ellipse" in dot   # the user node
        assert "shape=box" in dot       # at least one item node

    def test_empty_edges_valid_dot(self, trained):
        _, rec = trained
        dot = explanation_to_dot([], rec.ckg)
        assert dot.startswith("digraph")
        assert "->" not in dot


class TestEarlyStopping:
    def test_patience_stops_training(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)
        rec = KUCNetRecommender(
            KUCNetConfig(dim=16, depth=3, seed=0),
            TrainConfig(epochs=50, k=15, seed=0, patience=2),
        )
        rec.fit(split)
        assert len(rec.history) < 50

    def test_no_patience_runs_all_epochs(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)
        rec = KUCNetRecommender(
            KUCNetConfig(dim=16, depth=3, seed=0),
            TrainConfig(epochs=4, k=15, seed=0, patience=None),
        )
        rec.fit(split)
        assert len(rec.history) == 4
