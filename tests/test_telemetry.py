"""Tests for the observability layer (``repro.telemetry``).

Covers the tracer itself (nested-span exclusive-time accounting,
counter/histogram aggregation, thread safety, disabled-mode no-ops),
the JSONL sink round-trip, the run manifest, and the integration with
the training pipeline and the ``repro profile`` CLI subcommand.
"""

import json
import threading
import time
import warnings

import numpy as np
import pytest

from repro import telemetry as tm
from repro.telemetry.tracer import HISTOGRAM_SAMPLE_CAP


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts disabled with an empty registry."""
    tm.disable()
    tm.reset()
    yield
    tm.disable()
    tm.reset()


class TestSpans:
    def test_span_records_count_and_time(self):
        with tm.enabled():
            for _ in range(3):
                with tm.span("t.unit"):
                    time.sleep(0.002)
        stats = tm.get_registry().spans["t.unit"]
        assert stats.count == 3
        assert stats.total_seconds >= 3 * 0.002
        assert stats.min_seconds <= stats.max_seconds
        assert stats.max_seconds <= stats.total_seconds

    def test_nested_spans_exclusive_accounting(self):
        with tm.enabled():
            with tm.span("outer"):
                time.sleep(0.01)
                with tm.span("inner"):
                    time.sleep(0.02)
        outer = tm.get_registry().spans["outer"]
        inner = tm.get_registry().spans["inner"]
        # Inclusive: outer covers inner; exclusive: outer excludes it.
        assert outer.total_seconds >= inner.total_seconds
        assert outer.exclusive_seconds == pytest.approx(
            outer.total_seconds - inner.total_seconds, abs=1e-6)
        assert inner.exclusive_seconds == pytest.approx(
            inner.total_seconds, abs=1e-9)
        assert outer.exclusive_seconds < outer.total_seconds

    def test_three_level_nesting(self):
        with tm.enabled():
            with tm.span("a"):
                with tm.span("b"):
                    with tm.span("c"):
                        time.sleep(0.005)
        spans = tm.get_registry().spans
        assert spans["a"].total_seconds >= spans["b"].total_seconds
        assert spans["b"].total_seconds >= spans["c"].total_seconds
        # b's exclusive time excludes c, but b's inclusive feeds into a.
        assert spans["b"].exclusive_seconds == pytest.approx(
            spans["b"].total_seconds - spans["c"].total_seconds, abs=1e-6)

    def test_siblings_both_subtracted_from_parent(self):
        with tm.enabled():
            with tm.span("parent"):
                with tm.span("child"):
                    time.sleep(0.004)
                with tm.span("child"):
                    time.sleep(0.004)
        parent = tm.get_registry().spans["parent"]
        child = tm.get_registry().spans["child"]
        assert child.count == 2
        assert parent.exclusive_seconds == pytest.approx(
            parent.total_seconds - child.total_seconds, abs=1e-6)

    def test_span_elapsed_available_when_disabled(self):
        with tm.span("ignored") as sp:
            time.sleep(0.003)
        assert sp.elapsed >= 0.003
        assert tm.get_registry().is_empty()

    def test_span_survives_exception(self):
        with tm.enabled():
            with pytest.raises(RuntimeError):
                with tm.span("boom"):
                    raise RuntimeError("x")
        assert tm.get_registry().spans["boom"].count == 1


class TestTimedDecorator:
    def test_timed_records_span_per_call(self):
        @tm.timed("bench.work")
        def work(x, y=1):
            time.sleep(0.001)
            return x + y

        with tm.enabled():
            assert work(2, y=3) == 5
            assert work(1) == 2
        stats = tm.get_registry().spans["bench.work"]
        assert stats.count == 2
        assert stats.total_seconds >= 0.002

    def test_timed_preserves_metadata_and_is_cheap_when_disabled(self):
        @tm.timed("bench.quiet")
        def quiet():
            """docstring survives"""
            return 7

        assert quiet.__name__ == "quiet"
        assert quiet.__doc__ == "docstring survives"
        assert quiet() == 7
        assert tm.get_registry().is_empty()

    def test_timed_supports_introspection(self):
        """functools.wraps contract: bench registry listings read the
        wrapped callable's identity and signature, not the wrapper's."""
        import inspect

        @tm.timed("bench.introspect")
        def workload(users, depth=3):
            """Build and rank."""
            return users * depth

        assert workload.__wrapped__.__name__ == "workload"
        assert workload.__qualname__.endswith("workload")
        assert list(inspect.signature(workload).parameters) == \
            ["users", "depth"]
        assert workload.__module__ == __name__
        assert inspect.unwrap(workload)(2, depth=5) == 10

    def test_timed_closes_span_when_function_raises(self):
        @tm.timed("bench.boom")
        def boom():
            raise ValueError("x")

        with tm.enabled():
            with pytest.raises(ValueError):
                boom()
            # The failed call's span must have been popped: a sibling
            # span recorded afterwards nests under nothing.
            with tm.span("bench.after"):
                pass
        registry = tm.get_registry()
        assert registry.spans["bench.boom"].count == 1
        assert registry.spans["bench.after"].count == 1


class TestInstruments:
    def test_counter_accumulates(self):
        with tm.enabled():
            tm.counter("edges", 5)
            tm.counter("edges", 7)
            tm.counter("edges")
        stats = tm.get_registry().counters["edges"]
        assert stats.total == 13
        assert stats.updates == 3

    def test_gauge_keeps_last_value(self):
        with tm.enabled():
            tm.gauge("residual", 0.5)
            tm.gauge("residual", 0.125)
        stats = tm.get_registry().gauges["residual"]
        assert stats.value == 0.125
        assert stats.updates == 2

    def test_histogram_aggregation(self):
        with tm.enabled():
            for value in [1.0, 2.0, 3.0, 4.0]:
                tm.histogram("sizes", value)
        stats = tm.get_registry().histograms["sizes"]
        assert stats.count == 4
        assert stats.total == 10.0
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.percentile(50) == 2.0
        assert stats.percentile(100) == 4.0

    def test_histogram_sample_cap_keeps_exact_totals(self):
        with tm.enabled():
            for value in range(HISTOGRAM_SAMPLE_CAP + 50):
                tm.histogram("big", float(value))
        stats = tm.get_registry().histograms["big"]
        assert stats.count == HISTOGRAM_SAMPLE_CAP + 50
        assert len(stats.values) == HISTOGRAM_SAMPLE_CAP
        assert stats.maximum == float(HISTOGRAM_SAMPLE_CAP + 49)


class TestDisabledMode:
    def test_disabled_instruments_are_noops(self):
        assert not tm.is_enabled()
        with tm.span("s"):
            pass
        tm.counter("c", 3)
        tm.gauge("g", 1.0)
        tm.histogram("h", 2.0)
        registry = tm.get_registry()
        assert registry.is_empty()
        assert registry.snapshot() == {"spans": {}, "counters": {},
                                       "gauges": {}, "histograms": {}}

    def test_pipeline_records_nothing_when_disabled(self):
        from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
        from repro.data import lastfm_like, traditional_split

        dataset = lastfm_like(seed=0, scale=0.1)
        split = traditional_split(dataset, seed=0)
        model = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, batch_users=16, k=5, seed=0))
        model.fit(split)
        assert tm.get_registry().is_empty()
        # Derived statistics still work without the registry.
        assert model.ppr_seconds > 0
        assert model.history[-1].cumulative_seconds > 0

    def test_enabled_context_restores_previous_state(self):
        assert not tm.is_enabled()
        with tm.enabled():
            assert tm.is_enabled()
            with tm.enabled(False):
                assert not tm.is_enabled()
            assert tm.is_enabled()
        assert not tm.is_enabled()


class TestThreadSafety:
    def test_concurrent_counters_and_spans(self):
        workers = 8
        increments = 500
        barrier = threading.Barrier(workers)

        def work():
            barrier.wait()
            for _ in range(increments):
                tm.counter("shared", 1)
                with tm.span("threaded"):
                    pass

        with tm.enabled():
            threads = [threading.Thread(target=work) for _ in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        registry = tm.get_registry()
        assert registry.counters["shared"].total == workers * increments
        assert registry.spans["threaded"].count == workers * increments

    def test_span_stacks_are_per_thread(self):
        errors = []

        def work(name):
            try:
                for _ in range(200):
                    with tm.span(f"outer.{name}"):
                        with tm.span(f"inner.{name}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with tm.enabled():
            threads = [threading.Thread(target=work, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        spans = tm.get_registry().spans
        for i in range(4):
            assert spans[f"outer.{i}"].count == 200
            # inner time never leaks into a sibling thread's outer span
            assert spans[f"outer.{i}"].exclusive_seconds <= \
                spans[f"outer.{i}"].total_seconds + 1e-9


class TestSinksAndManifest:
    def test_jsonl_round_trip(self, tmp_path):
        with tm.enabled():
            with tm.span("train.epoch"):
                time.sleep(0.001)
            tm.counter("ppr.edges_kept", 42)
            tm.gauge("ppr.residual", 1e-4)
            tm.histogram("graph.nodes_per_layer.l1", 17)
        manifest = tm.RunManifest(run="test", seed=7,
                                  config={"dim": 8}, dataset={"users": 3},
                                  metrics={"recall@20": 0.5})
        path = str(tmp_path / "dump.jsonl")
        lines = tm.write_jsonl(path, manifest=manifest)
        assert lines == 5

        records = list(tm.read_jsonl(path))
        assert len(records) == 5
        parsed, sections = tm.split_records(records)
        assert parsed["run"] == "test"
        assert parsed["seed"] == 7
        assert parsed["metrics"]["recall@20"] == 0.5
        assert sections["span"]["train.epoch"]["count"] == 1
        assert sections["counter"]["ppr.edges_kept"]["total"] == 42
        assert sections["gauge"]["ppr.residual"]["value"] == 1e-4
        assert sections["histogram"]["graph.nodes_per_layer.l1"]["max"] == 17
        rebuilt = tm.RunManifest.from_record(parsed)
        assert rebuilt.seed == 7 and rebuilt.config == {"dim": 8}

    def test_read_jsonl_tolerates_unknown_record_kinds(self, tmp_path):
        """Forward compatibility: new record kinds must not break readers."""
        with tm.enabled():
            tm.counter("ppr.push_ops", 3)
        path = str(tmp_path / "dump.jsonl")
        tm.write_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"record": "flux_capacitor",
                                     "name": "future", "jigawatts": 1.21})
                         + "\n")

        records = list(tm.read_jsonl(path))
        assert {"record": "flux_capacitor", "name": "future",
                "jigawatts": 1.21} in records
        manifest, sections = tm.split_records(records)
        assert manifest is None
        assert sections["counter"]["ppr.push_ops"]["total"] == 3
        assert all("future" not in section
                   for section in sections.values())

    def test_jsonl_is_valid_json_per_line(self, tmp_path):
        with tm.enabled():
            tm.counter("x", 1)
        path = str(tmp_path / "dump.jsonl")
        tm.write_jsonl(path)
        with open(path) as handle:
            for line in handle:
                json.loads(line)

    def test_manifest_converts_numpy_and_dataclasses(self):
        from repro.core import KUCNetConfig

        record = tm.RunManifest(
            run="np", config=KUCNetConfig(),
            metrics={"value": np.float64(0.25),
                     "count": np.int64(3)}).to_record()
        assert record["config"]["dim"] == 48
        assert record["metrics"]["value"] == 0.25
        assert isinstance(record["metrics"]["count"], int)
        json.dumps(record)  # fully serializable

    def test_read_jsonl_is_a_lazy_generator(self, tmp_path):
        """Streaming contract: records come out one at a time, so `repro
        runs trend` over a large index stays O(1) in file size."""
        import types

        path = str(tmp_path / "big.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for index in range(100):
                handle.write(json.dumps({"record": "row", "i": index}) + "\n")

        stream = tm.read_jsonl(path)
        assert isinstance(stream, types.GeneratorType)
        assert next(stream) == {"record": "row", "i": 0}
        assert next(stream) == {"record": "row", "i": 1}
        # The remainder is still pending, not buffered up front.
        rest = list(stream)
        assert len(rest) == 98 and rest[-1]["i"] == 99

    def test_manifest_round_trip_with_numpy_and_path_fields(self, tmp_path):
        """Coerce-to-JSON-native: numpy scalars/arrays and Path values in
        a manifest serialize instead of raising (run-registry commits
        pass experiment configs through verbatim)."""
        from pathlib import Path

        manifest = tm.RunManifest(
            run="coerce", seed=np.int64(7),
            config={"out_dir": Path("/tmp/runs"),
                    "weights": np.array([0.5, 1.5]),
                    "epochs": np.int32(3),
                    "grid": np.arange(4).reshape(2, 2)},
            metrics={"recall@20": np.float32(0.125),
                     "loss": np.float64(0.5)})
        record = manifest.to_record()
        json.dumps(record)  # fully serializable, nothing raises
        assert record["seed"] == 7
        assert record["config"]["out_dir"] == str(Path("/tmp/runs"))
        assert record["config"]["weights"] == [0.5, 1.5]
        assert record["config"]["epochs"] == 3
        assert record["config"]["grid"] == [[0, 1], [2, 3]]
        assert record["metrics"]["recall@20"] == 0.125

        rebuilt = tm.RunManifest.from_record(
            json.loads(json.dumps(record)))
        assert rebuilt.run == "coerce" and rebuilt.seed == 7
        assert rebuilt.config["weights"] == [0.5, 1.5]
        assert rebuilt.metrics["loss"] == 0.5

    def test_summary_table_renders_all_sections(self):
        with tm.enabled():
            with tm.span("a.span"):
                pass
            tm.counter("a.counter", 2)
            tm.gauge("a.gauge", 1.5)
            tm.histogram("a.hist", 3.0)
        text = tm.summary_table()
        for token in ("spans", "counters", "gauges", "histograms",
                      "a.span", "a.counter", "a.gauge", "a.hist"):
            assert token in text

    def test_summary_table_empty_registry(self):
        assert tm.summary_table() == "(no telemetry recorded)"


class TestPipelineIntegration:
    def test_fit_and_evaluate_emit_expected_spans(self):
        from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
        from repro.data import lastfm_like, traditional_split
        from repro.eval import evaluate

        dataset = lastfm_like(seed=0, scale=0.1)
        split = traditional_split(dataset, seed=0)
        with tm.enabled():
            model = KUCNetRecommender(
                KUCNetConfig(dim=8, depth=2, seed=0),
                TrainConfig(epochs=1, batch_users=16, k=5, seed=0))
            model.fit(split)
            evaluate(model, split, max_users=8)

        snap = tm.get_registry().snapshot()
        for name in ("train.fit", "train.epoch", "train.batch",
                     "ppr.precompute", "ppr.power_iteration", "ppr.prune",
                     "graph.build", "autodiff.backward",
                     "eval.score", "eval.rank"):
            assert snap["spans"][name]["count"] > 0, name
            assert snap["spans"][name]["total_seconds"] > 0, name
        # When fused (the default) the propagation hot path records
        # autodiff.fused_* instead of per-op segment_sum counters
        # (gather_rows still fires on the readout/scoring path); under
        # REPRO_FUSED=0 the op-by-op counters come back.
        from repro.autodiff import fusion_enabled
        expected = ["ppr.edges_kept", "ppr.edges_pruned", "ppr.sweeps",
                    "autodiff.gather_rows",
                    "graph.builds", "train.pairs", "eval.users"]
        if fusion_enabled():
            expected += ["autodiff.fused_calls", "autodiff.fused_saved_bytes"]
        else:
            expected += ["autodiff.segment_sum"]
        for name in expected:
            assert snap["counters"][name]["total"] > 0, name
        assert snap["histograms"]["autodiff.tape_nodes"]["count"] > 0
        assert snap["histograms"]["graph.nodes_per_layer.l1"]["count"] > 0
        assert snap["histograms"]["graph.edges_per_layer.l2"]["count"] > 0
        # epochs nest under fit: exclusive(fit) < inclusive(fit)
        fit = snap["spans"]["train.fit"]
        assert fit["exclusive_seconds"] < fit["total_seconds"]

    def test_graph_stats_emits_instruments(self):
        from repro.analysis import computation_graph_stats
        from repro.data import lastfm_like, traditional_split
        from repro.sampling import build_user_centric_graph

        dataset = lastfm_like(seed=0, scale=0.1)
        split = traditional_split(dataset, seed=0)
        ckg = dataset.build_ckg(split.train)
        graph = build_user_centric_graph(ckg, [0, 1], depth=2, k=None,
                                         sampler="random",
                                         rng=np.random.default_rng(0))
        with tm.enabled():
            stats = computation_graph_stats(graph)
        snap = tm.get_registry().snapshot()
        assert snap["histograms"]["graph.nodes_per_layer.l0"]["max"] == \
            stats.nodes_per_layer[0]
        assert snap["histograms"]["graph.edges_per_layer.l1"]["max"] == \
            stats.edges_per_layer[0]
        assert snap["counters"]["graph.edges"]["total"] == stats.total_edges


class TestProfileCLI:
    def test_profile_jsonl_manifest(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "profile.jsonl")
        assert main(["profile", "--scale", "0.1", "--epochs", "1",
                     "--sink", "jsonl", "--out", out]) == 0
        manifest, sections = tm.split_records(tm.read_jsonl(out))
        assert manifest is not None
        assert manifest["run"] == "profile:lastfm_like"
        assert "recall@20" in manifest["metrics"]
        assert manifest["dataset"]["users"] > 0
        for name in ("train.epoch", "ppr.prune", "graph.build", "eval.rank"):
            assert sections["span"][name]["count"] > 0, name

    def test_profile_table_sink(self, capsys):
        from repro.cli import main

        assert main(["profile", "--scale", "0.1", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "train.epoch" in out
        assert '"record": "manifest"' in out

    def test_profile_jsonl_requires_out(self, capsys):
        from repro.cli import main

        assert main(["profile", "--sink", "jsonl"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_profile_unknown_dataset(self, capsys):
        from repro.cli import main

        assert main(["profile", "--dataset", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestSpanErrors:
    """Satellite coverage: error accounting and mismatched-exit tolerance."""

    def test_exception_records_error_flag_and_counter(self):
        with tm.enabled():
            with pytest.raises(ValueError):
                with tm.span("risky"):
                    raise ValueError("boom")
            with tm.span("risky"):
                pass
        snap = tm.get_registry().snapshot()
        assert snap["spans"]["risky"]["errors"] == 1
        assert snap["spans"]["risky"]["count"] == 2
        assert snap["counters"]["risky.errors"]["total"] == 1

    def test_error_exit_times_like_a_clean_exit(self):
        with tm.enabled():
            with pytest.raises(RuntimeError):
                with tm.span("timed.err"):
                    time.sleep(0.002)
                    raise RuntimeError("x")
        stats = tm.get_registry().spans["timed.err"]
        assert stats.count == 1
        assert stats.total_seconds >= 0.002
        assert stats.total_seconds == pytest.approx(stats.max_seconds)

    def test_clean_exit_records_no_error(self):
        with tm.enabled():
            with tm.span("fine"):
                pass
        snap = tm.get_registry().snapshot()
        assert snap["spans"]["fine"]["errors"] == 0
        assert "fine.errors" not in snap["counters"]

    def test_summary_table_shows_errors_column(self):
        with tm.enabled():
            with pytest.raises(ValueError):
                with tm.span("risky"):
                    raise ValueError("boom")
        table = tm.summary_table()
        header = [line for line in table.splitlines() if "errors" in line]
        assert header, table

    def test_generator_held_span_closed_from_another_frame(self):
        """The mismatched-exit tolerance branch of ``Span.__exit__``.

        A span opened inside a generator can be force-closed by an
        *outer* span's exit (the generator was abandoned mid-flight);
        when the generator is finalized its own ``__exit__`` runs with
        the span no longer on the stack and must not double-record.
        """
        def held():
            with tm.span("gen.inner"):
                yield 1
                yield 2

        with tm.enabled():
            with tm.capture_events() as log:
                with tm.span("outer"):
                    gen = held()
                    next(gen)           # gen.inner now inside outer
                # outer's exit force-closes the abandoned gen.inner
                gen.close()             # inner's own __exit__: no re-emit
        snap = tm.get_registry().snapshot()
        assert snap["spans"]["outer"]["count"] == 1
        assert snap["spans"]["gen.inner"]["count"] == 1
        kinds = [(e.kind, e.name) for e in log.events()]
        assert kinds == [("B", "outer"), ("B", "gen.inner"),
                         ("E", "gen.inner"), ("E", "outer")]
        tm.validate_chrome_trace(tm.to_chrome_trace(log))

    def test_mismatched_exit_keeps_stack_consistent(self):
        with tm.enabled():
            held = tm.span("held")
            with tm.span("outer"):
                held.__enter__()
            # "held" was force-closed by outer's exit; closing it again
            # from this frame must not corrupt subsequent nesting.
            held.__exit__(None, None, None)
            with tm.span("outer"):
                with tm.span("inner"):
                    pass
        spans = tm.get_registry().snapshot()["spans"]
        assert spans["outer"]["count"] == 2
        assert spans["inner"]["count"] == 1
        # The forced close only balances the event stream; registry
        # stats come from the span's own __exit__, exactly once.
        assert spans["held"]["count"] == 1


class TestMergeSnapshotSections:
    """Satellite coverage: gauge/histogram merge from multiple workers."""

    def _worker_snapshot(self, gauge_value, histogram_values, errors=0):
        registry = tm.MetricsRegistry()
        registry.set_gauge("w.gauge", gauge_value)
        for value in histogram_values:
            registry.observe("w.hist", value)
        registry.record_span("w.span", 0.01, 0.01, error=bool(errors))
        return registry.snapshot()

    def test_gauges_take_last_write_in_merge_order(self):
        registry = tm.MetricsRegistry()
        registry.merge_snapshot(self._worker_snapshot(1.0, [1.0]))
        registry.merge_snapshot(self._worker_snapshot(2.0, [2.0]))
        snap = registry.snapshot()
        assert snap["gauges"]["w.gauge"]["value"] == 2.0
        assert snap["gauges"]["w.gauge"]["updates"] == 2

    def test_histograms_accumulate_exact_aggregates(self):
        registry = tm.MetricsRegistry()
        registry.merge_snapshot(self._worker_snapshot(0.0, [1.0, 3.0]))
        registry.merge_snapshot(self._worker_snapshot(0.0, [5.0]))
        rec = registry.snapshot()["histograms"]["w.hist"]
        assert rec["count"] == 3
        assert rec["min"] == 1.0
        assert rec["max"] == 5.0
        assert rec["mean"] == pytest.approx(3.0)

    def test_span_errors_accumulate_across_workers(self):
        registry = tm.MetricsRegistry()
        registry.merge_snapshot(self._worker_snapshot(0.0, [], errors=1))
        registry.merge_snapshot(self._worker_snapshot(0.0, [], errors=1))
        registry.merge_snapshot(self._worker_snapshot(0.0, [], errors=0))
        rec = registry.snapshot()["spans"]["w.span"]
        assert rec["count"] == 3
        assert rec["errors"] == 2

    def test_merge_tolerates_snapshots_without_errors_field(self):
        snapshot = self._worker_snapshot(0.0, [])
        del snapshot["spans"]["w.span"]["errors"]
        registry = tm.MetricsRegistry()
        registry.merge_snapshot(snapshot)
        assert registry.snapshot()["spans"]["w.span"]["errors"] == 0

    def test_merge_accumulates_health_alert_counters(self):
        """Worker registries carrying health.alerts counters fold
        additively — the committed run must see the fleet-wide total."""
        def worker(alerts_by_check):
            registry = tm.MetricsRegistry()
            for check, count in alerts_by_check.items():
                registry.add("health.alerts", count)
                registry.add(f"health.alerts.{check}", count)
            return registry.snapshot()

        registry = tm.MetricsRegistry()
        registry.merge_snapshot(worker({"grad_norm": 2, "loss_spike": 1}))
        registry.merge_snapshot(worker({"grad_norm": 1}))
        registry.merge_snapshot(worker({}))
        counters = registry.snapshot()["counters"]
        assert counters["health.alerts"]["total"] == 4
        assert counters["health.alerts.grad_norm"]["total"] == 3
        assert counters["health.alerts.loss_spike"]["total"] == 1
        assert counters["health.alerts"]["updates"] == 3


class TestSplitRecordsManifests:
    """Satellite coverage: duplicate-manifest warning in split_records."""

    def test_duplicate_manifests_warn_and_keep_last(self):
        records = [
            tm.RunManifest(run="first").to_record(),
            {"record": "counter", "name": "c", "total": 1.0, "updates": 1},
            tm.RunManifest(run="second").to_record(),
        ]
        with pytest.warns(RuntimeWarning, match="multiple manifest"):
            manifest, sections = tm.split_records(records)
        assert manifest["run"] == "second"
        assert sections["counter"]["c"]["total"] == 1.0

    def test_single_manifest_stays_quiet(self):
        records = [tm.RunManifest(run="only").to_record()]
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            manifest, _ = tm.split_records(records)
        assert manifest["run"] == "only"
