"""End-to-end tests for KUCNetRecommender training, variants, explanations."""

import numpy as np
import pytest

from repro.core import (KUCNetConfig, KUCNetRecommender, TrainConfig,
                        explain, kucnet_full, kucnet_no_attention,
                        kucnet_no_ppr, kucnet_random, render_explanation)
from repro.data import (disgenet_like, lastfm_like, new_item_split,
                        new_user_split, traditional_split)
from repro.eval import evaluate, rank_items


@pytest.fixture(scope="module")
def small_split():
    return traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)


@pytest.fixture(scope="module")
def trained(small_split):
    rec = KUCNetRecommender(
        KUCNetConfig(dim=16, depth=3, seed=0),
        TrainConfig(epochs=4, k=15, seed=0),
    )
    rec.fit(small_split)
    return rec


class TestTraining:
    def test_training_improves_over_untrained(self, small_split, trained):
        untrained = KUCNetRecommender(
            KUCNetConfig(dim=16, depth=3, seed=0),
            TrainConfig(epochs=4, k=15, seed=0),
        )
        untrained.prepare(small_split)
        before = evaluate(untrained, small_split, max_users=40)
        after = evaluate(trained, small_split, max_users=40)
        assert after.recall >= before.recall
        assert after.ndcg > before.ndcg

    def test_loss_decreases(self, trained):
        losses = [stats.loss for stats in trained.history]
        assert losses[-1] < losses[0]

    def test_history_recorded(self, trained):
        assert len(trained.history) == 4
        assert trained.history[-1].cumulative_seconds >= trained.history[0].seconds

    def test_ppr_preprocessing_timed(self, trained):
        assert trained.ppr_seconds > 0

    def test_score_users_shape(self, small_split, trained):
        scores = trained.score_users([0, 1])
        assert scores.shape == (2, small_split.dataset.num_items)

    def test_score_before_fit_raises(self):
        rec = KUCNetRecommender()
        with pytest.raises(RuntimeError):
            rec.score_users([0])

    def test_run_epoch_before_prepare_raises(self, small_split):
        rec = KUCNetRecommender()
        with pytest.raises(RuntimeError, match="prepare"):
            rec.run_epoch(small_split, optimizer=None)

    def test_run_epoch_standalone_matches_fit_loop(self, small_split):
        from repro.autodiff import Adam

        config = TrainConfig(epochs=1, k=10, seed=0)
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=2, seed=0), config)
        rec.prepare(small_split)
        optimizer = Adam(rec.model.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        loss, seconds = rec.run_epoch(small_split, optimizer)
        assert np.isfinite(loss) and loss > 0.0
        assert seconds > 0.0

    def test_callback_invoked(self, small_split):
        events = []
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=2, k=10, seed=0))
        rec.fit(small_split, callback=events.append)
        assert [e.epoch for e in events] == [0, 1]

    def test_num_parameters(self, trained):
        assert trained.num_parameters() == trained.model.num_parameters()


class TestVariants:
    def test_names(self):
        assert kucnet_full().name == "KUCNet"
        assert kucnet_random().name == "KUCNet-random"
        assert kucnet_no_attention().name == "KUCNet-w.o.-Attn"
        assert kucnet_no_ppr().name == "KUCNet-w.o.-PPR"

    def test_random_variant_trains(self, small_split):
        rec = kucnet_random(KUCNetConfig(dim=8, depth=3, seed=0),
                            TrainConfig(epochs=2, k=10, seed=0))
        rec.fit(small_split)
        result = evaluate(rec, small_split, max_users=20)
        assert result.recall > 0.0

    def test_no_attention_variant_trains(self, small_split):
        rec = kucnet_no_attention(KUCNetConfig(dim=8, depth=3, seed=0),
                                  TrainConfig(epochs=2, k=10, seed=0))
        rec.fit(small_split)
        result = evaluate(rec, small_split, max_users=20)
        assert result.recall > 0.0

    def test_no_ppr_variant_trains(self, small_split):
        rec = kucnet_no_ppr(KUCNetConfig(dim=8, depth=3, seed=0),
                            TrainConfig(epochs=2, seed=0))
        rec.fit(small_split)
        assert rec.train_config.k is None
        result = evaluate(rec, small_split, max_users=10)
        assert result.recall > 0.0


class TestNewItemAndUserSettings:
    def test_new_item_scoring_nonzero(self):
        """KUCNet must reach held-out items through the KG alone."""
        dataset = lastfm_like(seed=1, scale=0.25)
        split = new_item_split(dataset, fold=0, seed=0)
        rec = KUCNetRecommender(KUCNetConfig(dim=16, depth=3, seed=0),
                                TrainConfig(epochs=3, k=15, seed=0))
        rec.fit(split)
        result = evaluate(rec, split, max_users=30)
        assert result.recall > 0.0

    def test_new_user_scoring_via_user_kg(self):
        """With user-side KG links (DisGeNet analogue), brand-new users
        still receive recommendations."""
        dataset = disgenet_like(seed=0, scale=0.5)
        split = new_user_split(dataset, fold=0, seed=0)
        rec = KUCNetRecommender(KUCNetConfig(dim=16, depth=3, seed=0),
                                TrainConfig(epochs=3, k=15, seed=0))
        rec.fit(split)
        result = evaluate(rec, split, max_users=20)
        assert result.recall > 0.0


class TestExplanations:
    def test_explanation_traces_to_item(self, small_split, trained):
        user = small_split.test_users[0]
        scores = trained.score_users([user])[0]
        ranked = rank_items(scores, small_split.train.positives(user), 5)
        propagation = trained.propagate_users([user], collect_attention=True)
        edges = explain(propagation, trained.ckg, slot=0, item=int(ranked[0]),
                        threshold=0.0)
        assert edges, "top recommendation must be explainable"
        # final layer edges end at the item's node
        item_node = trained.ckg.item_node(int(ranked[0]))
        last_layer_edges = [e for e in edges if e.layer == propagation.graph.depth]
        assert all(e.tail == item_node for e in last_layer_edges)
        # layers are connected: heads of layer l+1 appear as tails of layer l
        by_layer = {}
        for edge in edges:
            by_layer.setdefault(edge.layer, []).append(edge)
        for layer in range(2, propagation.graph.depth + 1):
            if layer in by_layer and (layer - 1) in by_layer:
                tails_below = {e.tail for e in by_layer[layer - 1]}
                assert any(e.head in tails_below for e in by_layer[layer])

    def test_threshold_filters(self, small_split, trained):
        user = small_split.test_users[0]
        scores = trained.score_users([user])[0]
        ranked = rank_items(scores, small_split.train.positives(user), 5)
        propagation = trained.propagate_users([user], collect_attention=True)
        loose = explain(propagation, trained.ckg, 0, int(ranked[0]), threshold=0.0)
        strict = explain(propagation, trained.ckg, 0, int(ranked[0]), threshold=0.99)
        assert len(strict) <= len(loose)
        assert all(e.attention >= 0.99 for e in strict)

    def test_unreached_item_yields_empty(self, trained):
        propagation = trained.propagate_users([0], collect_attention=True)
        reached = {int(n) for n in propagation.graph.nodes[-1]}
        unreached = next(item for item in range(trained.ckg.num_items)
                         if trained.ckg.item_node(item) not in reached)
        assert explain(propagation, trained.ckg, 0, unreached) == []

    def test_render(self, small_split, trained):
        user = small_split.test_users[0]
        propagation = trained.propagate_users([user], collect_attention=True)
        scores = trained.score_users([user])[0]
        ranked = rank_items(scores, small_split.train.positives(user), 1)
        edges = explain(propagation, trained.ckg, 0, int(ranked[0]), threshold=0.0)
        text = render_explanation(edges, trained.ckg)
        assert "-->" in text
        assert render_explanation([], trained.ckg).startswith("(no explanation")
