"""Tests for analysis utilities: charts, diagnostics, hyperparam search."""

import numpy as np
import pytest

from repro.analysis import (ascii_bar_chart, ascii_curve,
                            computation_graph_stats, dataset_report,
                            degree_histogram, reach_statistics)
from repro.data import lastfm_like, traditional_split
from repro.experiments.search import (DEFAULT_KUCNET_GRID, grid,
                                      search_kucnet)
from repro.sampling import build_user_centric_graph


@pytest.fixture(scope="module")
def setup():
    dataset = lastfm_like(seed=0, scale=0.2)
    split = traditional_split(dataset, seed=0)
    return dataset, split, dataset.build_ckg(split.train)


class TestCharts:
    def test_curve_renders_all_series(self):
        chart = ascii_curve({
            "KUCNet": [(0, 0.1), (1, 0.5), (2, 0.6)],
            "KGAT": [(0, 0.05), (1, 0.2), (2, 0.3)],
        })
        assert "*" in chart
        assert "o" in chart
        assert "KUCNet" in chart
        assert "KGAT" in chart

    def test_curve_empty(self):
        assert ascii_curve({}) == "(no data)"
        assert ascii_curve({"a": []}) == "(no data)"

    def test_curve_constant_series(self):
        chart = ascii_curve({"flat": [(0, 1.0), (1, 1.0)]})
        assert "*" in chart

    def test_bar_chart(self):
        chart = ascii_bar_chart({"KUCNet": 10_000, "KGAT": 26_000},
                                label="params")
        assert "params" in chart
        assert chart.count("#") > 0
        lines = chart.splitlines()
        kgat_line = next(line for line in lines if line.startswith("KGAT"))
        kucnet_line = next(line for line in lines if line.startswith("KUCNet"))
        assert kgat_line.count("#") > kucnet_line.count("#")

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}) == "(no data)"


class TestDiagnostics:
    def test_degree_histogram(self, setup):
        _, _, ckg = setup
        summary = degree_histogram(ckg)
        assert summary["mean"] > 0
        assert summary["max"] >= summary["p99"] >= summary["p50"]

    def test_computation_graph_stats(self, setup):
        _, _, ckg = setup
        graph = build_user_centric_graph(ckg, [0, 1], depth=3, k=None)
        stats = computation_graph_stats(graph)
        assert len(stats.nodes_per_layer) == 4
        assert len(stats.edges_per_layer) == 3
        assert stats.total_edges == graph.total_edges()
        assert stats.nodes_per_layer[0] == 2  # one row per user slot

    def test_reach_increases_with_depth(self, setup):
        _, _, ckg = setup
        shallow = reach_statistics(ckg, [0, 1, 2], depth=2)
        deep = reach_statistics(ckg, [0, 1, 2], depth=4)
        assert deep["mean_item_reach"] >= shallow["mean_item_reach"]
        assert 0.0 <= shallow["mean_item_reach"] <= 1.0

    def test_dataset_report(self, setup):
        dataset, split, _ = setup
        report = dataset_report(dataset, split)
        assert "lastfm_like" in report
        assert "out-degree" in report
        assert "triplets per item" in report


class TestSearch:
    def test_grid_expansion(self):
        combos = grid({"a": [1, 2], "b": ["x"]})
        assert len(combos) == 2
        assert {"a": 1, "b": "x"} in combos

    def test_default_grid_matches_paper_space(self):
        assert set(DEFAULT_KUCNET_GRID) == {"learning_rate", "k", "depth",
                                            "activation"}
        assert DEFAULT_KUCNET_GRID["depth"] == [3, 4, 5]
        assert set(DEFAULT_KUCNET_GRID["activation"]) == {"identity", "tanh",
                                                          "relu"}

    def test_search_selects_lowest_loss(self, setup):
        _, split, _ = setup
        result = search_kucnet(
            split,
            search_space={"learning_rate": [1e-5, 5e-3], "depth": [3]},
            epochs=2, seed=0)
        assert len(result.trials) == 2
        assert result.best.final_loss == min(t.final_loss
                                             for t in result.trials)
        # a sane learning rate must beat a hopeless one
        assert result.best.params["learning_rate"] == 5e-3

    def test_max_trials_caps(self, setup):
        _, split, _ = setup
        result = search_kucnet(
            split, search_space={"learning_rate": [1e-3, 3e-3, 5e-3]},
            epochs=1, max_trials=2)
        assert len(result.trials) == 2

    def test_empty_space_rejected(self, setup):
        _, split, _ = setup
        with pytest.raises(ValueError):
            search_kucnet(split, search_space={"learning_rate": []})

    def test_summary_format(self, setup):
        _, split, _ = setup
        result = search_kucnet(split,
                               search_space={"learning_rate": [3e-3]},
                               epochs=1)
        assert "best loss" in result.summary()
