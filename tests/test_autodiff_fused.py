"""Tests for the fused message-passing super-ops (``repro.autodiff.fused``).

The fused kernels must be *bitwise* interchangeable with the unfused
reference compositions on the KUCNet hot path (the golden-loss fixtures
pin per-epoch losses exactly, and CI runs the suite under both
``REPRO_FUSED`` settings), so parity here is asserted with the strict
``check_gradients_match`` defaults (atol=0, rtol=1e-6) and, for the
attention layer, exact equality.
"""

import os

import numpy as np
import pytest

from repro import telemetry as tm
from repro.autodiff import (Tensor, check_gradients, check_gradients_match,
                            force_fusion, fused_attention_messages,
                            fused_gather_mul_segment_sum, fused_rgcn_messages,
                            fused_segment_softmax, fusion_enabled,
                            gather_rows, segment_softmax, segment_sum)
from repro.autodiff import fused as fused_mod
from repro.core.layers import AttentionMessagePassing
from repro.sampling import LayerEdges


def _layer_inputs(num_src=12, num_dst=9, num_edges=40, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_src, size=num_edges)
    # leave the last two destinations empty (empty-segment case)
    dst = np.sort(rng.integers(0, num_dst - 2, size=num_edges))
    rels = rng.integers(0, 7, size=num_edges)
    hidden = Tensor(rng.normal(size=(num_src, dim)), requires_grad=True)
    edges = LayerEdges(src_pos=src, relations=rels, dst_pos=dst,
                       heads=src, tails=dst)
    return hidden, edges, num_dst


def _make_layer(dim=6, use_attention=True, activation="relu", seed=3):
    return AttentionMessagePassing(dim=dim, attn_dim=4, num_relations=7,
                                   activation=activation,
                                   use_attention=use_attention,
                                   rng=np.random.default_rng(seed))


class TestFusionToggle:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED", raising=False)
        assert fusion_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FUSED", value)
        assert not fusion_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", ""])
    def test_env_keeps_enabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FUSED", value)
        assert fusion_enabled()

    def test_force_fusion_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED", "0")
        assert not fusion_enabled()
        with force_fusion(True):
            assert fusion_enabled()
            with force_fusion(False):
                assert not fusion_enabled()
            assert fusion_enabled()
        assert not fusion_enabled()

    def test_force_fusion_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with force_fusion(False):
                raise RuntimeError("boom")
        assert fused_mod._FORCED is None


class TestAttentionLayerParity:
    """Fused layer output/gradients are bitwise equal to the reference."""

    @pytest.mark.parametrize("use_attention", [True, False])
    @pytest.mark.parametrize("activation", ["identity", "relu", "tanh"])
    def test_bitwise_parity(self, use_attention, activation):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer(use_attention=use_attention,
                            activation=activation)
        params = [hidden] + list(layer.parameters())

        def run(fused):
            def fn():
                with force_fusion(fused):
                    out, _ = layer(hidden, edges, num_dst)
                return (out * out).sum()
            return fn

        check_gradients_match(run(True), run(False), params,
                              atol=0.0, rtol=0.0)

    def test_attention_values_match(self):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer()
        with force_fusion(True):
            _, fused_alpha = layer(hidden, edges, num_dst,
                                   collect_attention=True)
        with force_fusion(False):
            _, ref_alpha = layer(hidden, edges, num_dst,
                                 collect_attention=True)
        assert np.array_equal(fused_alpha, ref_alpha)

    def test_attention_none_unless_collected(self):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer()
        for fused in (True, False):
            with force_fusion(fused):
                _, alpha = layer(hidden, edges, num_dst)
            assert alpha is None

    def test_no_attention_collects_ones(self):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer(use_attention=False)
        with force_fusion(True):
            _, alpha = layer(hidden, edges, num_dst, collect_attention=True)
        assert np.all(alpha == 1.0)

    def test_zero_edges(self):
        layer = _make_layer(dim=4)
        empty = LayerEdges(*(np.empty(0, dtype=np.int64) for _ in range(5)))
        for fused in (True, False):
            with force_fusion(fused):
                out, alpha = layer(Tensor(np.zeros((2, 4))), empty, 3,
                                   collect_attention=True)
            assert out.shape == (3, 4)
            assert np.all(out.data == 0.0)
            assert alpha.shape == (0,)

    def test_fused_finite_difference_gradcheck(self):
        hidden, edges, num_dst = _layer_inputs(num_src=6, num_dst=5,
                                               num_edges=12, dim=3)
        layer = _make_layer(dim=3, activation="tanh")
        params = [hidden] + list(layer.parameters())

        def fn():
            with force_fusion(True):
                out, _ = layer(hidden, edges, num_dst)
            return (out.tanh() * out).sum()

        assert check_gradients(fn, params, atol=1e-5, rtol=1e-3)

    def test_fused_produces_single_graph_node(self):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer(activation="identity")
        with force_fusion(True):
            out, _ = layer(hidden, edges, num_dst)
        # identity activation + no dropout: the layer output IS the
        # fused node, parented directly on inputs and parameters.
        assert hidden in out._parents
        assert layer.message_transform.weight in out._parents


class TestFusedSegmentSoftmax:
    def test_bitwise_vs_reference_with_empty_segments(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=14), requires_grad=True)
        seg = np.sort(rng.integers(0, 4, size=14))   # segments 4,5 empty
        check_gradients_match(
            lambda: (fused_segment_softmax(x, seg, 6) * Tensor(np.arange(14.0))).sum(),
            lambda: (_reference_segment_softmax(x, seg, 6) * Tensor(np.arange(14.0))).sum(),
            [x], atol=0.0, rtol=0.0)

    def test_dispatch_through_public_op(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(10, 3)), requires_grad=True)
        seg = np.sort(rng.integers(0, 5, size=10))
        with force_fusion(True):
            fused = segment_softmax(x, seg, 5)
        with force_fusion(False):
            ref = segment_softmax(x, seg, 5)
        assert np.array_equal(fused.data, ref.data)

    def test_mass_sums_to_one_per_nonempty_segment(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=20))
        seg = np.sort(rng.integers(0, 6, size=20))
        out = fused_segment_softmax(x, seg, 8)
        mass = np.zeros(8)
        np.add.at(mass, seg, out.data)
        for segment in range(8):
            if (seg == segment).any():
                assert mass[segment] == pytest.approx(1.0)


def _reference_segment_softmax(x, segment_ids, num_segments):
    seg_max = np.full((num_segments,) + x.data.shape[1:], -np.inf,
                      dtype=x.data.dtype)
    np.maximum.at(seg_max, segment_ids, x.data)
    shifted = x - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    return exp / gather_rows(denom, segment_ids)


class TestFusedGatherMulSegmentSum:
    def _arrays(self, seed=4, num_nodes=8, num_edges=25, dim=5):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = np.sort(rng.integers(0, num_nodes, size=num_edges))
        rels = rng.integers(0, 6, size=num_edges)
        x = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)
        table = Tensor(rng.normal(size=(6, dim)), requires_grad=True)
        per_edge = Tensor(rng.normal(size=(num_edges, 1)), requires_grad=True)
        return src, dst, rels, x, table, per_edge, num_nodes

    def test_plain_mode_bitwise(self):
        src, dst, _, x, _, _, n = self._arrays()
        check_gradients_match(
            lambda: (fused_gather_mul_segment_sum(x, src, dst, n) ** 2.0).sum(),
            lambda: (segment_sum(gather_rows(x, src), dst, n) ** 2.0).sum(),
            [x], atol=0.0, rtol=0.0)

    def test_gathered_table_mode_bitwise(self):
        src, dst, rels, x, table, _, n = self._arrays()
        check_gradients_match(
            lambda: (fused_gather_mul_segment_sum(
                x, src, dst, n, y=table, y_indices=rels) ** 2.0).sum(),
            lambda: (segment_sum(gather_rows(x, src)
                                 * gather_rows(table, rels), dst, n)
                     ** 2.0).sum(),
            [x, table], atol=0.0, rtol=0.0)

    def test_per_edge_operand_mode_bitwise(self):
        src, dst, _, x, _, per_edge, n = self._arrays()
        check_gradients_match(
            lambda: (fused_gather_mul_segment_sum(
                x, src, dst, n, y=per_edge) ** 2.0).sum(),
            lambda: (segment_sum(gather_rows(x, src) * per_edge, dst, n)
                     ** 2.0).sum(),
            [x, per_edge], atol=0.0, rtol=0.0)

    def test_finite_difference(self):
        src, dst, rels, x, table, _, n = self._arrays(num_nodes=5,
                                                      num_edges=9, dim=3)
        assert check_gradients(
            lambda: (fused_gather_mul_segment_sum(
                x, src, dst, n, y=table, y_indices=rels).tanh()).sum(),
            [x, table], atol=1e-5, rtol=1e-3)


class TestFusedRGCNMessages:
    def test_bitwise_vs_reference(self):
        rng = np.random.default_rng(5)
        num_nodes, num_edges, dim, num_bases = 7, 20, 4, 3
        heads = rng.integers(0, num_nodes, size=num_edges)
        tails = np.sort(rng.integers(0, num_nodes, size=num_edges))
        rels = rng.integers(0, 5, size=num_edges)
        hidden = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)
        bases = [Tensor(rng.normal(size=(dim, dim)), requires_grad=True)
                 for _ in range(num_bases)]
        coeffs = Tensor(rng.normal(size=(5, num_bases)), requires_grad=True)

        def reference():
            source = gather_rows(hidden, heads)
            coeff_rows = gather_rows(coeffs, rels)
            messages = None
            for index, basis in enumerate(bases):
                col = gather_rows(
                    coeff_rows.reshape(num_edges * num_bases, 1),
                    np.arange(num_edges) * num_bases + index)
                term = (source @ basis.T) * col
                messages = term if messages is None else messages + term
            return (segment_sum(messages, tails, num_nodes) ** 2.0).sum()

        check_gradients_match(
            lambda: (fused_rgcn_messages(hidden, heads, rels, tails,
                                         num_nodes, bases, coeffs)
                     ** 2.0).sum(),
            reference, [hidden, coeffs] + bases, atol=0.0, rtol=1e-12)


class TestFusionTelemetry:
    @pytest.fixture(autouse=True)
    def clean_registry(self):
        tm.disable()
        tm.reset()
        yield
        tm.disable()
        tm.reset()

    def test_counters_and_span_recorded(self):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer()
        with tm.enabled(True):
            with force_fusion(True):
                layer(hidden, edges, num_dst)
        registry = tm.get_registry()
        assert registry.counters["autodiff.fused_calls"].total == 1
        assert registry.counters["autodiff.fused_saved_bytes"].total > 0
        assert "autodiff.fused" in registry.spans

    def test_no_counters_on_reference_path(self):
        hidden, edges, num_dst = _layer_inputs()
        layer = _make_layer()
        with tm.enabled(True):
            with force_fusion(False):
                layer(hidden, edges, num_dst)
        assert "autodiff.fused_calls" not in tm.get_registry().counters

    def test_tape_bytes_shrink(self):
        """The acceptance criterion: >= 40% tape_bytes drop when fused."""
        hidden, edges, num_dst = _layer_inputs(num_src=60, num_dst=40,
                                               num_edges=400, dim=8)
        layer = _make_layer(dim=8)
        peaks = {}
        for fused in (True, False):
            tm.reset()
            with tm.enabled(True), force_fusion(fused):
                layer.zero_grad()
                hidden.zero_grad()
                out, _ = layer(hidden, edges, num_dst)
                (out * out).sum().backward()
                peaks[fused] = tm.get_registry().histograms[
                    "autodiff.tape_bytes"].maximum
        assert peaks[True] <= 0.6 * peaks[False]


class TestSubprocessEnvGate:
    def test_repro_fused_0_selects_reference(self):
        """REPRO_FUSED=0 must reach the reference composition end to end."""
        import subprocess
        import sys
        code = (
            "from repro.autodiff import fusion_enabled;"
            "assert not fusion_enabled()"
        )
        env = dict(os.environ, REPRO_FUSED="0",
                   PYTHONPATH=os.pathsep.join(
                       filter(None, ["src", os.environ.get("PYTHONPATH")])))
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                cwd=os.path.dirname(os.path.dirname(
                                    os.path.abspath(__file__))))
        assert result.returncode == 0
