"""Smoke tests of the experiment runners at a miniature profile.

The benches run these at real scale; here we verify the runner plumbing
(splits, method construction, table assembly) end-to-end in seconds.
"""

import pytest

from repro.experiments import (Profile, run_fig4, run_fig5, run_fig6,
                               run_fig7, run_table6, run_table9)

MINI = Profile(name="mini", scale=0.15, baseline_epochs=1, kucnet_epochs=1,
               eval_users=5, num_seeds=1)


class TestRunnerPlumbing:
    def test_fig5_parameter_counts(self):
        result = run_fig5(MINI, methods=("KGAT", "KUCNet"))
        assert result.rows["KUCNet"]["lastfm_like"] > 0
        assert (result.rows["KGAT"]["lastfm_like"]
                > result.rows["KUCNet"]["lastfm_like"])

    def test_fig6_cost_comparison(self):
        result = run_fig6(MINI, num_users=2)
        assert set(result.rows) == {"KUCNet-UI", "KUCNet-w.o.-PPR", "KUCNet"}
        assert result.rows["KUCNet-UI"]["edges"] > 0

    def test_fig4_learning_curves(self):
        result = run_fig4(MINI, methods=("KUCNet", "KGIN"), eval_every=1)
        methods = {row.split(" @epoch")[0] for row in result.rows}
        assert methods == {"KUCNet", "KGIN"}
        for cells in result.rows.values():
            assert cells["seconds"] >= 0

    def test_fig7_explanations(self):
        result = run_fig7(MINI, num_cases=1)
        assert len(result.rows) == 2  # one case per setting
        assert result.notes

    def test_table6_stage_times(self):
        result = run_table6(MINI)
        for dataset in result.columns:
            assert result.rows["PPR (s)"][dataset] >= 0
            assert result.rows["Training (s)"][dataset] > 0

    def test_table9_variant_rows(self):
        result = run_table9(MINI)
        assert set(result.rows) == {"KUCNet-random", "KUCNet-w.o.-Attn",
                                    "KUCNet"}
        assert len(result.columns) == 4

    def test_table5_multi_fold(self):
        from repro.experiments import run_table5

        result = run_table5(MINI, methods=["MF", "PPR"], folds=(0, 1))
        assert set(result.rows) == {"MF", "PPR"}
        for cells in result.rows.values():
            assert "new_item:recall" in cells
            assert "new_user:ndcg" in cells
