"""Flight recorder tests: ring buffer, exporters, worker lanes, trace CLI.

The contract under test (docs/observability.md, "Flight recorder"):
event capture is opt-in and bounded, every exported Chrome trace is
balanced per lane (``validate_chrome_trace`` passes even when the ring
buffer truncated the log), worker events merged by
:mod:`repro.parallel` land in their own lanes on the parent timeline,
and ``repro trace`` wraps any other CLI command end-to-end.
"""

import json
import time

import pytest

from repro import telemetry as tm
from repro.cli import main
from repro.parallel import run_parallel
from repro.telemetry.events import EventLog, TraceEvent


@pytest.fixture(autouse=True)
def clean_state():
    """Every test starts disabled, with no registry state or event log."""
    tm.disable()
    tm.reset()
    tm.disable_events()
    yield
    tm.disable()
    tm.reset()
    tm.disable_events()


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------

class TestEventLog:
    def test_records_in_order(self):
        log = EventLog(capacity=16)
        log.begin("a", 0)
        log.begin("b", 1)
        log.end("b", 1)
        log.end("a", 0)
        log.instant("mark", {"k": 1})
        kinds = [(e.kind, e.name) for e in log.events()]
        assert kinds == [("B", "a"), ("B", "b"), ("E", "b"), ("E", "a"),
                         ("I", "mark")]
        assert log.dropped == 0

    def test_ring_keeps_newest_and_counts_drops(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.instant(f"e{index}")
        assert len(log) == 4
        assert log.dropped == 6
        names = [e.name for e in log.events()]
        assert names == ["e6", "e7", "e8", "e9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)

    def test_timestamps_monotonic(self):
        log = EventLog()
        for _ in range(5):
            log.instant("tick")
        stamps = [e.ts for e in log.events()]
        assert stamps == sorted(stamps)


class TestWorkerMerge:
    def test_merge_assigns_stable_lanes_per_pid(self):
        parent = EventLog()
        worker = EventLog()
        worker.begin("w.task", 0)
        worker.end("w.task", 0)
        snapshot = worker.snapshot()
        snapshot["pid"] = 4242
        lane_first = parent.merge_worker(snapshot)
        lane_again = parent.merge_worker(dict(snapshot, events=[]))
        assert lane_first == lane_again == 1
        assert parent.lanes() == {0: "main", 1: "worker-4242"}
        assert all(e.lane == 1 for e in parent.events())

    def test_merge_reanchors_worker_timestamps(self):
        parent = EventLog()
        worker = EventLog()
        worker.instant("w.mark")
        snapshot = worker.snapshot()
        # Simulate a worker whose perf_counter epoch differs wildly from
        # the parent's (the cross-process reality): shift both the
        # anchor and the event timestamps by the same offset.
        offset = 1e6
        snapshot["anchor_perf"] += offset
        snapshot["events"] = [
            [kind, name, ts + offset, depth, error, args]
            for kind, name, ts, depth, error, args in snapshot["events"]]
        parent.merge_worker(snapshot)
        merged = parent.events()[0]
        # Re-anchored onto the parent timeline: within clock-sync slack
        # of the parent's own anchor, nowhere near the 1e6 raw offset.
        assert abs(merged.ts - parent.anchor_perf) < 60.0

    def test_merge_accumulates_worker_drops(self):
        parent = EventLog()
        worker = EventLog(capacity=2)
        for _ in range(5):
            worker.instant("w")
        parent.merge_worker(worker.snapshot())
        assert parent.dropped == 3


# ----------------------------------------------------------------------
# Capture gating
# ----------------------------------------------------------------------

class TestCaptureGating:
    def test_capture_events_arms_and_restores(self):
        assert not tm.events_enabled()
        with tm.capture_events() as log:
            assert tm.events_enabled()
            assert tm.is_enabled()
            with tm.span("unit"):
                pass
        assert not tm.events_enabled()
        assert not tm.is_enabled()
        assert [(e.kind, e.name) for e in log.events()] == [
            ("B", "unit"), ("E", "unit")]

    def test_no_events_without_log(self):
        with tm.enabled():
            with tm.span("unit"):
                pass
        assert tm.get_event_log() is None

    def test_no_events_when_telemetry_disabled(self):
        log = tm.enable_events()
        with tm.span("unit"):        # telemetry off: span records nothing
            pass
        tm.instant("mark")
        assert len(log) == 0

    def test_instant_records_args(self):
        with tm.capture_events() as log:
            tm.instant("health.alert", {"check": "grad_norm"})
        event = log.events()[0]
        assert event.kind == "I"
        assert event.args == {"check": "grad_norm"}

    def test_span_error_flag_reaches_events(self):
        with tm.capture_events() as log:
            with pytest.raises(RuntimeError):
                with tm.span("boom"):
                    raise RuntimeError("x")
        end = [e for e in log.events() if e.kind == "E"][0]
        assert end.error is True

    def test_nested_capture_restores_outer_log(self):
        with tm.capture_events() as outer:
            with tm.capture_events() as inner:
                with tm.span("deep"):
                    pass
            assert tm.get_event_log() is outer
        assert len(inner) == 2
        assert len(outer) == 0


# ----------------------------------------------------------------------
# Chrome trace exporter + validator
# ----------------------------------------------------------------------

class TestChromeTrace:
    def test_balanced_trace_validates(self):
        with tm.capture_events() as log:
            with tm.span("outer"):
                with tm.span("inner"):
                    pass
            tm.instant("mark")
        trace = tm.to_chrome_trace(log)
        counts = tm.validate_chrome_trace(trace)
        assert counts == {"B": 2, "E": 2, "i": 1, "M": 1}

    def test_timestamps_relative_microseconds(self):
        with tm.capture_events() as log:
            with tm.span("outer"):
                time.sleep(0.002)
        trace = tm.to_chrome_trace(log)
        begin, end = [e for e in trace["traceEvents"] if e["ph"] in "BE"]
        assert begin["ts"] == 0.0
        assert end["ts"] >= 2_000          # >= 2ms in microseconds

    def test_metadata_and_categories(self):
        with tm.capture_events() as log:
            with tm.span("train.forward"):
                pass
        trace = tm.to_chrome_trace(log, metadata={"cmd": ["profile"]})
        begin = [e for e in trace["traceEvents"] if e["ph"] == "B"][0]
        assert begin["cat"] == "train"
        assert trace["metadata"]["cmd"] == ["profile"]
        assert trace["metadata"]["dropped"] == 0

    def test_truncated_log_still_balances(self):
        # Capacity 3 on a 2-span block: the oldest events (including
        # "outer"'s begin) fall off the ring; the exporter must skip the
        # orphaned end and stay balanced.
        with tm.capture_events(capacity=3) as log:
            for _ in range(4):
                with tm.span("outer"):
                    with tm.span("inner"):
                        pass
        assert log.dropped > 0
        counts = tm.validate_chrome_trace(tm.to_chrome_trace(log))
        assert counts["B"] == counts["E"]

    def test_open_span_closed_at_final_timestamp(self):
        log = EventLog()
        log.begin("never.closed", 0)
        log.instant("later")
        counts = tm.validate_chrome_trace(to_trace := tm.to_chrome_trace(log))
        assert counts["B"] == counts["E"] == 1
        phases = [e["ph"] for e in to_trace["traceEvents"] if e["ph"] != "M"]
        assert phases[-1] == "E"

    def test_write_chrome_trace_round_trip(self, tmp_path):
        with tm.capture_events() as log:
            with tm.span("unit"):
                pass
        path = tmp_path / "trace.json"
        tm.write_chrome_trace(str(path), log)
        trace = json.loads(path.read_text())
        assert tm.validate_chrome_trace(trace)["B"] == 1

    def test_validator_rejects_unbalanced(self):
        trace = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 0.0}]}
        with pytest.raises(ValueError, match="unclosed"):
            tm.validate_chrome_trace(trace)

    def test_validator_rejects_end_before_begin(self):
        trace = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 5.0},
            {"ph": "E", "pid": 0, "tid": 0, "ts": 1.0}]}
        with pytest.raises(ValueError, match="before its B"):
            tm.validate_chrome_trace(trace)

    def test_validator_rejects_orphan_end(self):
        trace = {"traceEvents": [
            {"ph": "E", "pid": 0, "tid": 0, "ts": 0.0}]}
        with pytest.raises(ValueError, match="no open B"):
            tm.validate_chrome_trace(trace)

    def test_validator_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="ts/pid/tid"):
            tm.validate_chrome_trace(
                {"traceEvents": [{"ph": "B", "name": "a"}]})
        with pytest.raises(ValueError, match="traceEvents"):
            tm.validate_chrome_trace({})


# ----------------------------------------------------------------------
# Folded stacks
# ----------------------------------------------------------------------

class TestFoldedStacks:
    def test_stacks_carry_lane_and_nesting(self):
        with tm.capture_events() as log:
            with tm.span("outer"):
                with tm.span("inner"):
                    time.sleep(0.002)
        text = tm.to_folded_stacks(log)
        lines = dict(line.rsplit(" ", 1) for line in text.splitlines())
        assert set(lines) == {"main;outer", "main;outer;inner"}
        assert int(lines["main;outer;inner"]) >= 2_000

    def test_exclusive_time_convention(self):
        with tm.capture_events() as log:
            with tm.span("outer"):
                time.sleep(0.004)
                with tm.span("inner"):
                    time.sleep(0.002)
        values = dict(line.rsplit(" ", 1)
                      for line in tm.to_folded_stacks(log).splitlines())
        # outer's folded value excludes inner's time
        assert int(values["main;outer"]) >= 3_000
        outer_stats = tm.get_registry().spans["outer"]
        total_us = outer_stats.total_seconds * 1e6
        assert int(values["main;outer"]) < total_us - 1_000

    def test_write_folded_stacks(self, tmp_path):
        with tm.capture_events() as log:
            with tm.span("unit"):
                pass
        path = tmp_path / "flame.txt"
        assert tm.write_folded_stacks(str(path), log) == 1
        assert path.read_text().startswith("main;unit ")

    def test_empty_log_renders_empty(self):
        assert tm.to_folded_stacks(EventLog()) == ""


# ----------------------------------------------------------------------
# Worker lanes through repro.parallel
# ----------------------------------------------------------------------

def _spanned_square(context, task):
    with tm.span("work.unit"):
        return task * task


class TestWorkerLanes:
    def test_parallel_events_merge_into_lanes(self):
        with tm.capture_events() as log:
            results = run_parallel(_spanned_square, list(range(4)),
                                   num_workers=2)
        assert results == [0, 1, 4, 9]
        lanes = log.lanes()
        assert lanes[0] == "main"
        worker_lanes = {lane for lane, name in lanes.items() if lane != 0}
        assert worker_lanes                 # at least one worker lane
        worker_events = [e for e in log.events() if e.lane != 0]
        assert sum(1 for e in worker_events if e.kind == "B") == 4
        tm.validate_chrome_trace(tm.to_chrome_trace(log))

    def test_serial_path_stays_on_main_lane(self):
        with tm.capture_events() as log:
            run_parallel(_spanned_square, list(range(4)), num_workers=1)
        assert all(e.lane == 0 for e in log.events())
        assert log.lanes() == {0: "main"}

    def test_no_worker_events_without_capture(self):
        with tm.enabled():
            run_parallel(_spanned_square, list(range(4)), num_workers=2)
        assert tm.get_event_log() is None
        # aggregate merge still intact
        assert tm.get_registry().spans["work.unit"].count == 4


# ----------------------------------------------------------------------
# repro trace CLI
# ----------------------------------------------------------------------

class TestTraceCLI:
    def test_trace_wraps_profile(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        flame = tmp_path / "flame.txt"
        code = main(["trace", "--out", str(out), "--flame", str(flame),
                     "--", "profile", "--epochs", "1", "--scale", "0.05"])
        assert code == 0
        trace = json.loads(out.read_text())
        counts = tm.validate_chrome_trace(trace)
        assert counts["B"] > 0
        assert trace["metadata"]["cmd"][0] == "profile"
        assert "train.fit" in flame.read_text()
        assert not tm.events_enabled()      # recorder uninstalled after

    def test_trace_requires_a_command(self, capsys):
        assert main(["trace", "--out", "x.json"]) == 2
        assert "no command" in capsys.readouterr().err

    def test_trace_refuses_nesting(self, capsys):
        assert main(["trace", "--", "trace", "--", "list"]) == 2
        assert "refusing to nest" in capsys.readouterr().err

    def test_trace_passes_through_inner_exit_code(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(["trace", "--out", str(out), "--",
                     "profile", "--dataset", "nope"])
        assert code == 2
