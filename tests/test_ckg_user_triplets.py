"""Tests for user-side KG support in the CollaborativeKG (§V-D substrate)."""

import numpy as np
import pytest

from repro.graph import CollaborativeKG, KnowledgeGraph, UserItemGraph


@pytest.fixture
def parts():
    ui = UserItemGraph(3, 2, [(0, 0), (1, 1), (2, 0)])
    kg = KnowledgeGraph(4, 1, [(0, 0, 2), (1, 0, 3)])
    return ui, kg


class TestUserTriplets:
    def test_user_edges_present_with_reverses(self, parts):
        ui, kg = parts
        ckg = CollaborativeKG.build(ui, kg,
                                    user_triplets=[(0, 0, 1), (1, 0, 2)],
                                    num_user_relations=1)
        heads, rels, tails = ckg.out_edges(np.array([0]))
        user_rel = 1 + kg.num_relations  # after interact + KG relations
        forward = (rels == user_rel) & (tails == 1)
        assert forward.any()
        # reverse twin exists on the other endpoint
        heads1, rels1, tails1 = ckg.out_edges(np.array([1]))
        assert ((rels1 == ckg.reverse_relation(user_rel)) & (tails1 == 0)).any()

    def test_relation_count_includes_user_relations(self, parts):
        ui, kg = parts
        ckg = CollaborativeKG.build(ui, kg, user_triplets=[(0, 0, 1)],
                                    num_user_relations=1)
        assert ckg.num_base_relations == 1 + kg.num_relations + 1
        assert ckg.num_user_relations == 1
        assert ckg.num_kg_relations == kg.num_relations

    def test_missing_relation_count_rejected(self, parts):
        ui, kg = parts
        with pytest.raises(ValueError):
            CollaborativeKG.build(ui, kg, user_triplets=[(0, 0, 1)])

    def test_unknown_user_rejected(self, parts):
        ui, kg = parts
        with pytest.raises(ValueError):
            CollaborativeKG.build(ui, kg, user_triplets=[(0, 0, 99)],
                                  num_user_relations=1)

    def test_relation_out_of_range_rejected(self, parts):
        ui, kg = parts
        with pytest.raises(ValueError):
            CollaborativeKG.build(ui, kg, user_triplets=[(0, 5, 1)],
                                  num_user_relations=1)

    def test_no_user_triplets_default(self, parts):
        ui, kg = parts
        ckg = CollaborativeKG.build(ui, kg)
        assert ckg.num_user_relations == 0
        assert ckg.num_base_relations == 1 + kg.num_relations

    def test_relation_names_cover_user_relations(self, parts):
        ui, kg = parts
        ckg = CollaborativeKG.build(ui, kg, user_triplets=[(0, 0, 1)],
                                    num_user_relations=1)
        names = {ckg.relation_name(r) for r in range(ckg.num_relations)}
        assert "interact" in names
        assert "-interact" in names
        # distinct labels for every relation id
        assert len(names) == ckg.num_relations
