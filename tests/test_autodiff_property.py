"""Property-based gradient checks with hypothesis.

Random compositions of engine ops must match finite-difference gradients.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import (Tensor, check_gradients, gather_rows,
                            segment_softmax, segment_sum, softmax)


finite_floats = st.floats(min_value=-3.0, max_value=3.0,
                          allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_elementwise_chain_grad(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    check_gradients(lambda: ((ta * tb).tanh() + ta.sigmoid()).sum(), [ta, tb],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((4, 2)))
def test_matmul_chain_grad(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    check_gradients(lambda: ((ta @ tb).sigmoid() ** 2.0).sum(), [ta, tb],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((6, 3)),
       hnp.arrays(np.int64, (6,), elements=st.integers(min_value=0, max_value=3)))
def test_segment_sum_grad(x, seg):
    tx = Tensor(x, requires_grad=True)
    check_gradients(lambda: (segment_sum(tx, seg, 4).tanh() ** 2.0).sum(), [tx],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((5, 2)),
       hnp.arrays(np.int64, (7,), elements=st.integers(min_value=0, max_value=4)))
def test_gather_grad(x, idx):
    tx = Tensor(x, requires_grad=True)
    check_gradients(lambda: (gather_rows(tx, idx).sigmoid()).sum(), [tx],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((4, 5)))
def test_softmax_preserves_probability_mass(x):
    out = softmax(Tensor(x), axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0)
    assert np.all(out.data >= 0)


@settings(max_examples=25, deadline=None)
@given(arrays((8,)),
       hnp.arrays(np.int64, (8,), elements=st.integers(min_value=0, max_value=2)))
def test_segment_softmax_mass(x, seg):
    out = segment_softmax(Tensor(x), seg, 3)
    sums = np.zeros(3)
    np.add.at(sums, seg, out.data)
    present = np.unique(seg)
    assert np.allclose(sums[present], 1.0)


@settings(max_examples=20, deadline=None)
@given(arrays((3, 3)))
def test_grad_of_sum_is_ones(x):
    tx = Tensor(x, requires_grad=True)
    tx.sum().backward()
    assert np.allclose(tx.grad, 1.0)


@settings(max_examples=20, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_addition_commutes_in_grad(a, b):
    ta1 = Tensor(a, requires_grad=True)
    tb1 = Tensor(b, requires_grad=True)
    ((ta1 + tb1) * (ta1 + tb1)).sum().backward()
    ta2 = Tensor(a, requires_grad=True)
    tb2 = Tensor(b, requires_grad=True)
    ((tb2 + ta2) * (tb2 + ta2)).sum().backward()
    assert np.allclose(ta1.grad, ta2.grad)
    assert np.allclose(tb1.grad, tb2.grad)
