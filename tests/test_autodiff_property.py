"""Property-based gradient checks with hypothesis.

Random compositions of engine ops must match finite-difference gradients.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import (Tensor, check_gradients, gather_rows,
                            segment_max, segment_softmax, segment_sum,
                            softmax, where)


finite_floats = st.floats(min_value=-3.0, max_value=3.0,
                          allow_nan=False, allow_infinity=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_elementwise_chain_grad(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    check_gradients(lambda: ((ta * tb).tanh() + ta.sigmoid()).sum(), [ta, tb],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((3, 4)), arrays((4, 2)))
def test_matmul_chain_grad(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    check_gradients(lambda: ((ta @ tb).sigmoid() ** 2.0).sum(), [ta, tb],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((6, 3)),
       hnp.arrays(np.int64, (6,), elements=st.integers(min_value=0, max_value=3)))
def test_segment_sum_grad(x, seg):
    tx = Tensor(x, requires_grad=True)
    check_gradients(lambda: (segment_sum(tx, seg, 4).tanh() ** 2.0).sum(), [tx],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((5, 2)),
       hnp.arrays(np.int64, (7,), elements=st.integers(min_value=0, max_value=4)))
def test_gather_grad(x, idx):
    tx = Tensor(x, requires_grad=True)
    check_gradients(lambda: (gather_rows(tx, idx).sigmoid()).sum(), [tx],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(arrays((4, 5)))
def test_softmax_preserves_probability_mass(x):
    out = softmax(Tensor(x), axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0)
    assert np.all(out.data >= 0)


@settings(max_examples=25, deadline=None)
@given(arrays((8,)),
       hnp.arrays(np.int64, (8,), elements=st.integers(min_value=0, max_value=2)))
def test_segment_softmax_mass(x, seg):
    out = segment_softmax(Tensor(x), seg, 3)
    sums = np.zeros(3)
    np.add.at(sums, seg, out.data)
    present = np.unique(seg)
    assert np.allclose(sums[present], 1.0)


@settings(max_examples=20, deadline=None)
@given(arrays((3, 3)))
def test_grad_of_sum_is_ones(x):
    tx = Tensor(x, requires_grad=True)
    tx.sum().backward()
    assert np.allclose(tx.grad, 1.0)


@settings(max_examples=20, deadline=None)
@given(arrays((3, 4)), arrays((3, 4)))
def test_addition_commutes_in_grad(a, b):
    ta1 = Tensor(a, requires_grad=True)
    tb1 = Tensor(b, requires_grad=True)
    ((ta1 + tb1) * (ta1 + tb1)).sum().backward()
    ta2 = Tensor(a, requires_grad=True)
    tb2 = Tensor(b, requires_grad=True)
    ((tb2 + ta2) * (tb2 + ta2)).sum().backward()
    assert np.allclose(ta1.grad, ta2.grad)
    assert np.allclose(tb1.grad, tb2.grad)


# ----------------------------------------------------------------------
# segment_max / where / empty-segment segment_softmax gradients
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(arrays((7, 3)),
       hnp.arrays(np.int64, (7,), elements=st.integers(min_value=0, max_value=2)))
def test_segment_max_grad_with_fill_segments(x, seg):
    # num_segments=5 leaves segments 3 and 4 at the fill value; the
    # gradient must still match finite differences (zero into the fill).
    # Perturb toward distinct values so no tie straddles the fd epsilon.
    x = x + np.arange(x.size).reshape(x.shape) * 1e-3
    tx = Tensor(x, requires_grad=True)
    check_gradients(lambda: (segment_max(tx, seg, 5).tanh() ** 2.0).sum(),
                    [tx], atol=1e-4, rtol=1e-3)


def test_segment_max_tie_routes_grad_to_every_argmax():
    # Exact ties: the subgradient convention gives the full upstream
    # gradient to *each* maximal row (mask is an equality test, not a
    # partition) — pin that so a refactor cannot silently change it.
    x = Tensor(np.asarray([2.0, 2.0, 1.0, 5.0]), requires_grad=True)
    seg = np.asarray([0, 0, 0, 1])
    segment_max(x, seg, 2).sum().backward()
    assert np.array_equal(x.grad, np.asarray([1.0, 1.0, 0.0, 1.0]))


def test_segment_max_empty_segment_keeps_fill():
    x = Tensor(np.asarray([1.0, -4.0]), requires_grad=True)
    out = segment_max(x, np.asarray([0, 0]), 3, fill=-7.5)
    assert out.data[1] == -7.5 and out.data[2] == -7.5
    out.sum().backward()
    assert np.array_equal(x.grad, np.asarray([1.0, 0.0]))


@settings(max_examples=25, deadline=None)
@given(arrays((4, 3)), arrays((4, 3)),
       hnp.arrays(np.bool_, (4, 3), elements=st.booleans()))
def test_where_grad(a, b, condition):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    check_gradients(lambda: (where(condition, ta, tb).tanh() ** 2.0).sum(),
                    [ta, tb], atol=1e-4, rtol=1e-3)
    # the selected branch gets the gradient, the other exactly zero
    ta.zero_grad(); tb.zero_grad()
    where(condition, ta, tb).sum().backward()
    assert np.array_equal(ta.grad, condition.astype(np.float64))
    assert np.array_equal(tb.grad, 1.0 - condition.astype(np.float64))


@settings(max_examples=25, deadline=None)
@given(arrays((6,)),
       hnp.arrays(np.int64, (6,), elements=st.integers(min_value=0, max_value=2)))
def test_segment_softmax_grad_with_empty_segments(x, seg):
    # num_segments=5: at least two segments are empty; the op must stay
    # finite there and its gradient must match finite differences on
    # both the fused kernel and the reference composition.
    from repro.autodiff import force_fusion
    weights = Tensor(np.linspace(0.5, 2.0, 6))
    for fused in (True, False):
        tx = Tensor(x, requires_grad=True)
        with force_fusion(fused):
            out = segment_softmax(tx, seg, 5)
            assert np.all(np.isfinite(out.data))
            check_gradients(
                lambda: (segment_softmax(tx, seg, 5) * weights).sum(),
                [tx], atol=1e-4, rtol=1e-3)
