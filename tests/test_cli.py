"""Tests for the ``python -m repro`` command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_args(self):
        args = build_parser().parse_args(
            ["run", "table3", "--profile", "full", "--output", "/tmp/x"])
        assert args.experiment == "table3"
        assert args.profile == "full"

    def test_invalid_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table3", "--profile", "huge"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_usage_and_nonzero_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code != 0
        assert "usage:" in capsys.readouterr().err

    def test_profile_command_args(self):
        args = build_parser().parse_args(
            ["profile", "--sink", "jsonl", "--out", "/tmp/x.jsonl"])
        assert args.command == "profile"
        assert args.sink == "jsonl"
        assert args.out == "/tmp/x.jsonl"

    def test_profile_invalid_sink_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--sink", "xml"])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig6" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_datasets_command(self, tmp_path, capsys):
        assert main(["datasets", "--output", str(tmp_path), "--scale",
                     "0.15"]) == 0
        out = capsys.readouterr().out
        assert "lastfm_like" in out
        assert os.path.exists(tmp_path / "lastfm_like" / "interactions.tsv")
        assert os.path.exists(tmp_path / "disgenet_like" / "user_kg.tsv")

    def test_datasets_roundtrip(self, tmp_path):
        from repro.data import load_dataset
        main(["datasets", "--output", str(tmp_path), "--scale", "0.15"])
        dataset = load_dataset(str(tmp_path / "amazon_book_like"))
        assert dataset.name == "amazon_book_like"
        assert dataset.ui_graph.num_interactions > 0
