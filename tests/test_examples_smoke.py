"""Smoke tests for the example scripts.

Each example must at least import cleanly and expose ``main``; the
cheapest one is executed end-to-end.  (The full set is exercised
manually / by CI at longer budgets — each takes 15-60s.)
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = [
    "quickstart",
    "new_item_recommendation",
    "disease_gene_prediction",
    "interpretability",
    "compare_baselines",
    "kg_link_prediction",
    "profiling",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_and_has_main(name):
    module = load_example(name)
    assert callable(module.main)
    assert module.__doc__, f"{name}.py needs a module docstring"


def test_quickstart_runs_end_to_end(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "recall@20" in out
    assert "top-5 recommendations" in out
