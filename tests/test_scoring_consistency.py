"""Cross-path consistency: vectorized ``score_users`` vs ``pair_scores``.

Most baselines score pairs through the autodiff engine during training
but use a separate closed-form numpy path for all-item inference.  These
two implementations must agree — any drift is a silent correctness bug.
"""

import numpy as np
import pytest

from repro.baselines import (CKAN, CKE, FM, KGAT, KGIN, MF, NFM, RGCN,
                             BaselineConfig, LightGCN, NCF, TransERec)
from repro.data import lastfm_like, traditional_split

MODELS_WITH_CLOSED_FORM = [MF, FM, NFM, CKE, KGIN, RGCN, KGAT, LightGCN,
                           TransERec, CKAN]


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)


@pytest.mark.parametrize("model_cls", MODELS_WITH_CLOSED_FORM,
                         ids=[m.name for m in MODELS_WITH_CLOSED_FORM])
def test_score_users_matches_pair_scores(split, model_cls):
    model = model_cls(BaselineConfig(dim=8, epochs=1, seed=0)).fit(split)
    model.eval()
    users = [0, 3]
    items = np.arange(min(12, split.dataset.num_items))
    full = model.score_users(users)
    for row, user in enumerate(users):
        user_array = np.full(items.size, user, dtype=np.int64)
        pairwise = model.pair_scores(user_array, items).data
        assert np.allclose(full[row, items], pairwise, atol=1e-8), (
            f"{model_cls.name}: inference path disagrees with training path")


def test_ncf_paths_agree(split):
    # NCF's score_users already reuses pair_scores; sanity-check anyway.
    model = NCF(BaselineConfig(dim=8, epochs=1, seed=0)).fit(split)
    model.eval()
    full = model.score_users([1])
    items = np.arange(6)
    pairwise = model.pair_scores(np.full(6, 1, dtype=np.int64), items).data
    assert np.allclose(full[0, items], pairwise)
