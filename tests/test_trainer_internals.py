"""Tests for KUCNetRecommender internals: caching, pools, PPR normalization."""

import numpy as np
import pytest

from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import lastfm_like, new_item_split, traditional_split


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)


class TestGraphCache:
    def test_ppr_sampler_caches_batch_graphs(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=10, seed=0))
        rec.prepare(split)
        first = rec._graph_for((0, 1, 2))
        second = rec._graph_for((0, 1, 2))
        assert first is second

    def test_random_sampler_does_not_cache(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=10, sampler="random",
                                            seed=0))
        rec.prepare(split)
        first = rec._graph_for((0, 1, 2))
        second = rec._graph_for((0, 1, 2))
        assert first is not second


class TestNegativePool:
    def test_negatives_only_from_training_items(self):
        dataset = lastfm_like(seed=0, scale=0.25)
        split = new_item_split(dataset, fold=0, seed=0)
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=10, pairs_per_user=8,
                                            seed=0))
        rec.prepare(split)
        train_nodes = set(rec.ckg.item_nodes[np.unique(split.train.items)])
        users = split.train.users_with_interactions()[:10]
        _, pos_nodes, neg_nodes = rec._sample_pairs(users, split)
        assert set(neg_nodes.tolist()) <= train_nodes
        assert set(pos_nodes.tolist()) <= train_nodes


class TestPPRNormalization:
    def test_degree_normalization_changes_scores(self, split):
        raw = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_degree_normalized=False))
        raw.prepare(split)
        normalized = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_degree_normalized=True))
        normalized.prepare(split)
        assert not np.allclose(raw.ppr_scores, normalized.ppr_scores)
        degrees = np.diff(raw.ckg.indptr).astype(float)
        expected = raw.ppr_scores / np.maximum(degrees, 1.0)[None, :]
        assert np.allclose(normalized.ppr_scores, expected)

    def test_normalization_shifts_ranking_away_from_hubs(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_degree_normalized=False))
        rec.prepare(split)
        degrees = np.diff(rec.ckg.indptr).astype(float)
        raw_top = np.argsort(-rec.ppr_scores[0])[:20]
        norm_scores = rec.ppr_scores[0] / np.maximum(degrees, 1.0)
        norm_top = np.argsort(-norm_scores)[:20]
        # degree-normalized ranking prefers lower-degree nodes on average
        assert degrees[norm_top].mean() <= degrees[raw_top].mean()


class TestScoreOverrides:
    def test_score_users_k_override(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=5, seed=0))
        rec.fit(split)
        pruned = rec.score_users([0, 1])
        full = rec.score_users([0, 1], k=None)
        assert pruned.shape == full.shape
        # unpruned graphs reach at least as many items (non-zero scores)
        assert (full != 0).sum() >= (pruned != 0).sum()

    def test_count_inference_edges_ordering(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=5, seed=0))
        rec.prepare(split)
        users = [0, 1]
        pruned = rec.count_inference_edges(users, mode="pruned")
        full = rec.count_inference_edges(users, mode="full")
        ui = rec.count_inference_edges(users, mode="ui")
        assert pruned <= full
        assert full < ui

    def test_ui_scoring_matches_for_reachable_items(self, split):
        """Per-pair U-I scoring must agree with user-centric scoring when
        no pruning is applied (Proposition 1 at the model level)."""
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=None, seed=0))
        rec.fit(split)
        user = 0
        centric = rec.score_users([user], k=None)[0]
        items = list(range(8))
        ui = rec.score_users_via_ui_subgraphs([user], items=items)[0]
        for item in items:
            assert ui[item] == pytest.approx(centric[item], abs=1e-8)
