"""Tests for KUCNetRecommender internals: caching, pools, PPR normalization."""

import numpy as np
import pytest

from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.core.trainer import MAX_NEGATIVE_RESAMPLES
from repro.data import lastfm_like, new_item_split, traditional_split


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)


class TestGraphCache:
    def test_ppr_sampler_caches_batch_graphs(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=10, seed=0))
        rec.prepare(split)
        first = rec._graph_for((0, 1, 2))
        second = rec._graph_for((0, 1, 2))
        assert first is second

    def test_random_sampler_does_not_cache(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=10, sampler="random",
                                            seed=0))
        rec.prepare(split)
        first = rec._graph_for((0, 1, 2))
        second = rec._graph_for((0, 1, 2))
        assert first is not second

    def test_cache_hits_across_epochs(self, split):
        """Regression: epoch batches must reuse cached graphs.

        Shuffling batch *membership* every epoch (the old behavior) made
        every batch tuple unique, so the cache never hit and grew by one
        graph per batch per epoch.  With stable membership, epoch 2
        onward is all hits and the miss count equals the batch count.
        """
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=2, seed=0),
                                TrainConfig(epochs=30, k=5, batch_users=24,
                                            seed=0))
        rec.fit(split)
        num_batches = rec.graph_cache_misses
        users = split.train.users_with_interactions()
        assert num_batches == int(np.ceil(len(users) / 24))
        assert rec.graph_cache_hits == 29 * num_batches
        assert len(rec._graph_cache) <= rec.train_config.graph_cache_entries

    def test_cache_respects_tight_bound(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=3, k=5, batch_users=24,
                        graph_cache_entries=2, seed=0))
        rec.fit(split)
        assert len(rec._graph_cache) <= 2
        # the bound forces re-builds, but never lets the cache grow
        assert rec.graph_cache_misses >= 2

    def test_lru_evicts_oldest_entry(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=5, graph_cache_entries=2, seed=0))
        rec.prepare(split)
        first = rec._graph_for((0,))
        rec._graph_for((1,))
        rec._graph_for((0,))          # refresh (0,) so (1,) is oldest
        rec._graph_for((2,))          # evicts (1,)
        assert set(rec._graph_cache) == {(0,), (2,)}
        assert rec._graph_for((0,)) is first


class TestNegativePool:
    def test_negatives_only_from_training_items(self):
        dataset = lastfm_like(seed=0, scale=0.25)
        split = new_item_split(dataset, fold=0, seed=0)
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=10, pairs_per_user=8,
                                            seed=0))
        rec.prepare(split)
        train_nodes = set(rec.ckg.item_nodes[np.unique(split.train.items)])
        users = split.train.users_with_interactions()[:10]
        _, pos_nodes, neg_nodes = rec._sample_pairs(users, split)
        assert set(neg_nodes.tolist()) <= train_nodes
        assert set(pos_nodes.tolist()) <= train_nodes

    def test_saturated_pool_terminates_and_skips_user(self, split):
        """Regression: a user whose positives cover the whole training
        pool used to spin the rejection-resampling loop forever."""
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=2, seed=0),
                                TrainConfig(epochs=1, k=5, pairs_per_user=4,
                                            seed=0))
        rec.prepare(split)
        users = split.train.users_with_interactions()
        user = int(users[0])
        positives = np.asarray(sorted(split.train.positives(user)),
                               dtype=np.int64)
        rec._train_item_pool = positives      # every pooled item collides
        with pytest.warns(RuntimeWarning, match="skipping the user"):
            slots, pos_nodes, neg_nodes = rec._sample_pairs([user], split)
        assert slots.size == 0
        assert pos_nodes.size == 0 and neg_nodes.size == 0

    def test_single_escape_item_found_by_set_difference(self, split):
        """With exactly one valid negative in the pool, the capped loop
        plus set-difference fallback must find it instead of hanging."""
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=2, seed=0),
                                TrainConfig(epochs=1, k=5, pairs_per_user=4,
                                            seed=0))
        rec.prepare(split)
        users = split.train.users_with_interactions()
        user = int(users[0])
        positives = np.asarray(sorted(split.train.positives(user)),
                               dtype=np.int64)
        pool = np.unique(split.train.items)
        escapes = np.setdiff1d(pool, positives)
        assert escapes.size > 0
        escape = escapes[:1]
        rec._train_item_pool = np.sort(np.concatenate([positives, escape]))
        slots, _, neg_nodes = rec._sample_pairs([user], split)
        assert slots.size == 4
        assert (neg_nodes == rec.ckg.item_nodes[escape[0]]).all()

    def test_normal_users_never_reach_the_cap(self, split):
        """Sanity: the attempt cap is a pathology guard, not a behavior
        change — ordinary pools resolve well within it."""
        assert MAX_NEGATIVE_RESAMPLES >= 8
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=2, seed=0),
                                TrainConfig(epochs=1, k=5, pairs_per_user=4,
                                            seed=0))
        rec.prepare(split)
        users = split.train.users_with_interactions()[:16]
        slots, pos_nodes, neg_nodes = rec._sample_pairs(users, split)
        assert slots.size == 4 * len(users)
        for slot, user in enumerate(users):
            forbidden = rec.ckg.item_nodes[
                np.asarray(sorted(split.train.positives(user)))]
            assert not np.isin(neg_nodes[slots == slot], forbidden).any()


class TestPPRNormalization:
    def test_degree_normalization_changes_scores(self, split):
        raw = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_degree_normalized=False))
        raw.prepare(split)
        normalized = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_degree_normalized=True))
        normalized.prepare(split)
        assert not np.allclose(raw.ppr_scores, normalized.ppr_scores)
        degrees = np.diff(raw.ckg.indptr).astype(float)
        expected = raw.ppr_scores / np.maximum(degrees, 1.0)[None, :]
        assert np.allclose(normalized.ppr_scores, expected)

    def test_normalization_shifts_ranking_away_from_hubs(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_degree_normalized=False))
        rec.prepare(split)
        degrees = np.diff(rec.ckg.indptr).astype(float)
        raw_top = np.argsort(-rec.ppr_scores[0])[:20]
        norm_scores = rec.ppr_scores[0] / np.maximum(degrees, 1.0)
        norm_top = np.argsort(-norm_scores)[:20]
        # degree-normalized ranking prefers lower-degree nodes on average
        assert degrees[norm_top].mean() <= degrees[raw_top].mean()


class TestScoreOverrides:
    def test_score_users_k_override(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=5, seed=0))
        rec.fit(split)
        pruned = rec.score_users([0, 1])
        full = rec.score_users([0, 1], k=None)
        assert pruned.shape == full.shape
        # unpruned graphs reach at least as many items (non-zero scores)
        assert (full != 0).sum() >= (pruned != 0).sum()

    def test_count_inference_edges_ordering(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=5, seed=0))
        rec.prepare(split)
        users = [0, 1]
        pruned = rec.count_inference_edges(users, mode="pruned")
        full = rec.count_inference_edges(users, mode="full")
        ui = rec.count_inference_edges(users, mode="ui")
        assert pruned <= full
        assert full < ui

    def test_count_inference_edges_respects_random_sampler(self, split):
        """Regression: the pruned-mode edge count always used the PPR
        sampler (a dead ternary), so KUCNet-random's Fig. 6 bar measured
        the wrong model.  The random sampler draws from ``self._rng``;
        the PPR sampler never touches it — rng-state consumption is
        therefore an exact probe for which sampler actually ran."""
        random_rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=5, sampler="random", seed=0))
        random_rec.prepare(split)
        before = random_rec._rng.bit_generator.state
        random_rec.count_inference_edges([0, 1], mode="pruned")
        assert random_rec._rng.bit_generator.state != before

        ppr_rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                    TrainConfig(epochs=1, k=5, seed=0))
        ppr_rec.prepare(split)
        before = ppr_rec._rng.bit_generator.state
        ppr_rec.count_inference_edges([0, 1], mode="pruned")
        assert ppr_rec._rng.bit_generator.state == before

    def test_count_inference_edges_random_sampler_varies(self, split):
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=3, seed=0),
            TrainConfig(epochs=1, k=5, sampler="random", seed=0))
        rec.prepare(split)
        counts = {rec.count_inference_edges([0, 1], mode="pruned")
                  for _ in range(5)}
        assert len(counts) > 1

    def test_ui_scoring_matches_for_reachable_items(self, split):
        """Per-pair U-I scoring must agree with user-centric scoring when
        no pruning is applied (Proposition 1 at the model level)."""
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=3, seed=0),
                                TrainConfig(epochs=1, k=None, seed=0))
        rec.fit(split)
        user = 0
        centric = rec.score_users([user], k=None)[0]
        items = list(range(8))
        ui = rec.score_users_via_ui_subgraphs([user], items=items)[0]
        for item in items:
            assert ui[item] == pytest.approx(centric[item], abs=1e-8)
