"""Tests for the callback-driven training engine (repro.engine)."""

import numpy as np
import pytest

from repro import telemetry
from repro.autodiff import Adam, Module, Parameter
from repro.engine import (BestCheckpoint, EarlyStopping, Engine,
                          EpochCallback, EpochStats, History, Hook,
                          ProgressLogger, TelemetryHook)


class Quadratic(Module):
    """Minimal trainable module: loss = mean((w - target)^2)."""

    def __init__(self, target: float = 3.0):
        super().__init__()
        self.w = Parameter(np.zeros(4), name="w")
        self.target = target

    def loss(self):
        diff = self.w - self.target
        return (diff * diff).mean()


def make_engine(module, hooks=(), lr=0.1):
    return Engine(Adam(module.parameters(), lr=lr), hooks=hooks)


def constant_batches(num_batches=2):
    return lambda epoch: [None] * num_batches


class TestEngineLoop:
    def test_fit_runs_epochs_and_optimizes(self):
        module = Quadratic()
        history = History()
        engine = make_engine(module, hooks=[history])
        records = engine.fit(lambda batch: module.loss(),
                             constant_batches(), epochs=5)
        assert len(records) == 5
        assert len(history.stats) == 5
        assert [s.epoch for s in history.stats] == list(range(5))
        # the optimizer actually stepped: loss decreases monotonically here
        losses = [s.loss for s in history.stats]
        assert losses[-1] < losses[0]
        # EpochStats bookkeeping
        cumulative = [s.cumulative_seconds for s in history.stats]
        assert cumulative == sorted(cumulative)
        assert all(s.seconds >= 0.0 for s in history.stats)

    def test_none_loss_skips_optimizer_update(self):
        module = Quadratic()
        before = module.w.data.copy()
        engine = make_engine(module)
        stats = engine.run_epoch(lambda batch: None, constant_batches(3),
                                 epoch=0)
        assert stats.loss == 0.0
        np.testing.assert_array_equal(module.w.data, before)

    def test_mean_loss_ignores_skipped_batches(self):
        module = Quadratic()
        engine = make_engine(module, lr=0.0)

        def step(batch):
            return module.loss() if batch == "keep" else None

        stats = engine.run_epoch(
            step, lambda epoch: ["keep", "skip", "keep"], epoch=0)
        assert stats.loss == pytest.approx(9.0)

    def test_request_stop_halts_after_epoch(self):
        module = Quadratic()

        class StopAtTwo(Hook):
            def on_epoch_end(self, engine, stats):
                if stats.epoch == 1:
                    engine.request_stop()

        history = History()
        engine = make_engine(module, hooks=[history, StopAtTwo()])
        engine.fit(lambda batch: module.loss(), constant_batches(), epochs=50)
        assert len(history.stats) == 2

    def test_hooks_fire_in_order(self):
        module = Quadratic()
        events = []

        class Recorder(Hook):
            def __init__(self, tag):
                self.tag = tag

            def on_fit_start(self, engine):
                events.append((self.tag, "fit_start"))

            def on_epoch_end(self, engine, stats):
                events.append((self.tag, "epoch_end"))

        engine = make_engine(module, hooks=[Recorder("a"), Recorder("b")])
        engine.fit(lambda batch: module.loss(), constant_batches(1), epochs=1)
        assert events == [("a", "fit_start"), ("b", "fit_start"),
                          ("a", "epoch_end"), ("b", "epoch_end")]


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        module = Quadratic()
        history = History()
        # lr=0 → the loss never improves → first epoch sets best, then
        # `patience` stale epochs trip the stop.
        engine = make_engine(module, hooks=[history, EarlyStopping(patience=2)],
                             lr=0.0)
        engine.fit(lambda batch: module.loss(), constant_batches(), epochs=50)
        assert len(history.stats) == 3

    def test_improvement_resets_patience(self):
        module = Quadratic()
        history = History()
        engine = make_engine(
            module, hooks=[history, EarlyStopping(patience=3,
                                                  min_improvement=1e-6)])
        engine.fit(lambda batch: module.loss(), constant_batches(), epochs=8)
        # steady Adam convergence on a quadratic improves every epoch
        assert len(history.stats) == 8

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestBestCheckpoint:
    def test_restores_best_epoch_parameters(self):
        module = Quadratic()
        snapshots = []

        class SnapshotEachEpoch(Hook):
            def on_epoch_end(self, engine, stats):
                snapshots.append((stats.loss, module.state_dict()))

        checkpoint = BestCheckpoint(module)
        # Adam with a huge lr diverges on this quadratic, so the best
        # epoch is NOT the last one — restore must rewind.
        engine = make_engine(module,
                             hooks=[SnapshotEachEpoch(), checkpoint], lr=4.0)
        engine.fit(lambda batch: module.loss(), constant_batches(), epochs=6)

        best_loss, best_state = min(snapshots, key=lambda pair: pair[0])
        assert checkpoint.best_loss == best_loss
        np.testing.assert_array_equal(module.w.data, best_state["w"])

    def test_no_epochs_leaves_parameters_untouched(self):
        module = Quadratic()
        before = module.w.data.copy()
        checkpoint = BestCheckpoint(module)
        engine = make_engine(module, hooks=[checkpoint])
        engine.fit(lambda batch: module.loss(), constant_batches(), epochs=0)
        np.testing.assert_array_equal(module.w.data, before)
        assert checkpoint.best_epoch is None


class TestTelemetryHook:
    def test_uniform_spans_and_counters(self):
        module = Quadratic()
        engine = make_engine(module, hooks=[TelemetryHook()])
        with telemetry.enabled():
            telemetry.reset()
            engine.fit(lambda batch: module.loss(), constant_batches(3),
                       epochs=2)
            snapshot = telemetry.get_registry().snapshot()
        assert snapshot["spans"]["train.epoch"]["count"] == 2
        assert snapshot["spans"]["train.batch"]["count"] == 6
        assert snapshot["counters"]["train.epochs"]["total"] == 2

    def test_exception_closes_open_spans(self):
        module = Quadratic()
        engine = make_engine(module, hooks=[TelemetryHook()])

        def exploding(batch):
            raise RuntimeError("boom")

        with telemetry.enabled():
            telemetry.reset()
            with pytest.raises(RuntimeError):
                engine.fit(exploding, constant_batches(1), epochs=1)
            # the tracer stack must be balanced: a fresh span nests at
            # the top level instead of under a dangling train.epoch
            with telemetry.span("probe"):
                pass
            snapshot = telemetry.get_registry().snapshot()
        assert snapshot["spans"]["probe"]["count"] == 1


class TestAdapters:
    def test_epoch_callback_receives_stats(self):
        module = Quadratic()
        seen = []
        engine = make_engine(module, hooks=[EpochCallback(seen.append)])
        engine.fit(lambda batch: module.loss(), constant_batches(1), epochs=3)
        assert [stats.epoch for stats in seen] == [0, 1, 2]
        assert all(isinstance(stats, EpochStats) for stats in seen)

    def test_progress_logger_formats_lines(self):
        module = Quadratic()
        lines = []
        engine = make_engine(
            module, hooks=[ProgressLogger(prefix="MF", print_fn=lines.append)])
        engine.fit(lambda batch: module.loss(), constant_batches(1), epochs=1)
        assert len(lines) == 1
        assert lines[0].startswith("MF epoch 0: loss=")


def test_no_stray_epoch_loops_outside_engine():
    """Every epoch loop must live in repro.engine (mirrors the CI guard)."""
    import re
    from pathlib import Path

    import repro

    src_root = Path(repro.__file__).parent
    pattern = re.compile(r"for\s+\w+\s+in\s+range\([^)]*epochs")
    offenders = []
    for path in src_root.rglob("*.py"):
        if src_root / "engine" in path.parents:
            continue
        if pattern.search(path.read_text()):
            offenders.append(str(path.relative_to(src_root)))
    assert not offenders, (
        f"hand-rolled epoch loops outside repro.engine: {offenders}; "
        "route training through repro.engine.Engine instead")
