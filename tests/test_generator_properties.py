"""Statistical sanity checks of the synthetic generator's planted signal.

The experiments' shapes depend on the generator actually encoding the
claimed structure: taste-aligned interactions on KG-rich presets, and a
popularity-dominated, KG-poor regime for the iFashion analogue.
"""

import numpy as np
import pytest

from repro.data import (alibaba_ifashion_like, amazon_book_like,
                        disgenet_like, lastfm_like)
from repro.data.synthetic import SyntheticConfig, generate


def shared_attribute_overlap(dataset, rng, num_pairs=300):
    """Mean shared-attribute count between item pairs a user co-interacted
    with, versus random item pairs."""
    kg = dataset.kg
    num_items = dataset.num_items
    attrs = [set() for _ in range(num_items)]
    for head, tail in zip(kg.heads.tolist(), kg.tails.tolist()):
        if head < num_items and tail >= num_items:
            attrs[head].add(tail)

    ui = dataset.ui_graph
    together, random_pairs = [], []
    users = ui.users_with_interactions()
    for _ in range(num_pairs):
        user = int(rng.choice(users))
        items = sorted(ui.positives(user))
        if len(items) < 2:
            continue
        a, b = rng.choice(items, size=2, replace=False)
        together.append(len(attrs[a] & attrs[b]))
        x, y = rng.integers(0, num_items, size=2)
        random_pairs.append(len(attrs[x] & attrs[y]))
    return np.mean(together), np.mean(random_pairs)


class TestPlantedSignal:
    @pytest.mark.parametrize("maker", [lastfm_like, amazon_book_like,
                                       disgenet_like])
    def test_kg_rich_presets_have_taste_signal(self, maker):
        """Co-interacted items share KG attributes far above chance."""
        dataset = maker(seed=0, scale=0.6)
        rng = np.random.default_rng(0)
        together, random_pairs = shared_attribute_overlap(dataset, rng)
        assert together > 2 * random_pairs + 0.05, (
            f"{dataset.name}: co-interacted overlap {together:.3f} vs "
            f"random {random_pairs:.3f}")

    def test_ifashion_signal_is_weak(self):
        """The iFashion analogue's KG must carry much weaker preference
        signal than the Last-FM analogue's."""
        rng = np.random.default_rng(0)
        rich_t, rich_r = shared_attribute_overlap(lastfm_like(seed=0, scale=0.6), rng)
        poor_t, poor_r = shared_attribute_overlap(
            alibaba_ifashion_like(seed=0, scale=0.6), rng)
        rich_lift = rich_t - rich_r
        poor_lift = poor_t - poor_r
        assert poor_lift < 0.5 * rich_lift

    def test_ifashion_popularity_skew(self):
        """The iFashion analogue is popularity-dominated: its top-10% items
        absorb a larger share of interactions than Last-FM's."""

        def top_decile_share(dataset):
            degrees = np.sort(dataset.ui_graph.item_degrees())[::-1]
            top = max(1, len(degrees) // 10)
            return degrees[:top].sum() / degrees.sum()

        assert (top_decile_share(alibaba_ifashion_like(seed=0, scale=0.6))
                > top_decile_share(lastfm_like(seed=0, scale=0.6)))

    def test_affinity_sharpness_zero_removes_signal(self):
        """With sharpness 0, interactions ignore the KG entirely."""
        config = SyntheticConfig(name="flat", num_users=80, num_items=120,
                                 affinity_sharpness=0.0, seed=0)
        dataset = generate(config)
        rng = np.random.default_rng(0)
        together, random_pairs = shared_attribute_overlap(dataset, rng)
        assert together == pytest.approx(random_pairs, abs=0.4)

    def test_user_user_links_follow_taste(self):
        """DisGeNet analogue: linked diseases share more taste attributes
        than random disease pairs."""
        from repro.data.synthetic import _sample_tastes
        config = SyntheticConfig(name="d", num_users=100, num_items=80,
                                 num_communities=4, user_user_links=2.0,
                                 taste_size=3, seed=0)
        dataset = generate(config)
        assert len(dataset.user_triplets) > 0
        # linked users never link to themselves
        assert all(a != b for a, _, b in dataset.user_triplets)


class TestGeneratorRobustness:
    """The generator must produce valid datasets across its knob space."""

    def test_random_configs_produce_valid_datasets(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=15, deadline=None)
        @given(
            st.integers(20, 60),      # users
            st.integers(20, 60),      # items
            st.integers(2, 6),        # communities
            st.floats(0.0, 1.0),      # attr_sharing
            st.floats(0.0, 3.0),      # affinity_sharpness
            st.booleans(),            # entity_entity_links
            st.booleans(),            # item_item_relation
            st.floats(0.0, 0.5),      # kg_noise
        )
        def check(users, items, communities, sharing, sharpness, ee, ii, noise):
            config = SyntheticConfig(
                name="fuzz", num_users=users, num_items=items,
                num_communities=communities, attr_sharing=sharing,
                affinity_sharpness=sharpness, entity_entity_links=ee,
                item_item_relation=ii, kg_noise=noise, seed=0)
            dataset = generate(config)
            assert dataset.ui_graph.num_interactions >= 2 * users
            assert dataset.kg.num_entities >= items
            # CKG construction must succeed for any generated dataset
            ckg = dataset.build_ckg()
            assert ckg.num_edges > 0
            assert np.all(ckg.heads < ckg.num_nodes)
            assert np.all(ckg.tails < ckg.num_nodes)

        check()
