"""Tests for per-layer K schedules (AdaProp-style adaptive propagation)."""

import numpy as np
import pytest

from repro.data import lastfm_like, traditional_split
from repro.ppr import personalized_pagerank_batch
from repro.sampling import build_user_centric_graph


@pytest.fixture(scope="module")
def setup():
    dataset = lastfm_like(seed=1, scale=0.25)
    ckg = dataset.build_ckg()
    ppr = personalized_pagerank_batch(ckg, [0, 1])
    return ckg, ppr.scores


class TestKSchedule:
    def test_scalar_k_equals_uniform_schedule(self, setup):
        ckg, scores = setup
        scalar = build_user_centric_graph(ckg, [0, 1], depth=3,
                                          ppr_scores=scores, k=5)
        schedule = build_user_centric_graph(ckg, [0, 1], depth=3,
                                            ppr_scores=scores, k=[5, 5, 5])
        assert scalar.total_edges() == schedule.total_edges()
        for a, b in zip(scalar.layers, schedule.layers):
            assert np.array_equal(a.tails, b.tails)

    def test_per_layer_budgets_respected(self, setup):
        ckg, scores = setup
        budgets = [10, 5, 3]
        graph = build_user_centric_graph(ckg, [0, 1], depth=3,
                                         ppr_scores=scores, k=budgets)
        for level, (layer, budget) in enumerate(zip(graph.layers, budgets),
                                                start=1):
            counts = np.bincount(layer.src_pos,
                                 minlength=graph.layer_size(level - 1))
            assert counts.max(initial=0) <= budget

    def test_none_entries_disable_layer_pruning(self, setup):
        ckg, scores = setup
        mixed = build_user_centric_graph(ckg, [0], depth=3,
                                         ppr_scores=scores, k=[None, 4, 4])
        full = build_user_centric_graph(ckg, [0], depth=3, k=None)
        # first layer unpruned: same edge count as the full graph's layer 1
        assert mixed.layers[0].num_edges == full.layers[0].num_edges

    def test_wrong_length_rejected(self, setup):
        ckg, scores = setup
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [0], depth=3, ppr_scores=scores,
                                     k=[5, 5])

    def test_invalid_entry_rejected(self, setup):
        ckg, scores = setup
        with pytest.raises(ValueError):
            build_user_centric_graph(ckg, [0], depth=3, ppr_scores=scores,
                                     k=[5, 0, 5])

    def test_all_none_schedule_needs_no_ppr(self, setup):
        ckg, _ = setup
        graph = build_user_centric_graph(ckg, [0], depth=2,
                                         k=[None, None])
        assert graph.total_edges() > 0

    def test_tightening_schedule_shrinks_deep_layers(self, setup):
        """The AdaProp-style usage: tighter budgets at deeper layers cut
        the multiplicative growth."""
        ckg, scores = setup
        uniform = build_user_centric_graph(ckg, [0, 1], depth=3,
                                           ppr_scores=scores, k=[8, 8, 8])
        tightening = build_user_centric_graph(ckg, [0, 1], depth=3,
                                              ppr_scores=scores, k=[8, 6, 3])
        assert tightening.layers[2].num_edges <= uniform.layers[2].num_edges
        assert tightening.total_edges() < uniform.total_edges()


class TestAdaptiveVariant:
    def test_trainer_accepts_schedule(self):
        from repro.core import KUCNetConfig, TrainConfig, kucnet_adaptive
        from repro.eval import evaluate

        split = traditional_split(lastfm_like(seed=0, scale=0.2), seed=0)
        rec = kucnet_adaptive(KUCNetConfig(dim=8, depth=3, seed=0),
                              TrainConfig(epochs=2, k=12, seed=0))
        assert rec.train_config.k == (12, 6, 3)
        rec.fit(split)
        result = evaluate(rec, split, max_users=10)
        assert 0.0 <= result.recall <= 1.0

    def test_explicit_schedule(self):
        from repro.core import KUCNetConfig, kucnet_adaptive

        rec = kucnet_adaptive(KUCNetConfig(dim=8, depth=3, seed=0),
                              schedule=(9, 9, 9))
        assert rec.train_config.k == (9, 9, 9)

    def test_wrong_schedule_length_rejected(self):
        from repro.core import KUCNetConfig, kucnet_adaptive

        with pytest.raises(ValueError):
            kucnet_adaptive(KUCNetConfig(dim=8, depth=3, seed=0),
                            schedule=(9, 9))
