"""Coverage for remaining autodiff corners: init, modules, optimizer edges."""

import numpy as np
import pytest

from repro.autodiff import (SGD, Embedding, Linear, Module, Parameter, ReLU,
                            Sequential, Tanh, Tensor)
from repro.autodiff import init as ad_init


class TestInit:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        weights = ad_init.xavier_uniform((64, 32), rng=rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.all(np.abs(weights) <= bound)
        assert weights.std() > 0.1 * bound  # actually spread out

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        weights = ad_init.xavier_normal((400, 400), rng=rng)
        expected = np.sqrt(2.0 / 800)
        assert weights.std() == pytest.approx(expected, rel=0.1)

    def test_vector_shape(self):
        rng = np.random.default_rng(0)
        vector = ad_init.xavier_uniform((7,), rng=rng)
        assert vector.shape == (7,)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            ad_init.xavier_uniform((), rng=np.random.default_rng(0))


class TestModules:
    def test_sequential_with_activations(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng),
                         Tanh())
        out = net(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert np.all(np.abs(out.data) <= 1.0)  # tanh range

    def test_state_dict_shape_mismatch_rejected(self):
        layer = Linear(3, 5)
        bad_state = layer.state_dict()
        bad_state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(bad_state)

    def test_embedding_custom_scale(self):
        emb = Embedding(100, 8, rng=np.random.default_rng(0), scale=0.01)
        assert np.abs(emb.weight.data).std() < 0.02

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_parameter_repr_includes_name(self):
        param = Parameter(np.zeros(3), name="bias")
        assert "bias" in repr(param)


class TestOptimizerEdges:
    def test_sgd_without_momentum_no_velocity_effect(self):
        w1 = Parameter(np.ones(3))
        w2 = Parameter(np.ones(3))
        plain = SGD([w1], lr=0.1)
        with_momentum = SGD([w2], lr=0.1, momentum=0.9)
        for _ in range(3):
            for w, opt in ((w1, plain), (w2, with_momentum)):
                opt.zero_grad()
                (w * w).sum().backward()
                opt.step()
        # momentum accelerates: w2 moved further
        assert np.linalg.norm(w2.data) < np.linalg.norm(w1.data)

    def test_sgd_weight_decay(self):
        w = Parameter(np.ones(2))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (w.sum() * 0.0).backward()  # zero task gradient
        opt.step()
        # decay alone shrinks the weights: w -= lr * wd * w
        assert np.allclose(w.data, 0.9)


class TestTensorMisc:
    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5
        assert Tensor(np.array([2.0])).item() == 2.0

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr(self):
        text = repr(Tensor(np.zeros((2, 3)), requires_grad=True))
        assert "shape=(2, 3)" in text
        assert "requires_grad=True" in text

    def test_pow_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        out = (10.0 - x) / x
        out.backward(np.array([1.0]))
        # d/dx (10 - x)/x = -10/x^2 = -2.5 at x=2
        assert x.grad[0] == pytest.approx(-2.5)
