"""Parallel execution layer: equivalence, telemetry merge, fallback.

The contract under test (docs/performance.md, "Parallel execution"):
for any ``num_workers``, fan-out produces **bitwise-identical** results
to the serial path, and the telemetry counters merged back from workers
equal the serial run's counters exactly.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro import telemetry
from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import lastfm_like, traditional_split
from repro.eval import evaluate
from repro.parallel import (START_METHOD_ENV_VAR, chunk_sequence,
                            resolve_workers, run_parallel)
from repro.ppr import concat_sparse_scores, forward_push_batch
from repro.telemetry.tracer import MetricsRegistry

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def split():
    return traditional_split(lastfm_like(seed=0, scale=0.4), seed=0)


@pytest.fixture(params=["fork", "spawn"])
def start_method(request, monkeypatch):
    """Force each multiprocessing start method in turn.

    The bitwise serial/parallel contract must hold under both context
    transports: fork (workers inherit the parent's memory) and spawn
    (context pickled through the pool initializer — what fork-hostile
    platforms and the mmap store's by-path transport rely on).
    """
    if request.param not in mp.get_all_start_methods():
        pytest.skip(f"start method {request.param!r} unavailable")
    monkeypatch.setenv(START_METHOD_ENV_VAR, request.param)
    return request.param


def _domain_counters(snapshot):
    """Counter totals excluding the parallel layer's own namespace."""
    return {name: record["total"]
            for name, record in snapshot["counters"].items()
            if not name.startswith("parallel.")}


def _prepare(split, *, ppr_method, num_workers):
    telemetry.reset()
    with telemetry.enabled():
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_method=ppr_method,
                        ppr_chunk_users=16, num_workers=num_workers))
        rec.prepare(split)
    snapshot = telemetry.get_registry().snapshot()
    telemetry.reset()
    return rec, snapshot


# ----------------------------------------------------------------------
# run_parallel primitives
# ----------------------------------------------------------------------

def _square(context, task):
    return context * task * task


def _echo_lambda(context, task):
    return lambda: task  # unpicklable result -> forces the fallback


class TestRunParallel:
    def test_serial_fast_path_matches_plain_loop(self):
        tasks = list(range(7))
        assert run_parallel(_square, tasks, context=3, num_workers=1) \
            == [3 * t * t for t in tasks]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_results_in_task_order(self, workers):
        tasks = list(range(11))
        assert run_parallel(_square, tasks, context=2,
                            num_workers=workers) == [2 * t * t for t in tasks]

    def test_single_task_stays_serial(self):
        assert run_parallel(_square, [5], context=1, num_workers=4) == [25]

    def test_unpicklable_result_falls_back_to_serial(self):
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = run_parallel(_echo_lambda, [1, 2], num_workers=2)
        assert [fn() for fn in results] == [1, 2]

    def test_fallback_bumps_counter(self):
        telemetry.reset()
        with telemetry.enabled():
            with pytest.warns(RuntimeWarning):
                run_parallel(_echo_lambda, [1, 2], num_workers=2)
            snapshot = telemetry.get_registry().snapshot()
        telemetry.reset()
        assert snapshot["counters"]["parallel.fallbacks"]["total"] == 1.0

    def test_parallel_namespace_recorded(self):
        telemetry.reset()
        with telemetry.enabled():
            run_parallel(_square, [1, 2, 3], context=1, num_workers=2)
            snapshot = telemetry.get_registry().snapshot()
        telemetry.reset()
        assert snapshot["counters"]["parallel.tasks"]["total"] == 3.0
        assert snapshot["gauges"]["parallel.workers"]["value"] == 2.0
        assert snapshot["histograms"]["parallel.chunk_seconds"]["count"] == 3


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_bad_env_value_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "many")
        with pytest.warns(RuntimeWarning):
            assert resolve_workers(None) == 1

    def test_worker_processes_never_nest(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKER", "1")
        assert resolve_workers(16) == 1


class TestChunkSequence:
    def test_partitions_in_order(self):
        chunks = chunk_sequence(list(range(10)), 4)
        assert [list(c) for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7],
                                             [8, 9]]

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_sequence([1], 0)


# ----------------------------------------------------------------------
# Telemetry merge
# ----------------------------------------------------------------------

class TestMergeSnapshot:
    def _worker_registry(self):
        registry = MetricsRegistry()
        registry.add("ppr.push_ops", 100.0)
        registry.add("ppr.push_ops", 50.0)
        registry.record_span("ppr.forward_push", 0.5, 0.4)
        registry.set_gauge("ppr.residual_mass", 0.25)
        registry.observe("graph.edges_per_layer.l1", 10.0)
        registry.observe("graph.edges_per_layer.l1", 30.0)
        return registry

    def test_counters_accumulate(self):
        parent = MetricsRegistry()
        parent.add("ppr.push_ops", 7.0)
        parent.merge_snapshot(self._worker_registry().snapshot())
        record = parent.snapshot()["counters"]["ppr.push_ops"]
        assert record["total"] == 157.0
        assert record["updates"] == 3

    def test_merge_into_empty_registry(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self._worker_registry().snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["ppr.push_ops"]["total"] == 150.0
        assert snap["spans"]["ppr.forward_push"]["count"] == 1
        assert snap["gauges"]["ppr.residual_mass"]["value"] == 0.25
        hist = snap["histograms"]["graph.edges_per_layer.l1"]
        assert hist["count"] == 2
        assert hist["total"] == 40.0
        assert hist["min"] == 10.0 and hist["max"] == 30.0

    def test_span_min_max_take_extrema(self):
        parent = MetricsRegistry()
        parent.record_span("ppr.forward_push", 1.0, 1.0)
        parent.merge_snapshot(self._worker_registry().snapshot())
        record = parent.snapshot()["spans"]["ppr.forward_push"]
        assert record["count"] == 2
        assert record["total_seconds"] == pytest.approx(1.5)
        assert record["min_seconds"] == 0.5
        assert record["max_seconds"] == 1.0

    def test_gauge_adopts_snapshot_value(self):
        parent = MetricsRegistry()
        parent.set_gauge("ppr.residual_mass", 9.0)
        parent.merge_snapshot(self._worker_registry().snapshot())
        record = parent.snapshot()["gauges"]["ppr.residual_mass"]
        assert record["value"] == 0.25
        assert record["updates"] == 2

    def test_merge_order_independence_of_additive_fields(self):
        snaps = []
        for value in (3.0, 5.0):
            registry = MetricsRegistry()
            registry.add("graph.edges", value)
            snaps.append(registry.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge_snapshot(snap)
        for snap in reversed(snaps):
            backward.merge_snapshot(snap)
        assert (forward.snapshot()["counters"]["graph.edges"]["total"]
                == backward.snapshot()["counters"]["graph.edges"]["total"]
                == 8.0)

    def test_module_level_merge_respects_enable_flag(self):
        telemetry.reset()
        snap = self._worker_registry().snapshot()
        telemetry.merge_snapshot(snap)          # disabled -> no-op
        assert telemetry.get_registry().is_empty()
        with telemetry.enabled():
            telemetry.merge_snapshot(snap)
        assert not telemetry.get_registry().is_empty()
        telemetry.reset()


# ----------------------------------------------------------------------
# PPR precompute equivalence (the acceptance gate)
# ----------------------------------------------------------------------

class TestPPREquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_power_scores_bitwise_identical(self, split, workers,
                                            start_method):
        serial, serial_snap = _prepare(split, ppr_method="power",
                                       num_workers=1)
        if workers == 1:
            other, other_snap = serial, serial_snap
        else:
            other, other_snap = _prepare(split, ppr_method="power",
                                         num_workers=workers)
        assert np.array_equal(serial.ppr_scores, other.ppr_scores)
        assert _domain_counters(serial_snap) == _domain_counters(other_snap)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_push_scores_bitwise_identical(self, split, workers,
                                           start_method):
        serial, serial_snap = _prepare(split, ppr_method="push",
                                       num_workers=1)
        other, other_snap = _prepare(split, ppr_method="push",
                                     num_workers=workers)
        serial_scores, other_scores = serial.ppr_scores, other.ppr_scores
        assert np.array_equal(serial_scores.users, other_scores.users)
        assert serial_scores.residual == other_scores.residual
        if not hasattr(serial_scores, "indptr"):
            # sharded mmap backend (REPRO_PPR_STORE=mmap): materialize
            # both sides the same way and compare the flat CSR arrays
            serial_scores = serial_scores.select(serial_scores.users.tolist())
            other_scores = other_scores.select(other_scores.users.tolist())
        for attribute in ("indptr", "node_ids", "values"):
            assert np.array_equal(getattr(serial_scores, attribute),
                                  getattr(other_scores, attribute))
        assert _domain_counters(serial_snap) == _domain_counters(other_snap)

    def test_push_gauges_match_serial(self, split, start_method):
        _, serial_snap = _prepare(split, ppr_method="push", num_workers=1)
        _, worker_snap = _prepare(split, ppr_method="push", num_workers=2)
        for gauge in ("ppr.residual_mass", "ppr.score_bytes"):
            assert (serial_snap["gauges"][gauge]["value"]
                    == worker_snap["gauges"][gauge]["value"])

    def test_unknown_start_method_warns_and_degrades(self, split,
                                                     monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV_VAR, "threads")
        with pytest.warns(RuntimeWarning, match="not available"):
            _, snap = _prepare(split, ppr_method="push", num_workers=2)
        # the run still completes through the default-method pool (or
        # the serial fallback) with full counters
        assert snap["counters"]["ppr.users"]["total"] \
            == split.train.num_users

    def test_concat_matches_single_call(self, split):
        rec, _ = _prepare(split, ppr_method="push", num_workers=1)
        users = np.arange(rec.ckg.num_users)
        whole = forward_push_batch(rec.ckg, users, chunk_users=16)
        parts = [forward_push_batch(rec.ckg, chunk, chunk_users=chunk.size)
                 for chunk in chunk_sequence(users, 16)]
        stitched = concat_sparse_scores(parts)
        assert np.array_equal(whole.indptr, stitched.indptr)
        assert np.array_equal(whole.node_ids, stitched.node_ids)
        assert np.array_equal(whole.values, stitched.values)
        assert whole.residual == stitched.residual


# ----------------------------------------------------------------------
# Eval equivalence
# ----------------------------------------------------------------------

class TestEvalEquivalence:
    @pytest.fixture(scope="class")
    def model(self, split):
        rec = KUCNetRecommender(KUCNetConfig(dim=8, depth=2, seed=0),
                                TrainConfig(epochs=1, k=10, seed=0))
        rec.fit(split)
        return rec

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_metrics_bitwise_identical(self, model, split, workers,
                                       start_method):
        serial = evaluate(model, split, batch_size=8, num_workers=1)
        result = evaluate(model, split, batch_size=8, num_workers=workers)
        assert result.recall == serial.recall
        assert result.ndcg == serial.ndcg
        assert result.per_user_recall == serial.per_user_recall
        assert result.per_user_ndcg == serial.per_user_ndcg

    def test_counters_match_serial(self, model, split):
        def run(workers):
            telemetry.reset()
            with telemetry.enabled():
                evaluate(model, split, batch_size=8, num_workers=workers)
            snapshot = telemetry.get_registry().snapshot()
            telemetry.reset()
            return snapshot

        serial, parallel = run(1), run(2)
        assert _domain_counters(serial) == _domain_counters(parallel)
        assert (serial["counters"]["eval.users"]["total"]
                == parallel["counters"]["eval.users"]["total"])
        # span activity survives the merge (counts add across workers)
        assert (serial["spans"]["eval.score"]["count"]
                == parallel["spans"]["eval.score"]["count"])
