"""Tests for the extended Tensor ops: abs, clip, minimum, where."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, where

RNG = np.random.default_rng(5)


def make(shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestAbs:
    def test_forward(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        assert x.abs().data.tolist() == [2.0, 0.0, 3.0]

    def test_gradcheck_away_from_zero(self):
        x = Tensor(RNG.normal(size=(4, 3)) + np.sign(RNG.normal(size=(4, 3))),
                   requires_grad=True)
        check_gradients(lambda: x.abs().sum(), [x])


class TestClip:
    def test_forward(self):
        x = Tensor(np.array([-5.0, 0.5, 5.0]))
        assert x.clip(-1.0, 1.0).data.tolist() == [-1.0, 0.5, 1.0]

    def test_gradient_zero_outside(self):
        x = Tensor(np.array([-5.0, 0.5, 5.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert x.grad.tolist() == [0.0, 1.0, 0.0]

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            make((2,)).clip(1.0, -1.0)

    def test_gradcheck_interior(self):
        x = Tensor(RNG.uniform(-0.5, 0.5, size=(3, 3)), requires_grad=True)
        check_gradients(lambda: (x.clip(-1.0, 1.0) ** 2.0).sum(), [x])


class TestMinimum:
    def test_forward(self):
        a = Tensor(np.array([1.0, 5.0]))
        b = Tensor(np.array([3.0, 2.0]))
        assert a.minimum(b).data.tolist() == [1.0, 2.0]

    def test_gradient_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        a.minimum(b).sum().backward()
        assert a.grad.tolist() == [1.0, 0.0]
        assert b.grad.tolist() == [0.0, 1.0]

    def test_gradcheck(self):
        a, b = make((4,)), make((4,))
        check_gradients(lambda: (a.minimum(b) ** 2.0).sum(), [a, b])

    def test_scalar_coercion(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        out = a.minimum(Tensor(3.0))
        assert out.data.tolist() == [1.0, 3.0]


class TestWhere:
    def test_forward(self):
        condition = np.array([True, False, True])
        a = Tensor(np.array([1.0, 1.0, 1.0]))
        b = Tensor(np.array([9.0, 9.0, 9.0]))
        assert where(condition, a, b).data.tolist() == [1.0, 9.0, 1.0]

    def test_gradients_split_by_condition(self):
        condition = np.array([True, False])
        a = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        where(condition, a, b).sum().backward()
        assert a.grad.tolist() == [1.0, 0.0]
        assert b.grad.tolist() == [0.0, 1.0]

    def test_gradcheck(self):
        condition = RNG.random(6) > 0.5
        a, b = make((6,)), make((6,))
        check_gradients(lambda: (where(condition, a, b) ** 2.0).sum(), [a, b])
