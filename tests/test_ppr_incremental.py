"""Tests for incremental PPR maintenance (repro/ppr/push.py).

Covers the online-update contract: ``CollaborativeKG.add_interactions``
builds the same graph as a from-scratch ``build`` over the union
interaction set, ``keep_residuals=True`` stores the push state needed to
resume, and ``incremental_push`` restores the Andersen-Chung-Lang
invariant on the updated graph — every maintained score lands within
``epsilon * outdeg`` of the converged power iteration, at a fraction of
the from-scratch operation count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.graph import CollaborativeKG, KnowledgeGraph, UserItemGraph
from repro.ppr import (forward_push_batch, incremental_push,
                       personalized_pagerank_batch)


def _random_graph(seed: int):
    """Random (interactions, kg triples, ckg) triple, as in test_ppr_push."""
    rng = np.random.default_rng(seed)
    num_users = int(rng.integers(3, 7))
    num_items = int(rng.integers(5, 10))
    num_entities = num_items + int(rng.integers(3, 8))
    interactions = {(u, int(rng.integers(num_items)))
                    for u in range(num_users)
                    for _ in range(int(rng.integers(1, 4)))}
    triples = {(int(rng.integers(num_entities)), int(rng.integers(2)),
                int(rng.integers(num_entities)))
               for _ in range(int(rng.integers(5, 20)))}
    ui = UserItemGraph(num_users, num_items, sorted(interactions))
    kg = KnowledgeGraph(num_entities, 2,
                        sorted((h, r, t) for h, r, t in triples if h != t))
    return ui, kg, CollaborativeKG.build(ui, kg)


def _fresh_pairs(ckg: CollaborativeKG, seed: int, count: int):
    """Deterministic (user, item) pairs not yet present in the graph."""
    rng = np.random.default_rng(seed)
    pairs = []
    seen = set()
    while len(pairs) < count:
        user = int(rng.integers(ckg.num_users))
        item = int(rng.integers(ckg.num_items))
        if (user, item) in seen or ckg.has_interaction(user, item):
            continue
        seen.add((user, item))
        pairs.append((user, item))
    return pairs


@pytest.fixture
def ckg():
    ui = UserItemGraph(3, 4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
    kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
    return CollaborativeKG.build(ui, kg)


def _two_component_ckg():
    """Two fully disconnected halves: users {0,1} x items {0,1} plus an
    entity, and users {2,3} x items {2,3} plus another entity."""
    ui = UserItemGraph(4, 4, [(0, 0), (1, 0), (1, 1), (2, 2), (3, 2),
                              (3, 3)])
    kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
    return CollaborativeKG.build(ui, kg)


class TestAddInteractions:
    def test_matches_from_scratch_build(self, ckg):
        ui = UserItemGraph(3, 4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
        kg = KnowledgeGraph(6, 2,
                            [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
        appended = ckg.add_interactions([(2, 0), (0, 3)])
        rebuilt = CollaborativeKG.build(
            UserItemGraph(3, 4, [(0, 0), (0, 1), (0, 3), (1, 1), (1, 2),
                                 (2, 0), (2, 3)]), kg)
        assert appended.num_edges == ckg.num_edges + 4  # 2 pairs x 2 twins
        np.testing.assert_array_equal(appended.heads, rebuilt.heads)
        np.testing.assert_array_equal(appended.tails, rebuilt.tails)
        np.testing.assert_array_equal(appended.relations, rebuilt.relations)
        np.testing.assert_array_equal(appended.indptr, rebuilt.indptr)
        assert ui.num_users == 3  # inputs untouched

    def test_input_graph_not_mutated(self, ckg):
        edges_before = ckg.num_edges
        heads_before = ckg.heads.copy()
        ckg.add_interactions([(2, 0)])
        assert ckg.num_edges == edges_before
        np.testing.assert_array_equal(ckg.heads, heads_before)

    def test_has_interaction(self, ckg):
        assert ckg.has_interaction(0, 0)
        assert not ckg.has_interaction(2, 0)
        assert ckg.add_interactions([(2, 0)]).has_interaction(2, 0)

    def test_rejects_existing_and_duplicate_pairs(self, ckg):
        with pytest.raises(ValueError, match="already present"):
            ckg.add_interactions([(0, 0)])
        with pytest.raises(ValueError, match="duplicate"):
            ckg.add_interactions([(2, 0), (2, 0)])
        with pytest.raises(ValueError):
            ckg.add_interactions([])


class TestResidualStorage:
    def test_round_trip_and_solver_params(self, ckg):
        scores = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                    keep_residuals=True)
        assert scores.has_residuals
        assert scores.alpha == 0.15
        assert scores.epsilon == 1e-4
        residual = scores.residual_for_user(0)
        assert residual.shape == (ckg.num_nodes,)
        # Unconverged mass is what the estimate is missing: p + r-mass
        # brackets 1 from below per the push invariant.
        total = scores.for_user(0).sum() + residual.sum()
        assert 0.9 <= total <= 1.0 + 1e-5

    def test_residuals_survive_chunked_concat(self, ckg):
        scores = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                    chunk_users=1, keep_residuals=True)
        assert scores.has_residuals
        whole = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                   keep_residuals=True)
        np.testing.assert_array_equal(scores.toarray(), whole.toarray())
        for user in (0, 1, 2):
            np.testing.assert_array_equal(scores.residual_for_user(user),
                                          whole.residual_for_user(user))

    def test_without_flag_no_residuals(self, ckg):
        scores = forward_push_batch(ckg, [0], epsilon=1e-4)
        assert not scores.has_residuals
        with pytest.raises(ValueError):
            scores.residual_for_user(0)


class TestIncrementalPush:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_scratch_and_truth_within_bound(self, seed):
        """Property: maintained scores obey the push accuracy contract.

        After random new interactions, the incremental result must sit
        within ``epsilon * outdeg`` of the converged power iteration on
        the updated graph (same bound a from-scratch push gets), and
        within twice that of the from-scratch push itself.
        """
        epsilon = 1e-4
        _, _, graph = _random_graph(seed)
        users = list(range(graph.num_users))
        base = forward_push_batch(graph, users, epsilon=epsilon,
                                  keep_residuals=True)
        pairs = _fresh_pairs(graph, seed + 1, count=2)
        result = incremental_push(graph, base, pairs)

        scratch = forward_push_batch(result.ckg, users, epsilon=epsilon,
                                     keep_residuals=True)
        truth = personalized_pagerank_batch(result.ckg, users,
                                            iterations=500,
                                            tolerance=1e-14)
        outdeg = np.diff(result.ckg.indptr)
        bound = epsilon * np.maximum(outdeg, 1) + 1e-6
        for user in users:
            inc = result.scores.for_user(user).astype(np.float64)
            ref = scratch.for_user(user).astype(np.float64)
            exact = truth.for_user(user)
            assert np.all(np.abs(inc - exact) <= bound)
            assert np.all(np.abs(ref - exact) <= bound)
            assert np.all(np.abs(inc - ref) <= 2.0 * bound)

    def test_inputs_not_mutated(self, ckg):
        base = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                  keep_residuals=True)
        values_before = base.values.copy()
        residuals_before = base.res_values.copy()
        edges_before = ckg.num_edges
        incremental_push(ckg, base, [(2, 0)])
        assert ckg.num_edges == edges_before
        np.testing.assert_array_equal(base.values, values_before)
        np.testing.assert_array_equal(base.res_values, residuals_before)

    def test_result_supports_further_updates(self, ckg):
        """Maintained scores carry residuals, so updates chain."""
        base = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                  keep_residuals=True)
        first = incremental_push(ckg, base, [(2, 0)])
        second = incremental_push(first.ckg, first.scores, [(0, 3)])
        scratch = forward_push_batch(second.ckg, [0, 1, 2], epsilon=1e-4,
                                     keep_residuals=True)
        outdeg = np.diff(second.ckg.indptr)
        bound = 2.0 * 1e-4 * np.maximum(outdeg, 1) + 1e-6
        for user in (0, 1, 2):
            delta = np.abs(second.scores.for_user(user).astype(np.float64)
                           - scratch.for_user(user).astype(np.float64))
            assert np.all(delta <= bound)

    def test_changed_users_confined_to_component(self):
        graph = _two_component_ckg()
        base = forward_push_batch(graph, [0, 1, 2, 3], epsilon=1e-5,
                                  keep_residuals=True)
        result = incremental_push(graph, base, [(0, 1)])
        assert set(result.changed_users.tolist()) <= {0, 1}
        assert 0 in set(result.changed_users.tolist())
        # The untouched component's rows are bit-identical.
        for user in (2, 3):
            np.testing.assert_array_equal(result.scores.for_user(user),
                                          base.for_user(user))
            np.testing.assert_array_equal(
                result.scores.residual_for_user(user),
                base.residual_for_user(user))

    def test_cheaper_than_scratch(self):
        rng = np.random.default_rng(7)
        interactions = sorted({(int(rng.integers(50)),
                                int(rng.integers(40)))
                               for _ in range(220)})
        triples = sorted({(int(rng.integers(100)), int(rng.integers(2)),
                           int(rng.integers(100)))
                          for _ in range(300)})
        graph = CollaborativeKG.build(
            UserItemGraph(50, 40, interactions),
            KnowledgeGraph(100, 2, [t for t in triples if t[0] != t[2]]))
        users = list(range(50))
        base = forward_push_batch(graph, users, epsilon=1e-4,
                                  keep_residuals=True)
        result = incremental_push(graph, base, _fresh_pairs(graph, 8, 3))

        telemetry.reset()
        telemetry.enable()
        try:
            forward_push_batch(result.ckg, users, epsilon=1e-4,
                               keep_residuals=True)
            snapshot = telemetry.get_registry().snapshot()
        finally:
            telemetry.disable()
            telemetry.reset()
        scratch_ops = snapshot["counters"]["ppr.push_ops"]["total"]
        assert 0 < result.push_ops < scratch_ops

    def test_records_dedicated_counter(self, ckg):
        base = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                  keep_residuals=True)
        telemetry.reset()
        telemetry.enable()
        try:
            result = incremental_push(ckg, base, [(2, 0)])
            counters = telemetry.get_registry().snapshot()["counters"]
        finally:
            telemetry.disable()
            telemetry.reset()
        assert counters["ppr.incremental_pushes"]["total"] == result.push_ops
        assert counters["ppr.push_ops"]["total"] == result.push_ops

    def test_validation(self, ckg):
        base = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4,
                                  keep_residuals=True)
        truncated = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-4)
        with pytest.raises(ValueError, match="keep_residuals"):
            incremental_push(ckg, truncated, [(2, 0)])
        with pytest.raises(ValueError):
            incremental_push(ckg, base, [])
        with pytest.raises(ValueError):
            incremental_push(ckg, base, [(2, 0)], chunk_users=0)
        other = _two_component_ckg()
        with pytest.raises(ValueError):
            incremental_push(other, base, [(2, 0)])
