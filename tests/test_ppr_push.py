"""Tests for the sparse forward-push PPR engine (repro/ppr/push.py).

Covers the Andersen-Chung-Lang accuracy guarantee (small epsilon
approaches the converged power iteration), the ``SparsePPRScores``
CSR storage (lookup / select / densify / degree normalization), and
end-to-end trainer equivalence between the two backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KUCNetConfig, KUCNetRecommender, TrainConfig
from repro.data import lastfm_like, traditional_split
from repro.graph import CollaborativeKG, KnowledgeGraph, UserItemGraph
from repro.ppr import (SparsePPRScores, forward_push_batch,
                       personalized_pagerank_batch, sparsify_scores)


@pytest.fixture
def ckg():
    ui = UserItemGraph(3, 4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
    kg = KnowledgeGraph(6, 2, [(0, 0, 4), (1, 0, 4), (2, 1, 5), (3, 1, 5)])
    return CollaborativeKG.build(ui, kg)


def _random_ckg(seed: int) -> CollaborativeKG:
    rng = np.random.default_rng(seed)
    num_users = int(rng.integers(3, 7))
    num_items = int(rng.integers(5, 10))
    num_entities = num_items + int(rng.integers(3, 8))
    interactions = {(u, int(rng.integers(num_items)))
                    for u in range(num_users)
                    for _ in range(int(rng.integers(1, 4)))}
    triples = {(int(rng.integers(num_entities)), int(rng.integers(2)),
                int(rng.integers(num_entities)))
               for _ in range(int(rng.integers(5, 20)))}
    ui = UserItemGraph(num_users, num_items, sorted(interactions))
    kg = KnowledgeGraph(num_entities, 2,
                        sorted((h, r, t) for h, r, t in triples if h != t))
    return CollaborativeKG.build(ui, kg)


class TestForwardPush:
    def test_matches_converged_power_iteration(self, ckg):
        truth = personalized_pagerank_batch(ckg, [0, 1, 2], iterations=500,
                                            tolerance=1e-14)
        push = forward_push_batch(ckg, [0, 1, 2], epsilon=1e-8,
                                  top_m=ckg.num_nodes)
        for user in (0, 1, 2):
            np.testing.assert_allclose(push.for_user(user),
                                       truth.for_user(user), atol=1e-5)

    def test_push_underestimates(self, ckg):
        # Forward push never overshoots: the estimate is a lower bound on
        # the true PPR vector (the invariant p + sum r_u * ppr_u = ppr).
        truth = personalized_pagerank_batch(ckg, [0], iterations=500,
                                            tolerance=1e-14)
        push = forward_push_batch(ckg, [0], epsilon=1e-3,
                                  top_m=ckg.num_nodes)
        assert np.all(push.for_user(0) <= truth.for_user(0) + 1e-6)
        assert push.residual >= 0.0

    def test_restart_node_dominates(self, ckg):
        push = forward_push_batch(ckg, [1])
        scores = push.for_user(1)
        assert scores[ckg.user_node(1)] == scores.max()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_small_epsilon_matches_power_top_k(self, seed):
        """Property: push top-K carries (almost) the converged top-K mass.

        Compared by mass, not by exact node sets — ties among equal-score
        nodes make set equality flaky while the retained mass is stable.
        """
        graph = _random_ckg(seed)
        users = list(range(graph.num_users))
        truth = personalized_pagerank_batch(graph, users, iterations=500,
                                            tolerance=1e-14)
        push = forward_push_batch(graph, users, epsilon=1e-8,
                                  top_m=graph.num_nodes)
        k = min(10, graph.num_nodes)
        for user in users:
            exact = truth.for_user(user)
            approx = push.for_user(user)
            top_truth = np.sort(exact)[-k:].sum()
            top_push = exact[np.argsort(approx)[-k:]].sum()
            assert top_push >= top_truth - 1e-5

    def test_top_m_truncation_keeps_largest(self, ckg):
        full = forward_push_batch(ckg, [0], epsilon=1e-8,
                                  top_m=ckg.num_nodes)
        truncated = forward_push_batch(ckg, [0], epsilon=1e-8, top_m=3)
        dense = full.for_user(0)
        kept = truncated.for_user(0)
        assert truncated.nnz <= 3
        # The retained entries are the 3 globally largest scores.
        expected = np.sort(dense)[-3:]
        np.testing.assert_allclose(np.sort(kept[kept > 0]), expected,
                                   rtol=1e-6)

    def test_validation(self, ckg):
        with pytest.raises(ValueError):
            forward_push_batch(ckg, [])
        with pytest.raises(ValueError):
            forward_push_batch(ckg, [0], alpha=0.0)
        with pytest.raises(ValueError):
            forward_push_batch(ckg, [0], epsilon=0.0)
        with pytest.raises(ValueError):
            forward_push_batch(ckg, [0], top_m=0)


class TestSparseScores:
    @pytest.fixture
    def scores(self):
        # Two rows over 10 nodes: row 0 holds {2: .5, 7: .25},
        # row 1 holds {0: .125, 9: .0625}.
        return SparsePPRScores(
            users=np.array([4, 11]), num_nodes=10,
            indptr=np.array([0, 2, 4]),
            node_ids=np.array([2, 7, 0, 9]),
            values=np.array([0.5, 0.25, 0.125, 0.0625], dtype=np.float32))

    def test_lookup_hits(self, scores):
        out = scores.lookup(np.array([0, 0, 1, 1]), np.array([2, 7, 0, 9]))
        np.testing.assert_array_equal(out, [0.5, 0.25, 0.125, 0.0625])

    def test_lookup_misses_are_zero(self, scores):
        out = scores.lookup(np.array([0, 1, 0]), np.array([3, 2, 0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 0.0])

    def test_lookup_out_of_order_and_repeated(self, scores):
        out = scores.lookup(np.array([1, 0, 1, 0, 0]),
                            np.array([9, 7, 9, 2, 5]))
        np.testing.assert_array_equal(out, [0.0625, 0.25, 0.0625, 0.5, 0.0])

    def test_lookup_float32_round_trip(self, scores):
        out = scores.lookup(np.array([0]), np.array([2]))
        assert out.dtype == np.float32
        assert out[0] == np.float32(0.5)

    def test_lookup_empty_query(self, scores):
        assert scores.lookup(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64)).size == 0

    def test_for_user_and_has_user(self, scores):
        dense = scores.for_user(4)
        assert dense.shape == (10,)
        assert dense[2] == np.float32(0.5)
        assert dense.sum() == np.float32(0.75)
        assert scores.has_user(11)
        assert not scores.has_user(0)
        with pytest.raises(KeyError):
            scores.for_user(0)

    def test_toarray_matches_lookup(self, scores):
        dense = scores.toarray()
        assert dense.shape == (2, 10)
        slots = np.repeat([0, 1], 10)
        nodes = np.tile(np.arange(10), 2)
        np.testing.assert_array_equal(dense.ravel(),
                                      scores.lookup(slots, nodes))

    def test_dense_columns(self, scores):
        cols = scores.dense_columns(np.array([2, 0, 9]))
        np.testing.assert_array_equal(
            cols, [[0.5, 0.0, 0.0], [0.0, 0.125, 0.0625]])

    def test_select_reorders_rows(self, scores):
        sub = scores.select([11, 4])
        np.testing.assert_array_equal(sub.users, [11, 4])
        np.testing.assert_array_equal(sub.toarray(),
                                      scores.toarray()[[1, 0]])

    def test_select_unknown_user_raises(self, scores):
        with pytest.raises(KeyError):
            scores.select([99])

    def test_select_error_names_all_missing_users(self, scores):
        # Regression: a miss used to surface as an opaque KeyError from
        # the internal row map; now every offender is named up front.
        with pytest.raises(KeyError, match=r"user\(s\) \[7, 99\]"):
            scores.select([4, 99, 7])

    def test_lookup_rejects_mismatched_lengths(self, scores):
        with pytest.raises(ValueError, match="slots"):
            scores.lookup(np.array([0, 1]), np.array([2]))

    def test_lookup_names_out_of_range_slot_and_node(self, scores):
        # Regression: out-of-range queries used to garbage-index the
        # CSR; now the first offender is named.
        with pytest.raises(IndexError, match="slot 5"):
            scores.lookup(np.array([0, 5]), np.array([2, 2]))
        with pytest.raises(IndexError, match="node 10"):
            scores.lookup(np.array([0, 0]), np.array([2, 10]))
        with pytest.raises(IndexError):
            scores.lookup(np.array([-3]), np.array([2]))

    def test_normalize_by_degree(self, scores):
        degrees = np.arange(10, dtype=np.int64)  # node 0 has degree 0
        expected = scores.toarray() / np.maximum(degrees, 1)
        scores.normalize_by_degree(degrees)
        np.testing.assert_allclose(scores.toarray(), expected, rtol=1e-6)

    def test_nbytes_and_nnz(self, scores):
        assert scores.nnz == 4
        dense_bytes = 2 * 10 * 8
        assert scores.nbytes < dense_bytes

    def test_sparsify_round_trip(self, ckg):
        batch = personalized_pagerank_batch(ckg, [0, 2])
        sparse = sparsify_scores(batch.scores, [0, 2],
                                 top_m=ckg.num_nodes)
        np.testing.assert_allclose(sparse.toarray(), batch.scores,
                                   atol=1e-7)
        np.testing.assert_array_equal(sparse.users, [0, 2])


class TestTrainerEquivalence:
    def test_fit_and_score_users_parity(self):
        """Power and push backends produce near-identical recommendations."""
        split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)

        def train(method):
            rec = KUCNetRecommender(
                KUCNetConfig(dim=8, depth=3, seed=0),
                TrainConfig(epochs=1, k=10, seed=0, ppr_method=method))
            rec.fit(split)
            return rec

        power = train("power")
        push = train("push")
        users = list(range(min(12, split.train.num_users)))
        scores_a = power.score_users(users)
        scores_b = push.score_users(users)
        assert scores_a.shape == scores_b.shape
        overlaps = []
        for row_a, row_b in zip(scores_a, scores_b):
            top_a = set(np.argsort(row_a)[-10:].tolist())
            top_b = set(np.argsort(row_b)[-10:].tolist())
            overlaps.append(len(top_a & top_b) / 10.0)
        assert float(np.mean(overlaps)) >= 0.7, overlaps

    def test_push_backend_stores_sparse(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_method="push",
                        ppr_top_m=64, ppr_store="ram"))
        rec.fit(split)
        assert isinstance(rec.ppr_scores, SparsePPRScores)
        per_user = np.diff(rec.ppr_scores.indptr)
        assert per_user.max() <= 64

    def test_unknown_method_rejected(self):
        split = traditional_split(lastfm_like(seed=0, scale=0.25), seed=0)
        rec = KUCNetRecommender(
            KUCNetConfig(dim=8, depth=2, seed=0),
            TrainConfig(epochs=1, k=10, seed=0, ppr_method="jacobi"))
        with pytest.raises(ValueError):
            rec.fit(split)
