"""Online serving: batched top-K queries + incremental PPR maintenance.

The ROADMAP's online layer: :class:`RecommendationService` answers
batched top-K requests from precomputed state (sparse PPR scores with
kept residuals + a trained KUCNet model) behind a bounded per-user LRU
cache, and folds new interactions in via
:func:`~repro.ppr.incremental_push` instead of recomputing from scratch.
:class:`RecommendationServer` exposes it over HTTP (``/recommend``,
``/interactions``, ``/metrics``, ``/healthz``) by reusing the runstore
exporter's plumbing.  See ``docs/serving.md``.
"""

from .http import RecommendationServer
from .service import RecommendationService, ServeConfig

__all__ = ["RecommendationService", "RecommendationServer", "ServeConfig"]
