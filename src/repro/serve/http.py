"""HTTP front-end for :class:`~repro.serve.RecommendationService`.

:class:`RecommendationServer` subclasses the runstore
:class:`~repro.runstore.MetricsExporter` — same stdlib threading server,
daemon lifecycle, ephemeral-port (``port=0``) and address-in-use
handling — and adds the serving endpoints:

* ``POST /recommend``     ``{"users": [0, 7], "k": 10}`` →
  ``{"results": {"0": [...], "7": [...]}, "k": 10}``
* ``POST /interactions``  ``{"pairs": [[0, 3], [7, 1]]}`` → the
  :meth:`~repro.serve.RecommendationService.add_interactions` summary
* ``GET /metrics``        inherited Prometheus scrape (includes the
  ``serve.*`` and ``ppr.incremental_pushes`` series when telemetry is
  enabled)
* ``GET /healthz``        inherited liveness probe, extended with the
  service's :meth:`~repro.serve.RecommendationService.stats`

Malformed requests come back as ``400 {"error": ...}`` rather than a
stack trace; the CI serve-smoke job drives all four endpoints.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

from ..runstore.exporter import MetricsExporter
from .service import RecommendationService

__all__ = ["RecommendationServer"]


class RecommendationServer(MetricsExporter):
    """Serve recommendations + metrics from one bound port."""

    def __init__(self, service: RecommendationService, port: int = 0,
                 host: str = "127.0.0.1", **kwargs: Any):
        super().__init__(port=port, host=host, **kwargs)
        self.service = service

    # -- endpoint routing ----------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        payload = super().healthz()
        payload.update(self.service.stats())
        return payload

    def _handle_post(self, path: str,
                     payload: bytes) -> Optional[Tuple[int, str, bytes]]:
        if path == "/recommend":
            return self._json_endpoint(payload, self._recommend)
        if path == "/interactions":
            return self._json_endpoint(payload, self._interactions)
        return super()._handle_post(path, payload)

    @staticmethod
    def _json_endpoint(payload: bytes,
                       handler: Callable[[Dict[str, Any]], Dict[str, Any]]
                       ) -> Tuple[int, str, bytes]:
        try:
            body = json.loads(payload.decode("utf-8") or "{}")
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
            result = handler(body)
            status = 200
        except (ValueError, KeyError, TypeError) as error:
            result = {"error": str(error)}
            status = 400
        text = json.dumps(result, sort_keys=True) + "\n"
        return status, "application/json", text.encode("utf-8")

    # -- handlers ------------------------------------------------------
    def _recommend(self, body: Dict[str, Any]) -> Dict[str, Any]:
        users = body.get("users")
        if not isinstance(users, list) or not users:
            raise ValueError("'users' must be a non-empty list of user ids")
        k = body.get("k")
        rankings = self.service.recommend(
            [int(user) for user in users],
            k=None if k is None else int(k))
        return {
            "results": {str(int(user)): ranking.tolist()
                        for user, ranking in zip(users, rankings)},
            "k": (self.service.config.top_k if k is None else int(k)),
        }

    def _interactions(self, body: Dict[str, Any]) -> Dict[str, Any]:
        pairs = body.get("pairs")
        if not isinstance(pairs, list) or not pairs:
            raise ValueError(
                "'pairs' must be a non-empty list of [user, item] pairs")
        cleaned = []
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ValueError(
                    f"each pair must be [user, item], got {pair!r}")
            cleaned.append((int(pair[0]), int(pair[1])))
        return self.service.add_interactions(cleaned)
