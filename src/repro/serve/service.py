"""Online recommendation service over precomputed KUCNet state.

The paper's pipeline is precompute-then-query: PPR scores prune the
user-centric subgraphs, the trained model scores items over them.  This
module packages that state behind :class:`RecommendationService` so
top-K queries are answered online, and keeps it *fresh* as interactions
arrive:

* **Queries** batch cache misses through one
  ``build_user_centric_graph`` → ``propagate`` → ``score_all_items``
  pass and rank with the same exclusion contract as offline evaluation
  (``eval.metrics.rank_items`` — training positives never resurface).
* **Results** land in a bounded per-user LRU cache; repeat queries for
  unchanged users are dictionary lookups (``serve.cache_hits``).
* **Updates** append interactions to the CKG and maintain the sparse
  PPR scores via :func:`~repro.ppr.incremental_push` — resuming the
  forward-push solve from stored residual mass instead of recomputing
  every user — then invalidate exactly the cache entries whose rows
  changed (``serve.cache_invalidations``).

The service keeps its *own* raw (un-normalized) score structure with
residuals: the trainer degree-normalizes its copy in place for pruning,
which would corrupt the push invariant.  Degree normalization is applied
per-query to the selected rows instead (``select`` returns copies).

All public methods are serialized by one re-entrant lock — correctness
first; the HTTP layer's threads stay consistent, and queries are batched
so the lock is held once per request, not per user.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import telemetry
from ..core.trainer import KUCNetRecommender
from ..data.dataset import Split
from ..eval.metrics import rank_items
from ..graph import CollaborativeKG
from ..ppr import (SparsePPRScores, forward_push_batch,
                   forward_push_sharded, incremental_push)
from ..sampling import build_user_centric_graph


@dataclass
class ServeConfig:
    """Serving knobs (see ``docs/serving.md`` for tuning guidance)."""

    #: items ranked and cached per user; requests may ask for any k <=
    #: this (the cache stores one ranking per user, sliced per request)
    top_k: int = 20
    #: bound on the per-user LRU result cache
    cache_entries: int = 1024
    #: score rows densified at once during incremental maintenance
    chunk_users: int = 64


class RecommendationService:
    """Batched top-K queries + incremental updates over a trained model.

    Build one via :meth:`from_recommender`; drive it with
    :meth:`recommend` and :meth:`add_interactions`.  State is swapped,
    never mutated: an update installs a new graph + score structure, so
    a concurrent reader of the old objects stays self-consistent.
    """

    def __init__(self, model, model_config, train_config,
                 ckg: CollaborativeKG, scores,
                 positives: Dict[int, Set[int]],
                 config: Optional[ServeConfig] = None):
        """``scores`` is either PPR score backend (see ``docs/storage.md``):
        in-RAM :class:`~repro.ppr.SparsePPRScores` or mmap-backed
        :class:`~repro.storage.ShardedPPRScores` — both must carry
        residuals for incremental maintenance."""
        if not scores.has_residuals:
            raise ValueError(
                "serving requires scores computed with keep_residuals=True")
        self.model = model
        self.model_config = model_config
        self.train_config = train_config
        self.ckg = ckg
        self.scores = scores
        self.config = config or ServeConfig()
        if self.config.top_k < 1:
            raise ValueError("top_k must be >= 1")
        self._positives = {user: set(items)
                           for user, items in positives.items()}
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._lock = threading.RLock()
        self.interactions_added = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_recommender(cls, recommender: KUCNetRecommender, split: Split,
                         config: Optional[ServeConfig] = None,
                         store: Optional[str] = None,
                         store_dir: Optional[str] = None
                         ) -> "RecommendationService":
        """Wrap a prepared/fitted recommender for online serving.

        Recomputes the PPR state once with ``keep_residuals=True`` (the
        recommender's own copy is truncated and degree-normalized in
        place during ``prepare`` — unusable for maintenance) using the
        recommender's solver parameters, and seeds the exclusion sets
        from the training split.

        ``store`` picks the score backend for the serving copy:
        ``"ram"`` (in-memory CSR) or ``"mmap"`` (on-disk shards queried
        through memory maps, maintained with targeted shard
        invalidation).  ``None`` follows the recommender's resolved
        backend, falling back to ``$REPRO_PPR_STORE``.  ``store_dir``
        places the shard files; the default is a fresh tempdir reclaimed
        when the service is collected.
        """
        if recommender.model is None or recommender.ckg is None:
            raise ValueError(
                "recommender must be prepared (or fitted) before serving")
        from ..storage import resolve_store, resolve_store_dir
        train_config = recommender.train_config
        if store is None:
            store = getattr(recommender, "ppr_store", None) \
                or train_config.ppr_store
        store = resolve_store(store)
        if store == "mmap":
            directory = resolve_store_dir(store_dir, prefix="repro_serve_")
            scores = forward_push_sharded(
                recommender.ckg, range(recommender.ckg.num_users),
                os.path.join(directory, "serve_scores"),
                alpha=train_config.ppr_alpha,
                epsilon=train_config.ppr_epsilon,
                chunk_users=train_config.ppr_chunk_users,
                keep_residuals=True, overwrite=True)
        else:
            scores = forward_push_batch(
                recommender.ckg, range(recommender.ckg.num_users),
                alpha=train_config.ppr_alpha,
                epsilon=train_config.ppr_epsilon,
                chunk_users=train_config.ppr_chunk_users,
                keep_residuals=True)
        positives = {int(user): set(split.train.positives(user))
                     for user in split.train.users_with_interactions()}
        service = cls(recommender.model, recommender.model_config,
                      train_config, recommender.ckg, scores, positives,
                      config=config)
        if store == "mmap" and not store_dir:
            import shutil
            import weakref
            weakref.finalize(service, shutil.rmtree, directory,
                             ignore_errors=True)
        return service

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def recommend(self, users: Sequence[int],
                  k: Optional[int] = None) -> List[np.ndarray]:
        """Top-``k`` item ids per user (excluding known positives).

        Cache misses are scored in one batched model pass; hits are
        served from the LRU.  ``k`` defaults to ``config.top_k`` and
        cannot exceed it (the cache stores one ranking per user).
        """
        user_list = [int(u) for u in users]
        if not user_list:
            raise ValueError("users must be non-empty")
        k = self.config.top_k if k is None else int(k)
        if not 1 <= k <= self.config.top_k:
            raise ValueError(
                f"k must be in [1, {self.config.top_k}] "
                f"(config.top_k bounds the cached ranking), got {k}")
        with self._lock, telemetry.span("serve.recommend"):
            telemetry.counter("serve.requests", len(user_list))
            bad = [u for u in user_list
                   if not 0 <= u < self.ckg.num_users]
            if bad:
                raise ValueError(
                    f"user(s) {sorted(set(bad))} out of range for "
                    f"{self.ckg.num_users} users")
            hits = 0
            misses = []
            for user in dict.fromkeys(user_list):
                if user in self._cache:
                    self._cache.move_to_end(user)
                    hits += 1
                else:
                    misses.append(user)
            if hits:
                telemetry.counter("serve.cache_hits", hits)
            if misses:
                telemetry.counter("serve.cache_misses", len(misses))
                for user, ranking in zip(misses, self._score_batch(misses)):
                    self._cache[user] = ranking
                    self._cache.move_to_end(user)
                while len(self._cache) > self.config.cache_entries:
                    self._cache.popitem(last=False)
            telemetry.gauge("serve.cache_entries", len(self._cache))
            return [self._cache[user][:k].copy() for user in user_list]

    def _score_batch(self, users: List[int]) -> List[np.ndarray]:
        """One pruned-subgraph model pass ranking ``users``' items."""
        k_budget = self.train_config.k
        rows = None
        if k_budget is not None:
            rows = self.scores.select(users)
            if self.train_config.ppr_degree_normalized:
                rows.normalize_by_degree(np.diff(self.ckg.indptr))
        graph = build_user_centric_graph(
            self.ckg, users, depth=self.model_config.depth,
            ppr_scores=rows, k=k_budget, sampler="ppr")
        self.model.eval()
        propagation = self.model.propagate(graph)
        item_scores = self.model.score_all_items(propagation,
                                                 self.ckg.item_nodes)
        return [
            rank_items(item_scores[slot],
                       self._positives.get(user, set()),
                       self.config.top_k)
            for slot, user in enumerate(users)
        ]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_interactions(self,
                         pairs: Sequence[Tuple[int, int]]) -> Dict[str, int]:
        """Fold new ``(user, item)`` interactions into the live state.

        Already-known pairs (and within-batch duplicates) are skipped,
        fresh ones are appended to the CKG, the sparse PPR scores are
        maintained incrementally, and cache entries for every user whose
        score row changed — plus the interacting users, whose exclusion
        sets grew — are evicted.  Returns a summary dict.
        """
        requested = [(int(u), int(i)) for u, i in pairs]
        if not requested:
            raise ValueError("pairs must be non-empty")
        with self._lock, telemetry.span("serve.update"):
            fresh = []
            seen: Set[Tuple[int, int]] = set()
            for user, item in requested:
                if not 0 <= user < self.ckg.num_users:
                    raise ValueError(f"user {user} out of range")
                if not 0 <= item < self.ckg.num_items:
                    raise ValueError(f"item {item} out of range")
                if (user, item) in seen \
                        or item in self._positives.get(user, set()):
                    continue
                seen.add((user, item))
                fresh.append((user, item))
            if not fresh:
                return {"added": 0, "skipped": len(requested),
                        "changed_users": 0, "cache_invalidated": 0,
                        "push_ops": 0}

            result = incremental_push(self.ckg, self.scores, fresh,
                                      chunk_users=self.config.chunk_users)
            self.ckg = result.ckg
            self.scores = result.scores
            for user, item in fresh:
                self._positives.setdefault(user, set()).add(item)
            stale = set(result.changed_users.tolist())
            stale.update(user for user, _ in fresh)
            evicted = sum(1 for user in stale
                          if self._cache.pop(user, None) is not None)
            self.interactions_added += len(fresh)
            telemetry.counter("serve.interactions", len(fresh))
            telemetry.counter("serve.cache_invalidations", evicted)
            telemetry.gauge("serve.cache_entries", len(self._cache))
            return {"added": len(fresh),
                    "skipped": len(requested) - len(fresh),
                    "changed_users": len(stale),
                    "cache_invalidated": evicted,
                    "push_ops": int(result.push_ops)}

    # ------------------------------------------------------------------
    def reset_cache(self) -> None:
        """Drop every cached ranking (benchmarks use this per repeat)."""
        with self._lock:
            self._cache.clear()

    def cached_users(self) -> Set[int]:
        with self._lock:
            return set(self._cache)

    def stats(self) -> Dict[str, int]:
        """Liveness-probe summary (merged into ``/healthz``)."""
        with self._lock:
            return {
                "serve_users": int(self.ckg.num_users),
                "serve_items": int(self.ckg.num_items),
                "serve_edges": int(self.ckg.num_edges),
                "serve_cache_entries": len(self._cache),
                "serve_interactions_added": self.interactions_added,
            }
