"""KUCNet reproduction: knowledge-enhanced recommendation with
user-centric subgraph networks (Liu, Yao, Zhang, Chen -- ICDE 2024).

Top-level convenience re-exports; see subpackage docs for details:

* :mod:`repro.autodiff` -- numpy reverse-mode autodiff engine;
* :mod:`repro.graph` -- user-item graph, KG, collaborative KG;
* :mod:`repro.ppr` -- Personalized PageRank;
* :mod:`repro.data` -- synthetic datasets and splits;
* :mod:`repro.sampling` -- U-I subgraphs and user-centric graphs;
* :mod:`repro.core` -- the KUCNet model, trainer, and variants;
* :mod:`repro.eval` -- metrics and the all-ranking protocol;
* :mod:`repro.baselines` -- the 13 comparison methods;
* :mod:`repro.experiments` -- per-table/figure experiment runners;
* :mod:`repro.telemetry` -- spans, counters, run manifests, sinks.
"""

__version__ = "1.0.0"

from . import telemetry
from .core import KUCNet, KUCNetConfig, KUCNetRecommender, TrainConfig
from .data import (alibaba_ifashion_like, amazon_book_like, disgenet_like,
                   lastfm_like, new_item_split, new_user_split,
                   traditional_split)
from .eval import evaluate

__all__ = [
    "__version__",
    "KUCNet", "KUCNetConfig", "KUCNetRecommender", "TrainConfig",
    "lastfm_like", "amazon_book_like", "alibaba_ifashion_like",
    "disgenet_like",
    "traditional_split", "new_item_split", "new_user_split",
    "evaluate", "telemetry",
]
