"""Graph and pipeline diagnostics.

Quantifies the structural properties the paper's efficiency analysis
turns on: degree distributions (why pruning matters), computation-graph
growth per layer (why the user-centric merge matters), and candidate
*reach* (the coverage ceiling of exact-L-hop propagation, which drives
the depth ablation of Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data import Dataset, Split
from ..graph import CollaborativeKG
from ..ppr import PPRScoreLike, SparsePPRScores
from ..sampling import (ComputationGraph, build_user_centric_graph,
                        record_graph_instruments)


def degree_histogram(ckg: CollaborativeKG,
                     percentiles: Sequence[float] = (50, 90, 99)) -> Dict[str, float]:
    """Out-degree summary of the CKG (drives the choice of K)."""
    degrees = np.diff(ckg.indptr)
    summary = {
        "mean": float(degrees.mean()),
        "max": int(degrees.max()),
    }
    for percentile in percentiles:
        summary[f"p{int(percentile)}"] = float(np.percentile(degrees, percentile))
    return summary


@dataclass
class GraphStats:
    """Per-layer sizes of a computation graph."""

    nodes_per_layer: List[int]
    edges_per_layer: List[int]

    @property
    def total_edges(self) -> int:
        return sum(self.edges_per_layer)


def computation_graph_stats(graph: ComputationGraph) -> GraphStats:
    """Layerwise node/edge counts (the growth Eq. 12 reasons about).

    When telemetry is enabled the same counts are also emitted as
    ``graph.nodes_per_layer.l*`` / ``graph.edges_per_layer.l*``
    instruments, so explicit diagnostics and profiled runs share one
    metric namespace.
    """
    record_graph_instruments(graph)
    return GraphStats(
        nodes_per_layer=[graph.layer_size(level)
                         for level in range(graph.depth + 1)],
        edges_per_layer=[layer.num_edges for layer in graph.layers],
    )


def reach_statistics(ckg: CollaborativeKG, users: Sequence[int], depth: int,
                     k: Optional[int] = None,
                     ppr_scores: Optional[PPRScoreLike] = None) -> Dict[str, float]:
    """Fraction of items reachable at exactly ``depth`` hops per user.

    This is the recall ceiling of an L-layer KUCNet: unreached items
    score 0.  The Table VIII depth ablation is largely explained by how
    this number moves with L on each dataset.  ``ppr_scores`` accepts a
    dense ``(len(users), num_nodes)`` matrix or a
    :class:`~repro.ppr.SparsePPRScores` row subset, same as the pruner.
    """
    graph = build_user_centric_graph(
        ckg, list(users), depth=depth, k=k,
        ppr_scores=ppr_scores, sampler="ppr" if ppr_scores is not None else "random",
        rng=np.random.default_rng(0))
    item_set = set(ckg.item_nodes.tolist())
    last = graph.depth
    fractions = []
    for slot in range(graph.num_users):
        nodes = graph.nodes[last][graph.slots[last] == slot]
        reached_items = sum(1 for node in nodes.tolist() if node in item_set)
        fractions.append(reached_items / max(ckg.num_items, 1))
    return {
        "mean_item_reach": float(np.mean(fractions)),
        "min_item_reach": float(np.min(fractions)),
        "max_item_reach": float(np.max(fractions)),
    }


def ppr_storage_report(scores: PPRScoreLike) -> Dict[str, float]:
    """Resident footprint of a PPR score structure, either backend.

    ``score_bytes`` matches the ``ppr.score_bytes`` telemetry gauge;
    ``fill`` is the stored fraction of the logical U x N matrix (1.0 for
    the dense backend), the direct measure of what top-M storage saves.
    """
    if not isinstance(scores, np.ndarray):
        # Both CSR backends (in-RAM and mmap'd shards) expose the same
        # num_rows/nnz/nbytes surface; only the label differs.
        from ..storage import ShardedPPRScores
        sharded = isinstance(scores, ShardedPPRScores)
        logical = scores.num_rows * scores.num_nodes
        report = {
            "backend": "push-mmap" if sharded else "push",
            "rows": scores.num_rows,
            "score_bytes": float(scores.nbytes),
            "stored_entries": float(scores.nnz),
            "fill": scores.nnz / max(logical, 1),
        }
        if sharded:
            report["shards"] = float(scores.num_shards)
        return report
    scores = np.asarray(scores)
    return {
        "backend": "power",
        "rows": scores.shape[0],
        "score_bytes": float(scores.nbytes),
        "stored_entries": float(scores.size),
        "fill": 1.0,
    }


def dataset_report(dataset: Dataset, split: Optional[Split] = None) -> str:
    """Multi-line text report of a dataset's key structural properties."""
    stats = dataset.statistics()
    lines = [f"dataset: {dataset.name}"]
    for key, value in stats.items():
        lines.append(f"  {key}: {value}")
    density = dataset.ui_graph.density()
    lines.append(f"  interaction density: {density:.5f}")
    lines.append(f"  triplets per item: "
                 f"{dataset.kg.triplets_per_item(dataset.num_items):.2f}")

    ckg = dataset.build_ckg(split.train if split is not None else None)
    degrees = degree_histogram(ckg)
    lines.append(f"  CKG: {ckg.num_nodes} nodes, {ckg.num_edges} edges, "
                 f"{ckg.num_relations} relations (with reverses)")
    lines.append("  out-degree: " + ", ".join(
        f"{key}={value:g}" for key, value in degrees.items()))
    return "\n".join(lines)
