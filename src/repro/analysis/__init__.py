"""Analysis and diagnostics: graph statistics and terminal plots."""

from .charts import ascii_bar_chart, ascii_curve, learning_curves
from .diagnostics import (computation_graph_stats, dataset_report,
                          degree_histogram, ppr_storage_report,
                          reach_statistics)

__all__ = [
    "ascii_curve", "ascii_bar_chart", "learning_curves",
    "degree_histogram", "computation_graph_stats", "reach_statistics",
    "ppr_storage_report", "dataset_report",
]
