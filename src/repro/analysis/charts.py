"""Terminal plotting: ASCII curves and bar charts for bench output.

Used by the Fig. 4/5/6 benches to give a visual read of the reproduced
figures without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def ascii_curve(series: Dict[str, Sequence[Tuple[float, float]]],
                width: int = 60, height: int = 14,
                x_label: str = "x", y_label: str = "y") -> str:
    """Plot ``{name: [(x, y), ...]}`` as an ASCII scatter/line chart.

    Each series gets a distinct marker; axes are linearly scaled to the
    data range.
    """
    if not series or all(not points for points in series.values()):
        return "(no data)"
    markers = "*o+x#@%&"
    all_points = [point for points in series.values() for point in points]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            canvas[row][column] = marker

    lines = [f"{y_max:10.4f} |" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:10.4f} |" + "".join(canvas[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(" " * 12 + f"{x_min:<.4g}{' ' * max(1, width - 16)}{x_max:>.4g}"
                 [:12 + width])
    legend = "   ".join(f"{markers[i % len(markers)]}={name}"
                        for i, name in enumerate(series))
    lines.append(f"{y_label} vs {x_label}:   {legend}")
    return "\n".join(lines)


def ascii_bar_chart(values: Dict[str, float], width: int = 50,
                    label: str = "") -> str:
    """Horizontal bar chart of ``{name: value}``."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    name_width = max(len(name) for name in values)
    lines = [label] if label else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{name.ljust(name_width)} |{bar} {value:g}")
    return "\n".join(lines)


def learning_curves(histories: Dict[str, Sequence], width: int = 60,
                    height: int = 14) -> str:
    """Fig. 4-style loss curves from per-trainer epoch histories.

    ``histories`` maps a method name to its list of
    :class:`~repro.engine.EpochStats` records — the canonical format
    every trainer emits since the engine migration (``KUCNet.history``,
    ``BPRModelRecommender.epoch_history``, ``LinkPredictor.history``).
    Plots epoch loss against cumulative training seconds.
    """
    series = {
        name: [(stats.cumulative_seconds, stats.loss) for stats in history]
        for name, history in histories.items() if history
    }
    return ascii_curve(series, width=width, height=height,
                       x_label="cumulative seconds", y_label="loss")
