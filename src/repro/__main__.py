"""``python -m repro`` entry point."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pipe reader (e.g. `| head`) closed early; exit
        # quietly with the conventional SIGPIPE status instead of a
        # traceback.  Detach stdout so interpreter shutdown does not
        # raise again while flushing.
        sys.stdout = None
        raise SystemExit(141)
