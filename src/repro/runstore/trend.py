"""``repro runs trend``: per-counter history with robust-z anomaly flags.

The registry index carries every counter total inline, so a trend over
thousands of runs is a single lazy pass over ``index.jsonl`` — no
per-run file is opened (see the streaming :func:`repro.telemetry.read_jsonl`).

Anomalies are flagged with a **robust z-score**: for each counter the
median and the MAD (median absolute deviation) of its history are
computed, and a value ``x`` scores

    z = (x - median) / (1.4826 * MAD)

(the 1.4826 factor makes MAD a consistent sigma estimator under
normality).  Unlike a mean/stddev z-score, one bad run cannot mask
itself by inflating the dispersion estimate.  ``|z| >= threshold``
(default 3.0) marks the run.  A degenerate history (MAD = 0, i.e. the
counter is bitwise-stable across runs — the common case for this
repo's deterministic counters) flags *any* deviation from the median.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..bench.compare import _TREND_COUNTERS
from .store import RunRecord, RunStore

__all__ = ["DEFAULT_TREND_COUNTERS", "CounterTrend", "TrendReport",
           "robust_z_scores", "compute_trend", "render_trend"]

#: counters trended by default: the bench trend set plus health alerts
DEFAULT_TREND_COUNTERS = tuple(_TREND_COUNTERS) + ("health.alerts",)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def robust_z_scores(values: Sequence[float]) -> List[float]:
    """Median/MAD z-scores; degenerate MAD=0 maps deviation to +-inf."""
    if not values:
        return []
    center = _median(values)
    mad = _median([abs(v - center) for v in values])
    scale = 1.4826 * mad
    scores: List[float] = []
    for value in values:
        delta = value - center
        if scale > 0.0:
            scores.append(delta / scale)
        elif delta == 0.0:
            scores.append(0.0)
        else:
            scores.append(math.copysign(math.inf, delta))
    return scores


@dataclass
class CounterTrend:
    """One counter's trajectory across the selected runs."""

    name: str
    #: parallel to the report's run list; None where the run lacks it
    values: List[Optional[float]] = field(default_factory=list)
    #: robust z per present value (same positions as ``values``)
    z_scores: List[Optional[float]] = field(default_factory=list)
    #: run ids whose |z| met the threshold
    anomalies: List[str] = field(default_factory=list)


@dataclass
class TrendReport:
    """Everything ``repro runs trend`` renders."""

    runs: List[RunRecord] = field(default_factory=list)
    counters: List[CounterTrend] = field(default_factory=list)
    threshold: float = 3.0

    @property
    def anomalous_run_ids(self) -> List[str]:
        flagged = {run_id for counter in self.counters
                   for run_id in counter.anomalies}
        return [r.run_id for r in self.runs if r.run_id in flagged]


def compute_trend(store: RunStore, counters: Optional[Sequence[str]] = None,
                  kind: Optional[str] = None, limit: Optional[int] = None,
                  threshold: float = 3.0) -> TrendReport:
    """Stream the index once and build per-counter histories.

    ``counters=None`` selects :data:`DEFAULT_TREND_COUNTERS` filtered to
    those any selected run actually recorded, so suites without e.g.
    fused kernels don't render empty columns.
    """
    runs = store.records(kind=kind, limit=limit)
    report = TrendReport(runs=runs, threshold=float(threshold))
    if not runs:
        return report

    if counters is None:
        names = [c for c in DEFAULT_TREND_COUNTERS
                 if any(c in run.counters for run in runs)]
    else:
        names = list(counters)

    for name in names:
        trend = CounterTrend(name=name)
        trend.values = [run.counters.get(name) for run in runs]
        present = [(i, v) for i, v in enumerate(trend.values)
                   if v is not None]
        trend.z_scores = [None] * len(runs)
        if present:
            scores = robust_z_scores([v for _, v in present])
            for (index, _), score in zip(present, scores):
                trend.z_scores[index] = score
                if abs(score) >= report.threshold:
                    trend.anomalies.append(runs[index].run_id)
        report.counters.append(trend)
    return report


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def render_trend(report: TrendReport) -> str:
    """Text table: one row per run, one column per counter, ``!`` flags."""
    if not report.runs:
        return "no runs recorded\n"
    header = ["run_id", "kind", "date", "wall(s)"]
    header += [c.name for c in report.counters]
    rows: List[List[str]] = []
    for index, run in enumerate(report.runs):
        date = time.strftime("%Y-%m-%d %H:%M",
                             time.gmtime(run.created_unix))
        row = [run.run_id, run.kind, date, f"{run.wall_seconds:.2f}"]
        for counter in report.counters:
            cell = _format_value(counter.values[index])
            score = counter.z_scores[index]
            if score is not None and abs(score) >= report.threshold:
                cell += " !"
            row.append(cell)
        rows.append(row)

    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))

    flagged = report.anomalous_run_ids
    if flagged:
        lines.append("")
        lines.append(f"anomalies (|robust z| >= {report.threshold:g}): "
                     + ", ".join(flagged))
    else:
        lines.append("")
        lines.append(f"no anomalies (|robust z| >= {report.threshold:g})")
    return "\n".join(lines) + "\n"
