"""Engine hook committing finished fits into the active run registry.

:class:`RunRecorderHook` is appended to a trainer's hook list (after
:class:`~repro.engine.hooks.History`, so epoch stats are complete when
it fires).  It is inert unless recording is enabled — committing only
when :func:`~repro.runstore.active_store` resolves (``$REPRO_RUNS_DIR``
or an explicit store) *and* no enclosing CLI command has claimed the
commit via :func:`~repro.runstore.suppress_auto_commit` (``repro
profile`` / ``bench run`` / experiment runners record one run for the
whole invocation; without suppression every interior ``fit`` — e.g.
the bench ``eval.rank`` build — would spam the index).

The committed snapshot is the process registry at fit end.  Under
:mod:`repro.parallel` fan-out, worker snapshots are merged into this
registry by ``run_parallel`` before control ever returns to the
trainer, so the commit always sees the merged totals.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .. import telemetry
from ..engine.hooks import Engine, Hook
from .store import RunStore, active_store, auto_commit_suppressed

__all__ = ["RunRecorderHook"]


class RunRecorderHook(Hook):
    """Commit a ``kind="train"`` run when ``Engine.fit`` completes.

    Parameters
    ----------
    manifest_fn:
        Zero-argument callable building the run's
        :class:`~repro.telemetry.RunManifest` — called only when a
        commit actually happens, so trainers can defer metric
        collection to fit end.
    health_monitor:
        Optional :class:`~repro.health.HealthMonitor`; its records
        (epoch health + alerts) are stored alongside the metrics.
    store:
        Explicit registry; defaults to :func:`active_store` resolution
        at fit end (late binding, so tests can flip the env var around
        a single fit).
    """

    def __init__(self, manifest_fn: Callable[[], Any],
                 health_monitor: Any = None,
                 store: Optional[RunStore] = None):
        self.manifest_fn = manifest_fn
        self.health_monitor = health_monitor
        self.store = store
        self.last_record = None

    def _resolve_store(self) -> Optional[RunStore]:
        return self.store if self.store is not None else active_store()

    def on_fit_end(self, engine: Engine) -> None:
        if auto_commit_suppressed():
            return
        store = self._resolve_store()
        if store is None:
            return
        manifest = self.manifest_fn()
        health_records = None
        if self.health_monitor is not None:
            health_records = list(self.health_monitor.records())
        self.last_record = store.commit(
            kind="train", manifest=manifest,
            snapshot=telemetry.get_registry().snapshot(),
            health_records=health_records,
            wall_seconds=float(engine.cumulative_seconds))
