"""``repro runs diff``: gate one stored run against another.

The diff deliberately reuses the bench comparison engine
(:func:`repro.bench.compare_reports`) instead of growing a second gate
implementation: strict deterministic counter gates (plus the
``autodiff.tape_bytes`` histogram-max gate) and the advisory IQR-scaled
wall-time gate apply to *any* pair of runs, not just ``BENCH_*.json``
files.  Two source shapes feed it:

* **bench-kind runs** store the full ``BENCH_*.json`` report in their
  run directory — diffing two of them is byte-for-byte the same
  comparison ``repro bench compare`` performs, so a registry diff of
  two quick-bench runs reproduces the bench verdict exactly;
* **train / profile / experiment runs** have one merged registry
  snapshot and one wall time.  They are wrapped as a pseudo-report with
  a single workload named ``run:<kind>`` so the same counter gates
  apply (the wall gate degrades gracefully: a single measurement has
  zero IQR).

Either side may also be a plain ``BENCH_*.json`` path, so a stored run
can be gated against the committed baseline artifact directly.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from ..bench.artifact import load_report, validate_report, SCHEMA
from ..bench.compare import CompareConfig, CompareResult, compare_reports
from .store import RunRecord, RunStore

__all__ = ["resolve_report", "run_as_report", "diff_runs"]

_EMPTY_TELEMETRY = {"spans": {}, "counters": {}, "gauges": {},
                    "histograms": {}}


def run_as_report(store: RunStore, record: RunRecord) -> Dict[str, Any]:
    """A stored run rendered as a ``repro.bench/1`` report.

    Bench-kind runs return their stored report verbatim; every other
    kind becomes a single-workload pseudo-report whose one workload,
    ``run:<kind>``, carries the run's merged telemetry snapshot and its
    wall time as the sole timing sample.
    """
    if record.kind == "bench" and store.has_file(record.run_id, "bench.json"):
        report = store.load_bench_report(record.run_id)
        validate_report(report)
        return report

    telemetry: Dict[str, Any] = dict(_EMPTY_TELEMETRY)
    if store.has_file(record.run_id, "metrics.json"):
        snapshot = store.load_metrics(record.run_id)
        telemetry = {section: snapshot.get(section, {})
                     for section in _EMPTY_TELEMETRY}
    manifest: Dict[str, Any] = {"record": "manifest", "run": record.name}
    if store.has_file(record.run_id, "manifest.json"):
        manifest = store.load_manifest(record.run_id)

    wall = float(record.wall_seconds)
    report = {
        "schema": SCHEMA,
        "suite": f"runstore:{record.kind}",
        "git_sha": record.git_sha,
        "machine": {},
        "config": {"run_id": record.run_id},
        "created_unix": float(record.created_unix),
        "manifest": manifest,
        "workloads": {
            f"run:{record.kind}": {
                "median_seconds": wall, "iqr_seconds": 0.0,
                "min_seconds": wall, "max_seconds": wall,
                "repeats": 1, "warmup": 0, "seconds": [wall],
                "telemetry": telemetry,
            },
        },
    }
    validate_report(report)
    return report


def resolve_report(store: RunStore, ref: str
                   ) -> Tuple[str, Dict[str, Any]]:
    """Resolve a run id, run-id prefix, or report path to ``(label, report)``.

    A ``ref`` naming an existing ``.json`` file loads as a bench
    artifact; anything else is looked up in the registry index.
    """
    if ref.endswith(".json") and os.path.exists(ref):
        return os.path.basename(ref), load_report(ref)
    record = store.get(ref)
    return record.run_id, run_as_report(store, record)


def diff_runs(store: RunStore, baseline_ref: str, candidate_ref: str,
              config: Optional[CompareConfig] = None
              ) -> Tuple[str, str, CompareResult]:
    """Gate ``candidate_ref`` against ``baseline_ref``.

    Returns ``(baseline_label, candidate_label, CompareResult)``; the
    result's ``passed`` drives the CLI exit code, matching
    ``repro bench compare`` semantics.
    """
    baseline_label, baseline = resolve_report(store, baseline_ref)
    candidate_label, candidate = resolve_report(store, candidate_ref)
    result = compare_reports(baseline, candidate, config)
    return baseline_label, candidate_label, result
