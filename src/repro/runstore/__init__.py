"""Persistent cross-run observability: registry, diff/trend, live export.

Three pieces turn the ephemeral telemetry layer into an operable system:

* :class:`RunStore` (:mod:`.store`) — an append-only on-disk registry;
  every ``repro run`` / ``profile`` / ``bench`` / experiment invocation
  commits a run directory (manifest + merged metrics snapshot + health
  records + optional bench report / event trace) and one
  ``index.jsonl`` line.  Enable with ``$REPRO_RUNS_DIR`` or the CLI's
  ``--runs-dir``.
* ``repro runs`` CLI (:mod:`.diff`, :mod:`.trend`, wired in
  :mod:`repro.cli`) — ``list`` / ``show`` / ``diff`` / ``trend`` /
  ``gc``; ``diff`` reuses the bench compare gates, ``trend`` streams
  the index lazily and flags robust-z anomalies.
* :class:`MetricsExporter` (:mod:`.exporter`) — an opt-in stdlib HTTP
  endpoint serving Prometheus text-format ``/metrics`` and a JSON
  ``/healthz`` from the live registry, so long PPR precompute and
  training jobs can be scraped mid-flight (``$REPRO_METRICS_PORT`` or
  ``--serve-metrics``).

See ``docs/observability.md`` ("Run registry", "Live metrics
endpoint") for the run-directory schema and scrape examples.
"""

from .diff import diff_runs, resolve_report, run_as_report
from .exporter import (ENV_METRICS_PORT, MetricsExporter, active_exporter,
                       publish_snapshot, render_prometheus, start_exporter,
                       stop_exporter, validate_prometheus_text)
from .hook import RunRecorderHook
from .store import (DEFAULT_RUNS_DIR, ENV_RUNS_DIR, RUN_KINDS, RunRecord,
                    RunStore, active_store, auto_commit_suppressed,
                    suppress_auto_commit)
from .trend import (DEFAULT_TREND_COUNTERS, CounterTrend, TrendReport,
                    compute_trend, render_trend, robust_z_scores)

__all__ = [
    "RunStore", "RunRecord", "RUN_KINDS", "ENV_RUNS_DIR", "DEFAULT_RUNS_DIR",
    "active_store", "suppress_auto_commit", "auto_commit_suppressed",
    "RunRecorderHook",
    "diff_runs", "resolve_report", "run_as_report",
    "compute_trend", "render_trend", "robust_z_scores",
    "CounterTrend", "TrendReport", "DEFAULT_TREND_COUNTERS",
    "MetricsExporter", "render_prometheus", "validate_prometheus_text",
    "start_exporter", "stop_exporter", "active_exporter",
    "publish_snapshot", "ENV_METRICS_PORT",
]
