"""The persistent run registry: durable cross-run observability.

Every instrumented layer so far (spans, counters, the flight recorder,
health alerts) is *ephemeral* — a run writes a one-off JSONL and the
numbers are gone.  :class:`RunStore` makes runs durable: each committed
run appends one directory under ``<root>/runs/<run_id>/`` holding

* ``manifest.json`` — the :class:`~repro.telemetry.RunManifest` record
  (provenance: config, seed, dataset shape, headline metrics);
* ``metrics.json``  — the final :class:`~repro.telemetry.MetricsRegistry`
  snapshot (spans / counters / gauges / histograms).  For parallel runs
  this is the *merged* registry — worker snapshots are folded in by
  :mod:`repro.parallel` before the commit ever happens;
* ``health.json``   — health alert + epoch records, when a monitor ran;
* ``bench.json``    — the full ``BENCH_*`` report, for bench-kind runs;
* ``trace.json``    — an optional Chrome trace-event export;
* ``record.json``   — the run's own index record, so a run directory is
  self-describing even when detached from its index;

plus one line appended to the registry's ``<root>/index.jsonl`` — an
append-only log that ``repro runs list|trend`` stream lazily (the index
carries every counter total, so trending over thousands of runs never
opens a per-run file).

The store is **opt-in**: :func:`active_store` returns ``None`` unless
``$REPRO_RUNS_DIR`` is set or a directory is passed explicitly, so
library use and the test suite record nothing by default.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..telemetry import RunManifest, read_jsonl

__all__ = ["ENV_RUNS_DIR", "DEFAULT_RUNS_DIR", "RUN_KINDS", "RunRecord",
           "RunStore", "active_store", "suppress_auto_commit",
           "auto_commit_suppressed"]

#: environment variable enabling the registry process-wide
ENV_RUNS_DIR = "REPRO_RUNS_DIR"
#: directory the ``repro runs`` CLI reads when neither flag nor env is set
DEFAULT_RUNS_DIR = ".repro_runs"
#: well-known run kinds (free-form strings are accepted too)
RUN_KINDS = ("train", "profile", "bench", "experiment")

_INDEX_NAME = "index.jsonl"
_RUNS_SUBDIR = "runs"


@dataclass
class RunRecord:
    """One ``index.jsonl`` line: the run's identity and headline numbers.

    ``counters`` holds every counter total of the final merged registry
    snapshot so trend analysis streams the index alone; ``metrics`` are
    the manifest's numeric headline metrics (recall, loss, medians).
    """

    run_id: str
    kind: str
    name: str
    created_unix: float
    git_sha: str = "unknown"
    wall_seconds: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    alerts: int = 0
    files: List[str] = field(default_factory=list)

    def to_record(self) -> Dict[str, Any]:
        return {
            "record": "run", "run_id": self.run_id, "kind": self.kind,
            "name": self.name, "created_unix": float(self.created_unix),
            "git_sha": self.git_sha,
            "wall_seconds": float(self.wall_seconds),
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "counters": {k: float(v) for k, v in self.counters.items()},
            "alerts": int(self.alerts), "files": list(self.files),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "RunRecord":
        if record.get("record") != "run":
            raise ValueError("not a run record")
        return cls(run_id=str(record["run_id"]), kind=str(record["kind"]),
                   name=str(record.get("name", "")),
                   created_unix=float(record.get("created_unix", 0.0)),
                   git_sha=str(record.get("git_sha", "unknown")),
                   wall_seconds=float(record.get("wall_seconds", 0.0)),
                   metrics=dict(record.get("metrics", {})),
                   counters=dict(record.get("counters", {})),
                   alerts=int(record.get("alerts", 0)),
                   files=list(record.get("files", [])))


def _numeric_items(mapping: Dict[str, Any]) -> Dict[str, float]:
    """The float-coercible subset of a metrics dict (index payload).

    Accepts numpy scalars alongside plain ints/floats; skips bools,
    strings, and anything non-scalar.
    """
    out: Dict[str, float] = {}
    for key, value in mapping.items():
        if isinstance(value, (bool, str)):
            continue
        if isinstance(value, (int, float)):
            out[str(key)] = float(value)
        elif hasattr(value, "item") and getattr(value, "ndim", 1) == 0:
            out[str(key)] = float(value.item())
    return out


class RunStore:
    """Append-only registry of runs rooted at one directory."""

    def __init__(self, root: str):
        self.root = os.fspath(root)

    # -- layout --------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    @property
    def runs_dir(self) -> str:
        return os.path.join(self.root, _RUNS_SUBDIR)

    def run_dir(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, run_id)

    def _new_run_id(self, kind: str, created: float) -> str:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(created))
        base = f"{stamp}-{kind}-{os.getpid()}"
        run_id, sequence = base, 1
        while os.path.exists(self.run_dir(run_id)):
            run_id = f"{base}-{sequence}"
            sequence += 1
        return run_id

    # -- writing -------------------------------------------------------
    def commit(self, kind: str, manifest: RunManifest,
               snapshot: Optional[Dict[str, Any]] = None,
               health_records: Optional[List[Dict[str, Any]]] = None,
               bench_report: Optional[Dict[str, Any]] = None,
               event_trace: Optional[Dict[str, Any]] = None,
               wall_seconds: float = 0.0) -> RunRecord:
        """Write one run directory and append its index line.

        ``snapshot`` must be the run's *final, merged* registry snapshot
        (``MetricsRegistry.snapshot()``) — under :mod:`repro.parallel`
        fan-out the worker snapshots are already folded into the parent
        registry before any caller reaches a commit, so the committed
        counters equal the serial totals exactly.
        """
        created = time.time()
        run_id = self._new_run_id(kind, created)
        directory = self.run_dir(run_id)
        os.makedirs(directory, exist_ok=True)

        files = ["manifest.json"]
        self._write_json(directory, "manifest.json", manifest.to_record())
        counters: Dict[str, float] = {}
        if snapshot is not None:
            self._write_json(directory, "metrics.json", snapshot)
            files.append("metrics.json")
            counters = {name: float(rec["total"]) for name, rec
                        in snapshot.get("counters", {}).items()}
        alert_count = 0
        if health_records:
            self._write_json(directory, "health.json", list(health_records))
            files.append("health.json")
            alert_count = sum(1 for rec in health_records
                              if rec.get("record") == "alert")
        if bench_report is not None:
            self._write_json(directory, "bench.json", bench_report)
            files.append("bench.json")
        if event_trace is not None:
            self._write_json(directory, "trace.json", event_trace)
            files.append("trace.json")

        from ..bench.artifact import git_sha  # local: keeps import light

        record = RunRecord(
            run_id=run_id, kind=kind, name=manifest.run,
            created_unix=created, git_sha=git_sha(),
            wall_seconds=float(wall_seconds),
            metrics=_numeric_items(manifest.metrics),
            counters=counters, alerts=alert_count, files=files)
        self._write_json(directory, "record.json", record.to_record())
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_record(), sort_keys=True) + "\n")
        return record

    @staticmethod
    def _write_json(directory: str, name: str, payload: Any) -> None:
        with open(os.path.join(directory, name), "w",
                  encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- reading -------------------------------------------------------
    def iter_records(self, kind: Optional[str] = None
                     ) -> Iterator[RunRecord]:
        """Stream index records oldest-first without loading the file.

        Rides the lazy :func:`repro.telemetry.read_jsonl`, so a trend
        over a large registry stays O(1) in index size.
        """
        if not os.path.exists(self.index_path):
            return
        for record in read_jsonl(self.index_path):
            if record.get("record") != "run":
                continue
            parsed = RunRecord.from_record(record)
            if kind is None or parsed.kind == kind:
                yield parsed

    def records(self, kind: Optional[str] = None,
                limit: Optional[int] = None) -> List[RunRecord]:
        """Materialized index records, newest-last; ``limit`` keeps the tail."""
        records = list(self.iter_records(kind=kind))
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def get(self, run_id: str) -> RunRecord:
        """Look up one run by exact id, or by unique id prefix."""
        exact: Optional[RunRecord] = None
        prefixed: List[RunRecord] = []
        for record in self.iter_records():
            if record.run_id == run_id:
                exact = record  # last write wins, matches directory state
            elif record.run_id.startswith(run_id):
                prefixed.append(record)
        if exact is not None:
            return exact
        if len(prefixed) == 1:
            return prefixed[0]
        if prefixed:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous: "
                           f"{sorted(r.run_id for r in prefixed)}")
        raise KeyError(f"unknown run {run_id!r} in {self.root}")

    def _load_json(self, run_id: str, name: str) -> Any:
        path = os.path.join(self.run_dir(run_id), name)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_manifest(self, run_id: str) -> Dict[str, Any]:
        return self._load_json(run_id, "manifest.json")

    def load_metrics(self, run_id: str) -> Dict[str, Any]:
        return self._load_json(run_id, "metrics.json")

    def load_health(self, run_id: str) -> List[Dict[str, Any]]:
        return self._load_json(run_id, "health.json")

    def load_bench_report(self, run_id: str) -> Dict[str, Any]:
        return self._load_json(run_id, "bench.json")

    def has_file(self, run_id: str, name: str) -> bool:
        return os.path.exists(os.path.join(self.run_dir(run_id), name))

    # -- maintenance ---------------------------------------------------
    def gc(self, keep: int, kind: Optional[str] = None,
           dry_run: bool = False) -> List[str]:
        """Delete all but the newest ``keep`` runs (optionally per kind).

        Returns the removed run ids.  The index is rewritten atomically
        (temp file + rename) so a crash mid-gc never corrupts it.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        records = list(self.iter_records())
        matching = [r for r in records if kind is None or r.kind == kind]
        doomed = {r.run_id for r in matching[:max(0, len(matching) - keep)]}
        if not doomed:
            return []
        if dry_run:
            return sorted(doomed)
        survivors = [r for r in records if r.run_id not in doomed]
        temp_path = self.index_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            for record in survivors:
                handle.write(json.dumps(record.to_record(), sort_keys=True)
                             + "\n")
        os.replace(temp_path, self.index_path)
        for run_id in doomed:
            shutil.rmtree(self.run_dir(run_id), ignore_errors=True)
        return sorted(doomed)


def active_store(path: Optional[str] = None) -> Optional[RunStore]:
    """The registry to record into, or ``None`` (recording disabled).

    Resolution: explicit ``path`` > ``$REPRO_RUNS_DIR`` > off.  Readers
    (the ``repro runs`` CLI) should fall back to
    :data:`DEFAULT_RUNS_DIR` themselves — recording never does.
    """
    root = path or os.environ.get(ENV_RUNS_DIR, "")
    return RunStore(root) if root else None


# ----------------------------------------------------------------------
# Auto-commit suppression: CLI commands that commit a run themselves
# (profile, bench run, experiment runs) wrap their work in
# ``suppress_auto_commit`` so the trainers' RunRecorderHook does not
# also register every interior fit as its own run.
# ----------------------------------------------------------------------

_SUPPRESSION = {"depth": 0}


@contextlib.contextmanager
def suppress_auto_commit() -> Iterator[None]:
    """Disable :class:`~repro.runstore.RunRecorderHook` commits within."""
    _SUPPRESSION["depth"] += 1
    try:
        yield
    finally:
        _SUPPRESSION["depth"] -= 1


def auto_commit_suppressed() -> bool:
    return _SUPPRESSION["depth"] > 0
