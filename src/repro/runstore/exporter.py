"""Live metrics endpoint: a stdlib-only Prometheus text-format exporter.

Long precompute and training jobs are black boxes while they run — the
registry only becomes readable when the process writes its JSONL at the
end.  :class:`MetricsExporter` opens an opt-in HTTP endpoint serving

* ``/metrics``  — the live :class:`~repro.telemetry.MetricsRegistry`
  rendered in Prometheus exposition format (text/plain, version 0.0.4),
  so any scraper (or plain ``curl``) can watch ``train.*`` / ``ppr.*``
  counters climb mid-flight;
* ``/healthz``  — a JSON liveness probe carrying uptime, scrape count,
  the ``health.alerts`` total, and the age of the freshest snapshot.

Two sources feed a scrape:

1. the **live registry** — whatever the process has recorded since the
   last reset;
2. the **published cumulative registry** — phases that reset the live
   registry (the bench harness clears it per workload) push their final
   snapshots through :func:`publish_snapshot`, which folds them into an
   exporter-owned registry via ``MetricsRegistry.merge_snapshot``.  A
   scrape is the merge of both, so a mid-suite scrape still shows every
   completed workload's counters.

A **bounded background snapshot thread** samples the combined view every
``snapshot_interval`` seconds into a ring of ``max_snapshots`` entries;
scrapes serve the freshest sample (falling back to a synchronous
snapshot when the cache is stale), so a scrape never waits on a
contended registry lock, and ``/healthz`` can report how stale its view
is.  Everything is daemon-threaded stdlib ``http.server`` — no new
dependencies, and with no exporter started the only cost to the hot
path is one module-global ``is None`` check per published snapshot
(<2% on any workload; effectively zero).
"""

from __future__ import annotations

import collections
import errno
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, Optional, Tuple

from ..telemetry import MetricsRegistry, get_registry

__all__ = ["ENV_METRICS_PORT", "MetricsExporter", "render_prometheus",
           "validate_prometheus_text", "start_exporter", "stop_exporter",
           "active_exporter", "publish_snapshot"]

#: environment variable that auto-starts the exporter in CLI commands
ENV_METRICS_PORT = "REPRO_METRICS_PORT"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: series synthesized at zero when absent, so scrapers can alert on
#: them without presence checks (an absent counter is indistinguishable
#: from a broken scrape otherwise)
_ALWAYS_PRESENT_COUNTERS = ("health.alerts",)


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric/label fragment for a dotted name."""
    return _NAME_SANITIZER.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def render_prometheus(snapshot: Dict[str, Dict[str, Dict[str, Any]]],
                      extra_gauges: Optional[Dict[str, float]] = None) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    Instrument names ride a ``name`` label on five stable families
    (``repro_counter_total``, ``repro_gauge``, ``repro_span_*``,
    ``repro_histogram_*``) instead of being mangled into metric names,
    so dashboards can aggregate across the whole dotted taxonomy.
    """
    lines = []

    def family(metric: str, kind: str, help_text: str,
               samples: Dict[str, float]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        for name in sorted(samples):
            value = float(samples[name])
            lines.append(f'{metric}{{name="{_escape_label(name)}"}} '
                         f"{value:.17g}")

    counters = {name: rec["total"] for name, rec
                in snapshot.get("counters", {}).items()}
    for name in _ALWAYS_PRESENT_COUNTERS:
        counters.setdefault(name, 0.0)
    family("repro_counter_total", "counter",
           "Telemetry counter totals (docs/observability.md).", counters)
    family("repro_gauge", "gauge", "Telemetry gauges (last written value).",
           {name: rec["value"] for name, rec
            in snapshot.get("gauges", {}).items()})

    spans = snapshot.get("spans", {})
    family("repro_span_seconds_total", "counter",
           "Inclusive wall seconds per span name.",
           {name: rec["total_seconds"] for name, rec in spans.items()})
    family("repro_span_calls_total", "counter", "Span completions.",
           {name: rec["count"] for name, rec in spans.items()})
    family("repro_span_errors_total", "counter",
           "Span exits via exception.",
           {name: rec.get("errors", 0) for name, rec in spans.items()})

    histograms = snapshot.get("histograms", {})
    family("repro_histogram_count", "gauge", "Histogram observation counts.",
           {name: rec["count"] for name, rec in histograms.items()})
    family("repro_histogram_sum", "gauge", "Histogram observation sums.",
           {name: rec["total"] for name, rec in histograms.items()})
    family("repro_histogram_max", "gauge",
           "Histogram maxima (peak values, e.g. autodiff.tape_bytes).",
           {name: rec["max"] for name, rec in histograms.items()})

    for name in sorted(extra_gauges or {}):
        metric = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(extra_gauges[name]):.17g}")
    return "\n".join(lines) + "\n"


#: sample line: ``metric{labels} value [timestamp]``
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" [-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)( [0-9]+)?$")
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped)$")


def validate_prometheus_text(text: str) -> Dict[str, int]:
    """Validate exposition text; returns ``{"samples", "families"}`` counts.

    Checks every non-comment line against the text-format sample
    grammar and every ``# TYPE`` line against the known metric kinds.
    Raises :class:`ValueError` listing each malformed line — CI scrapes
    ``/metrics`` during the quick bench and runs this.
    """
    problems = []
    samples = 0
    families = 0
    if text and not text.endswith("\n"):
        problems.append("exposition text must end with a newline")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE"):
            families += 1
            if not _TYPE_LINE.match(line):
                problems.append(f"line {number}: malformed TYPE comment "
                                f"{line!r}")
            continue
        if line.startswith("#"):
            continue
        if _SAMPLE_LINE.match(line):
            samples += 1
        else:
            problems.append(f"line {number}: malformed sample {line!r}")
    if not samples:
        problems.append("no samples found")
    if problems:
        raise ValueError("invalid Prometheus exposition text:\n  "
                         + "\n  ".join(problems))
    return {"samples": samples, "families": families}


class MetricsExporter:
    """Serve ``/metrics`` and ``/healthz`` from the live registry."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[MetricsRegistry] = None,
                 snapshot_interval: float = 1.0,
                 max_snapshots: int = 60):
        self.host = host
        self.port = int(port)
        self.registry = registry
        self.snapshot_interval = float(snapshot_interval)
        self._published = MetricsRegistry()
        self._snapshots: Deque[Tuple[float, Dict[str, Any]]] = \
            collections.deque(maxlen=max(1, int(max_snapshots)))
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._snapshot_thread: Optional[threading.Thread] = None
        self._started_unix: Optional[float] = None
        self.scrapes = 0

    # -- data plane ----------------------------------------------------
    def publish(self, snapshot: Dict[str, Any]) -> None:
        """Fold a finished phase's snapshot into the cumulative registry."""
        self._published.merge_snapshot(snapshot)

    def combined_snapshot(self) -> Dict[str, Any]:
        """Published cumulative state + the live registry, merged."""
        merged = MetricsRegistry()
        merged.merge_snapshot(self._published.snapshot())
        merged.merge_snapshot((self.registry or get_registry()).snapshot())
        return merged.snapshot()

    def latest_snapshot(self) -> Tuple[float, Dict[str, Any]]:
        """The freshest cached sample, refreshed synchronously when stale."""
        now = time.time()
        with self._lock:
            if self._snapshots:
                taken, snapshot = self._snapshots[-1]
                if now - taken <= 2.0 * max(self.snapshot_interval, 0.05):
                    return taken, snapshot
        snapshot = self.combined_snapshot()
        with self._lock:
            self._snapshots.append((now, snapshot))
        return now, snapshot

    def render_metrics(self) -> str:
        taken, snapshot = self.latest_snapshot()
        uptime = (time.time() - self._started_unix
                  if self._started_unix else 0.0)
        return render_prometheus(snapshot, extra_gauges={
            "exporter_uptime_seconds": uptime,
            "exporter_scrapes_total": float(self.scrapes),
            "exporter_snapshot_age_seconds": max(0.0, time.time() - taken),
        })

    def healthz(self) -> Dict[str, Any]:
        taken, snapshot = self.latest_snapshot()
        alerts = snapshot.get("counters", {}).get("health.alerts",
                                                  {"total": 0.0})
        return {
            "status": "ok",
            "uptime_seconds": (time.time() - self._started_unix
                               if self._started_unix else 0.0),
            "scrapes": self.scrapes,
            "snapshot_age_seconds": max(0.0, time.time() - taken),
            "health_alerts": float(alerts.get("total", 0.0)),
        }

    # -- request routing (overridable by subclasses) -------------------
    def _handle_get(self, path: str) -> Optional[Tuple[int, str, bytes]]:
        """Route a GET; ``(status, content_type, body)`` or ``None`` = 404.

        Subclasses (e.g. the serving layer's ``RecommendationServer``)
        extend the endpoint set by overriding this and falling back to
        ``super()`` — the threading/bind/lifecycle plumbing is shared.
        """
        if path == "/metrics":
            self.scrapes += 1
            body = self.render_metrics().encode("utf-8")
            return 200, "text/plain; version=0.0.4; charset=utf-8", body
        if path == "/healthz":
            body = (json.dumps(self.healthz(), sort_keys=True)
                    + "\n").encode("utf-8")
            return 200, "application/json", body
        return None

    def _handle_post(self, path: str,
                     payload: bytes) -> Optional[Tuple[int, str, bytes]]:
        """Route a POST; the base exporter accepts none (``None`` = 404)."""
        return None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> int:
        """Bind and serve on daemon threads; returns the bound port.

        Port ``0`` binds an ephemeral port; the chosen port is recorded
        on ``self.port`` (and returned) so callers can report it.  A
        taken port raises a clear ``RuntimeError`` instead of leaking
        the raw ``OSError`` traceback.
        """
        if self._server is not None:
            return self.port
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def _reply(self, result: Optional[Tuple[int, str, bytes]]):
                if result is None:
                    result = (404, "text/plain", b"not found\n")
                status, content_type, body = result
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 — http.server API
                self._reply(exporter._handle_get(self.path.split("?", 1)[0]))

            def do_POST(self):  # noqa: N802 — http.server API
                length = int(self.headers.get("Content-Length") or 0)
                payload = self.rfile.read(length) if length > 0 else b""
                self._reply(exporter._handle_post(
                    self.path.split("?", 1)[0], payload))

            def log_message(self, fmt, *args):  # silence per-request noise
                pass

        try:
            self._server = ThreadingHTTPServer((self.host, self.port),
                                               _Handler)
        except OSError as error:
            if error.errno == errno.EADDRINUSE:
                raise RuntimeError(
                    f"cannot serve on {self.host}:{self.port}: port already "
                    f"in use — pass port 0 to bind an ephemeral port "
                    f"instead (the bound port is reported back)") from error
            raise
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._started_unix = time.time()
        self._stop.clear()
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics-http",
            daemon=True)
        self._serve_thread.start()
        if self.snapshot_interval > 0:
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop, name="repro-metrics-snapshots",
                daemon=True)
            self._snapshot_thread.start()
        return self.port

    def _snapshot_loop(self) -> None:
        while not self._stop.wait(self.snapshot_interval):
            snapshot = self.combined_snapshot()
            with self._lock:
                self._snapshots.append((time.time(), snapshot))

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._snapshot_thread is not None:
            self._snapshot_thread.join(timeout=5.0)
            self._snapshot_thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


# ----------------------------------------------------------------------
# Process-wide singleton (what CLI commands and the bench harness use)
# ----------------------------------------------------------------------

_ACTIVE: Optional[MetricsExporter] = None


def active_exporter() -> Optional[MetricsExporter]:
    return _ACTIVE


def start_exporter(port: int, **kwargs: Any) -> MetricsExporter:
    """Start (or return) the process-wide exporter on ``port``."""
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    exporter = MetricsExporter(port=port, **kwargs)
    exporter.start()
    _ACTIVE = exporter
    return exporter


def stop_exporter() -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.stop()
        _ACTIVE = None


def publish_snapshot(snapshot: Optional[Dict[str, Any]]) -> None:
    """Hand a finished phase's registry snapshot to the live exporter.

    A single ``is None`` check when no exporter is running — safe to
    call from any hot-path boundary (the bench harness calls it once
    per workload).
    """
    if _ACTIVE is not None and snapshot is not None:
        _ACTIVE.publish(snapshot)
