"""Lifecycle hooks for the training :class:`~repro.engine.Engine`.

A hook overrides any subset of the lifecycle methods on :class:`Hook`.
Events per ``Engine.fit``::

    on_fit_start
      on_epoch_start(epoch)
        on_batch_start(epoch, index)
        on_batch_end(epoch, index, loss_value)   # loss_value None if skipped
      on_epoch_end(stats: EpochStats)
    on_fit_end
    on_exception                                  # only if fit raised

Hooks fire in the order they were passed to the engine; conventionally
:class:`TelemetryHook` goes first so the ``train.epoch`` span closes
before other hooks do their epoch-end work (callbacks that run an
evaluation pass must not count against the epoch's span).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .. import telemetry
from .loop import Engine, EpochStats


class Hook:
    """No-op base class; subclass and override the events you need."""

    def on_fit_start(self, engine: Engine) -> None:
        pass

    def on_epoch_start(self, engine: Engine, epoch: int) -> None:
        pass

    def on_batch_start(self, engine: Engine, epoch: int, index: int) -> None:
        pass

    def on_batch_end(self, engine: Engine, epoch: int, index: int,
                     loss: Optional[float]) -> None:
        pass

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        pass

    def on_fit_end(self, engine: Engine) -> None:
        pass

    def on_exception(self, engine: Engine) -> None:
        pass


class History(Hook):
    """Accumulates the canonical :class:`EpochStats` records.

    Trainers expose ``history_hook.stats`` (the same list object) as
    their ``history`` / ``epoch_history`` attribute, so the records stay
    live while training runs — epoch callbacks can inspect them.
    """

    def __init__(self):
        self.stats = []

    def on_fit_start(self, engine: Engine) -> None:
        self.stats.clear()

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        self.stats.append(stats)


class EarlyStopping(Hook):
    """Loss-plateau early stopping (§V-A3's stopping rule).

    Stops training when the epoch loss has not improved by at least a
    ``min_improvement`` relative margin for ``patience`` consecutive
    epochs.  Lifted out of ``KUCNetRecommender`` so every trainer gets
    the same rule.
    """

    def __init__(self, patience: int, min_improvement: float = 1e-3):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_improvement = min_improvement
        self.best_loss = np.inf
        self.stale_epochs = 0

    def on_fit_start(self, engine: Engine) -> None:
        self.best_loss = np.inf
        self.stale_epochs = 0

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        if stats.loss < self.best_loss * (1.0 - self.min_improvement):
            self.best_loss = stats.loss
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
            if self.stale_epochs >= self.patience:
                engine.request_stop()


class BestCheckpoint(Hook):
    """Snapshot the best-loss epoch's parameters; restore them at fit end.

    ``module`` is anything with ``state_dict()`` / ``load_state_dict()``
    (every :class:`repro.autodiff.Module`).  Snapshots are in-memory
    parameter copies, so the hook is cheap at the repo's model sizes and
    adds no file I/O to the loop.
    """

    def __init__(self, module):  # noqa: ANN001
        self.module = module
        self.best_loss = np.inf
        self.best_epoch: Optional[int] = None
        self._best_state: Optional[Dict[str, np.ndarray]] = None

    def on_fit_start(self, engine: Engine) -> None:
        self.best_loss = np.inf
        self.best_epoch = None
        self._best_state = None

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        if stats.loss < self.best_loss:
            self.best_loss = stats.loss
            self.best_epoch = stats.epoch
            self._best_state = self.module.state_dict()

    def on_fit_end(self, engine: Engine) -> None:
        if self._best_state is not None:
            self.module.load_state_dict(self._best_state)


class TelemetryHook(Hook):
    """Uniform ``train.epoch`` / ``train.batch`` spans for every trainer.

    Also counts ``train.epochs``; span statistics (count, inclusive and
    exclusive seconds) land in the process registry exactly as the
    pre-engine per-trainer ``with telemetry.span(...)`` blocks did.
    """

    def __init__(self, epoch_span: str = "train.epoch",
                 batch_span: str = "train.batch"):
        self.epoch_span = epoch_span
        self.batch_span = batch_span
        self._epoch: Optional[telemetry.Span] = None
        self._batch: Optional[telemetry.Span] = None

    def on_epoch_start(self, engine: Engine, epoch: int) -> None:
        self._epoch = telemetry.span(self.epoch_span)
        self._epoch.__enter__()

    def on_batch_start(self, engine: Engine, epoch: int, index: int) -> None:
        self._batch = telemetry.span(self.batch_span)
        self._batch.__enter__()

    def on_batch_end(self, engine: Engine, epoch: int, index: int,
                     loss: Optional[float]) -> None:
        if self._batch is not None:
            self._batch.__exit__(None, None, None)
            self._batch = None

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        if self._epoch is not None:
            self._epoch.__exit__(None, None, None)
            self._epoch = None
        telemetry.counter("train.epochs")

    def on_exception(self, engine: Engine) -> None:
        # Close dangling spans so the tracer stack stays balanced.
        if self._batch is not None:
            self._batch.__exit__(None, None, None)
            self._batch = None
        if self._epoch is not None:
            self._epoch.__exit__(None, None, None)
            self._epoch = None


class ProgressLogger(Hook):
    """Verbose per-epoch printing (the ``verbose=True`` code path)."""

    def __init__(self, prefix: str = "", print_fn: Callable[[str], None] = print):
        self.prefix = f"{prefix} " if prefix else ""
        self.print_fn = print_fn

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        self.print_fn(f"{self.prefix}epoch {stats.epoch}: "
                      f"loss={stats.loss:.4f} ({stats.seconds:.1f}s)")


class EpochCallback(Hook):
    """Adapter preserving the pre-engine ``epoch_callback`` APIs.

    Wraps a ``callback(stats: EpochStats)`` callable.  Trainers whose
    public API predates the engine (``KUCNetRecommender.fit(split,
    callback=...)``, ``BPRModelRecommender.fit(split,
    epoch_callback=...)``) build the adapting closure and hand it here.
    """

    def __init__(self, callback: Callable[[EpochStats], None]):
        self.callback = callback

    def on_epoch_end(self, engine: Engine, stats: EpochStats) -> None:
        self.callback(stats)
