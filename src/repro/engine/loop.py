"""The training loop itself: :class:`Engine` and :class:`EpochStats`.

The engine replaces the six hand-rolled epoch loops that used to live in
``core/trainer.py``, ``baselines/base.py``, ``baselines/pathsim.py`` and
the three ``linkpred`` trainers.  Per-model logic (negative sampling,
pair scoring, auxiliary losses) stays in the model's ``step`` function;
everything a loop shares — iteration, the optimizer cycle, epoch
statistics, lifecycle hooks — lives here, once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

#: ``batches(epoch)`` produces the epoch's batches *in final order* —
#: any shuffling (and the RNG draws it costs) belongs to the model.
BatchesFn = Callable[[int], Iterable[Any]]
#: ``step(batch)`` returns the batch loss as an autodiff tensor, or
#: ``None`` to skip the batch (no optimizer update, no loss recorded).
StepFn = Callable[[Any], Optional[Any]]


@dataclass
class EpochStats:
    """Per-epoch training record (drives the Fig. 4 learning curves).

    The one canonical history format: KUCNet, every BPR baseline, and
    the link-prediction trainers all emit lists of these (they used to
    disagree — bare ``(epoch, loss, seconds)`` tuples here, raw floats
    there).
    """

    epoch: int
    loss: float
    seconds: float
    cumulative_seconds: float


class Engine:
    """Runs ``epochs`` × ``batches`` × (``step`` → optimizer cycle).

    Parameters
    ----------
    optimizer:
        Any object with ``zero_grad()`` / ``step()`` (e.g.
        :class:`repro.autodiff.Adam`).  The engine calls
        ``zero_grad → loss.backward → step`` for every batch whose
        ``step`` function returns a loss.
    hooks:
        :class:`~repro.engine.hooks.Hook` instances.  Lifecycle events
        fire in list order; put :class:`TelemetryHook` first so its
        spans close before other hooks run (keeping callback/eval work
        outside the measured epoch, as the pre-engine loops did).
    """

    def __init__(self, optimizer, hooks: Sequence = ()):  # noqa: ANN001
        self.optimizer = optimizer
        self.hooks = list(hooks)
        self.cumulative_seconds = 0.0
        self._stop_requested = False

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Stop after the current epoch (called by hooks, e.g.
        :class:`~repro.engine.hooks.EarlyStopping`)."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    def fit(self, step: StepFn, batches: BatchesFn,
            epochs: int) -> List[EpochStats]:
        """Train for up to ``epochs`` epochs; returns the epoch records."""
        self._stop_requested = False
        self._fire("on_fit_start")
        history: List[EpochStats] = []
        try:
            for epoch in range(epochs):
                history.append(self.run_epoch(step, batches, epoch))
                if self._stop_requested:
                    break
        except BaseException:
            self._fire("on_exception")
            raise
        self._fire("on_fit_end")
        return history

    def run_epoch(self, step: StepFn, batches: BatchesFn,
                  epoch: int) -> EpochStats:
        """Run one epoch; usable standalone (the bench workloads do)."""
        started = time.perf_counter()
        self._fire("on_epoch_start", epoch)
        losses: List[float] = []
        for index, batch in enumerate(batches(epoch)):
            self._fire("on_batch_start", epoch, index)
            loss = step(batch)
            value: Optional[float] = None
            if loss is not None:
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                value = loss.item()
                losses.append(value)
            self._fire("on_batch_end", epoch, index, value)
        seconds = time.perf_counter() - started
        self.cumulative_seconds += seconds
        stats = EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else 0.0,
            seconds=seconds,
            cumulative_seconds=self.cumulative_seconds)
        self._fire("on_epoch_end", stats)
        return stats

    # ------------------------------------------------------------------
    def _fire(self, event: str, *args) -> None:
        if event == "on_exception":
            # Best-effort unwind: every hook gets to clean up (close
            # spans, release resources) even if another hook raises.
            for hook in self.hooks:
                try:
                    getattr(hook, event)(self)
                except Exception:
                    pass
            return
        for hook in self.hooks:
            getattr(hook, event)(self, *args)
