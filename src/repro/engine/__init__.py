"""Callback-driven training engine shared by every trainer in the repo.

One :class:`Engine` owns the epoch loop — batch production, loss
computation via a per-model ``step`` function, and the
``zero_grad/backward/step`` optimizer cycle — while cross-cutting
concerns (history records, early stopping, best-epoch checkpointing,
telemetry spans, verbose printing, user callbacks) attach as
:class:`Hook` instances.  See ``docs/training-engine.md`` for the
protocol and a worked example of adding a hook.

Determinism contract: the engine consumes no randomness of its own.
All RNG draws happen inside the model-supplied ``batches`` and ``step``
callables, in the exact order the pre-engine hand-rolled loops made
them, so fixed-seed loss trajectories are bitwise-identical to the
historical ones (locked in by ``tests/test_golden_losses.py``).
"""

from .hooks import (BestCheckpoint, EarlyStopping, EpochCallback, History,
                    Hook, ProgressLogger, TelemetryHook)
from .loop import Engine, EpochStats

__all__ = [
    "Engine", "EpochStats",
    "Hook", "History", "EarlyStopping", "BestCheckpoint",
    "TelemetryHook", "ProgressLogger", "EpochCallback",
]
