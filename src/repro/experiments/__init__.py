"""Experiment harness: profiles, method factories, and per-table runners.

``EXPERIMENTS`` maps each paper table/figure id to the runner that
regenerates it.  Each runner returns a
:class:`~repro.experiments.tables.TableResult`.
"""

from .methods import (KUCNET_DEPTH, KUCNET_K, TABLE3_METHODS, TABLE4_METHODS,
                      kucnet_settings, make_method)
from .profiles import PROFILES, Profile, active_profile
from .runners import (RECOMMENDATION_DATASETS, run_fig4, run_fig5, run_fig6,
                      run_fig7, run_ppr_backends, run_table2, run_table3,
                      run_table4, run_table5, run_table6, run_table7,
                      run_table8, run_table9)
from .tables import TableResult

#: table/figure id -> runner
EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "table9": run_table9,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "ppr_backends": run_ppr_backends,
}

__all__ = [
    "EXPERIMENTS", "TableResult", "Profile", "PROFILES", "active_profile",
    "make_method", "kucnet_settings",
    "TABLE3_METHODS", "TABLE4_METHODS", "KUCNET_DEPTH", "KUCNET_K",
    "RECOMMENDATION_DATASETS",
    "run_table2", "run_table3", "run_table4", "run_table5", "run_table6",
    "run_table7", "run_table8", "run_table9", "run_fig4", "run_fig5",
    "run_fig6", "run_fig7", "run_ppr_backends",
]
