"""Experiment runners: one function per paper table/figure.

Every runner returns a :class:`~repro.experiments.tables.TableResult`
holding the measured rows (and, where applicable, the paper-reported
values for side-by-side comparison).  Benchmarks under ``benchmarks/``
call these and save the renderings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..data import (PRESETS, Dataset, Split, new_item_split, new_user_split,
                    traditional_split)
from ..eval import evaluate
from . import paper
from .methods import (KUCNET_DEPTH, KUCNET_K, TABLE3_METHODS, TABLE4_METHODS,
                      kucnet_settings, make_method)
from .profiles import Profile, active_profile
from .tables import TableResult

RECOMMENDATION_DATASETS = ["lastfm_like", "amazon_book_like",
                           "alibaba_ifashion_like"]


def _make_split(dataset: Dataset, setting: str, seed: int,
                fold: int = 0) -> Split:
    if setting == "traditional":
        return traditional_split(dataset, seed=seed)
    if setting == "new_item":
        return new_item_split(dataset, fold=fold, seed=seed)
    if setting == "new_user":
        return new_user_split(dataset, fold=fold, seed=seed)
    raise ValueError(f"unknown setting {setting!r}")


def _averaged_eval(method_name: str, dataset_name: str, setting: str,
                   profile: Profile, seeds: Optional[Sequence[int]] = None,
                   folds: Sequence[int] = (0,)):
    """Fit + evaluate over seeds × folds; return mean metrics.

    The paper evaluates the new-item/new-user settings as 5-fold
    cross-validation (§V-D1); pass ``folds=range(5)`` for the full
    protocol.
    """
    seeds = seeds if seeds is not None else range(profile.num_seeds)
    recalls, ndcgs = [], []
    for seed in seeds:
        for fold in folds:
            dataset = PRESETS[dataset_name](seed=seed, scale=profile.scale)
            split = _make_split(dataset, setting, seed=seed, fold=fold)
            model = make_method(method_name, dataset_name, setting, profile,
                                seed=seed)
            telemetry.counter("experiment.fits")
            model.fit(split)
            result = evaluate(model, split, max_users=profile.eval_users,
                              seed=seed)
            recalls.append(result.recall)
            ndcgs.append(result.ndcg)
    return float(np.mean(recalls)), float(np.mean(ndcgs))


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------

def run_table2(profile: Optional[Profile] = None) -> TableResult:
    """Statistics of the synthetic analogues vs. the paper's datasets."""
    profile = profile or active_profile()
    columns = ["users", "items", "interactions", "entities", "relations",
               "triplets"]
    rows: Dict[str, Dict[str, float]] = {}
    for name, maker in PRESETS.items():
        stats = maker(seed=0, scale=profile.scale).statistics()
        rows[name] = {column: stats[column] for column in columns}
    return TableResult(
        title=f"Table II analogue — dataset statistics (profile={profile.name})",
        columns=columns, rows=rows,
        paper={name: dict(values) for name, values in paper.PAPER_TABLE2.items()},
        notes=["synthetic analogues are ~100x smaller than the paper's "
               "public datasets; relation structure and density ratios "
               "follow the same ordering"])


# ----------------------------------------------------------------------
# Tables III-V — main comparisons
# ----------------------------------------------------------------------

def run_table3(profile: Optional[Profile] = None,
               datasets: Optional[List[str]] = None,
               methods: Optional[List[str]] = None) -> TableResult:
    """Traditional recommendation (Table III)."""
    profile = profile or active_profile()
    datasets = datasets or RECOMMENDATION_DATASETS
    methods = methods or TABLE3_METHODS
    return _comparison_table(
        title=f"Table III analogue — traditional recommendation "
              f"(profile={profile.name})",
        datasets=datasets, methods=methods, setting="traditional",
        profile=profile, paper_values=paper.PAPER_TABLE3)


def run_table4(profile: Optional[Profile] = None,
               datasets: Optional[List[str]] = None,
               methods: Optional[List[str]] = None) -> TableResult:
    """Recommendation with new items (Table IV)."""
    profile = profile or active_profile()
    datasets = datasets or RECOMMENDATION_DATASETS
    methods = methods or TABLE4_METHODS
    return _comparison_table(
        title=f"Table IV analogue — new-item recommendation "
              f"(profile={profile.name})",
        datasets=datasets, methods=methods, setting="new_item",
        profile=profile, paper_values=paper.PAPER_TABLE4)


def run_table5(profile: Optional[Profile] = None,
               methods: Optional[List[str]] = None,
               folds: Sequence[int] = (0,)) -> TableResult:
    """DisGeNet new-item / new-user (Table V).

    ``folds=range(5)`` runs the paper's full 5-fold protocol.
    """
    profile = profile or active_profile()
    methods = methods or TABLE4_METHODS
    columns, rows, paper_rows = [], {}, {}
    for setting in ("new_item", "new_user"):
        columns += [f"{setting}:recall", f"{setting}:ndcg"]
    for method in methods:
        rows[method] = {}
        paper_rows[method] = {}
        for setting in ("new_item", "new_user"):
            recall, ndcg = _averaged_eval(method, "disgenet_like", setting,
                                          profile, folds=folds)
            rows[method][f"{setting}:recall"] = recall
            rows[method][f"{setting}:ndcg"] = ndcg
            reported = paper.PAPER_TABLE5[setting].get(method)
            if reported:
                paper_rows[method][f"{setting}:recall"] = reported[0]
                paper_rows[method][f"{setting}:ndcg"] = reported[1]
    return TableResult(
        title=f"Table V analogue — disease-gene prediction "
              f"(profile={profile.name})",
        columns=columns, rows=rows, paper=paper_rows)


def _comparison_table(title, datasets, methods, setting, profile,
                      paper_values) -> TableResult:
    columns: List[str] = []
    for dataset in datasets:
        columns += [f"{dataset}:recall", f"{dataset}:ndcg"]
    rows: Dict[str, Dict[str, float]] = {}
    paper_rows: Dict[str, Dict[str, float]] = {}
    for method in methods:
        rows[method] = {}
        paper_rows[method] = {}
        for dataset in datasets:
            recall, ndcg = _averaged_eval(method, dataset, setting, profile)
            rows[method][f"{dataset}:recall"] = recall
            rows[method][f"{dataset}:ndcg"] = ndcg
            reported = paper_values.get(dataset, {}).get(method)
            if reported:
                paper_rows[method][f"{dataset}:recall"] = reported[0]
                paper_rows[method][f"{dataset}:ndcg"] = reported[1]
    return TableResult(title=title, columns=columns, rows=rows,
                       paper=paper_rows)


# ----------------------------------------------------------------------
# Table VI — running time decomposition
# ----------------------------------------------------------------------

def run_table6(profile: Optional[Profile] = None) -> TableResult:
    """PPR preprocessing vs training vs inference wall-clock (Table VI).

    Paper values are minutes on the authors' hardware; ours are seconds
    on the reduced-scale analogues — the comparison is about the *ratio*
    (PPR preprocessing ≪ training), which is hardware independent.
    """
    profile = profile or active_profile()
    rows: Dict[str, Dict[str, float]] = {
        "PPR (s)": {}, "Training (s)": {}, "Inference (s)": {},
    }
    for dataset_name in RECOMMENDATION_DATASETS:
        dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
        split = traditional_split(dataset, seed=0)
        model = kucnet_settings(dataset_name, "traditional", profile)
        # Phase attribution comes from the telemetry registry: the
        # trainer's ppr.precompute / train.epoch spans plus an eval.score
        # span around the inference loop.
        telemetry.reset()
        with telemetry.enabled():
            model.fit(split)
            users = split.test_users[:profile.eval_users
                                     or len(split.test_users)]
            with telemetry.span("eval.score"):
                for start in range(0, len(users), 64):
                    model.score_users(users[start:start + 64])
        spans = telemetry.get_registry().snapshot()["spans"]
        rows["PPR (s)"][dataset_name] = spans["ppr.precompute"]["total_seconds"]
        rows["Training (s)"][dataset_name] = spans["train.epoch"]["total_seconds"]
        rows["Inference (s)"][dataset_name] = spans["eval.score"]["total_seconds"]
    result = TableResult(
        title=f"Table VI analogue — running time (profile={profile.name})",
        columns=RECOMMENDATION_DATASETS, rows=rows)
    result.notes.append(
        "paper reports minutes at full scale: PPR 8/25/46, training "
        "204/335/304, inference 15/150/42 — the invariant is "
        "PPR-preprocessing << training")
    return result


# ----------------------------------------------------------------------
# Tables VII-IX — ablations
# ----------------------------------------------------------------------

def run_table7(profile: Optional[Profile] = None,
               k_grid: Sequence[int] = (5, 8, 12, 20, 40)) -> TableResult:
    """Sampling-number K sweep (Table VII), recall@20."""
    profile = profile or active_profile()
    rows: Dict[str, Dict[str, float]] = {}
    for dataset_name in ("lastfm_like", "amazon_book_like"):
        for setting, label in (("traditional", dataset_name),
                               ("new_item", f"new-{dataset_name}")):
            rows[label] = {}
            for k in k_grid:
                dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
                split = _make_split(dataset, setting, seed=0)
                model = kucnet_settings(dataset_name, setting, profile, k=k)
                model.fit(split)
                result = evaluate(model, split, max_users=profile.eval_users)
                rows[label][str(k)] = result.recall
    result = TableResult(
        title=f"Table VII analogue — sampling number K (profile={profile.name})",
        columns=[str(k) for k in k_grid], rows=rows)
    result.notes.append(
        "paper grids: Last-FM 20-50 (best 35), Amazon-Book 100-140 (best "
        "120), new-Last-FM 30-70 (best 50), new-Amazon-Book 150-190 (best "
        "170); the shape is an interior optimum")
    return result


def run_table8(profile: Optional[Profile] = None,
               depths: Sequence[int] = (3, 4, 5)) -> TableResult:
    """Model-depth L sweep (Table VIII), recall@20."""
    profile = profile or active_profile()
    rows: Dict[str, Dict[str, float]] = {}
    paper_rows: Dict[str, Dict[str, float]] = {}
    for dataset_name in RECOMMENDATION_DATASETS:
        for setting, label in (("traditional", dataset_name),
                               ("new_item", f"new-{dataset_name}")):
            rows[label] = {}
            paper_rows[label] = {
                str(depth): value
                for depth, value in paper.PAPER_TABLE8.get(label, {}).items()}
            for depth in depths:
                dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
                split = _make_split(dataset, setting, seed=0)
                model = kucnet_settings(dataset_name, setting, profile,
                                        depth=depth)
                model.fit(split)
                result = evaluate(model, split, max_users=profile.eval_users)
                rows[label][str(depth)] = result.recall
    return TableResult(
        title=f"Table VIII analogue — model depth L (profile={profile.name})",
        columns=[str(d) for d in depths], rows=rows, paper=paper_rows)


def run_ppr_backends(profile: Optional[Profile] = None,
                     scale: Optional[float] = None,
                     epsilon: float = 1e-4,
                     top_m: int = 256,
                     overlap_users: int = 24) -> TableResult:
    """Power-iteration vs forward-push PPR engine comparison (extension).

    Measures, on the Last-FM-shaped generator, the three quantities the
    sparse engine trades on: one-time precompute wall time, resident
    score-storage bytes, and pruning fidelity.  Fidelity is the
    *mass-weighted* retention of the pruned computation graph built from
    a converged PPR reference (300 tolerance-run sweeps): the fraction
    of the reference graph's summed degree-normalized PPR mass each
    backend's pruned graph keeps at the trainer's K.  Unweighted edge
    overlap is reported too but is tie-break-dominated — most pruned-
    graph edges carry negligible mass, and both backends (including the
    incumbent dense power-20) rank that noise tail arbitrarily.

    ``scale`` defaults to 2x the Table II analogue preset under the
    quick profile (4x under full): the engines only *diverge* with
    size — which is the point of a scalability engine — and below ~2x
    the dense solver's whole working set fits in cache.
    """
    from ..ppr import (forward_push_batch, personalized_pagerank_batch,
                       sparsify_scores)
    from ..sampling import build_user_centric_graph

    profile = profile or active_profile()
    if scale is None:
        scale = 2.0 if profile.name == "quick" else 4.0
    dataset = PRESETS["lastfm_like"](seed=0, scale=scale)
    split = traditional_split(dataset, seed=0)
    ckg = dataset.build_ckg(split.train)
    users = list(range(ckg.num_users))
    degrees = np.diff(ckg.indptr).astype(np.float64)
    k = KUCNET_K[("lastfm_like", "traditional")]
    depth = KUCNET_DEPTH[("lastfm_like", "traditional")]

    # Spans rather than bare perf_counter pairs: the backend comparison
    # shares the ppr.* namespace, so a profiled run of this experiment
    # lands in the same registry (and dumps) as the trainer's own
    # ppr.precompute.  Span.elapsed is populated even with telemetry
    # disabled, so the table works outside an enabled() block too.
    with telemetry.span("ppr.precompute.power") as power_span:
        power = personalized_pagerank_batch(ckg, users)
    power_seconds = power_span.elapsed
    with telemetry.span("ppr.precompute.push") as push_span:
        push = forward_push_batch(ckg, users, epsilon=epsilon, top_m=top_m)
    push_seconds = push_span.elapsed

    # Converged reference for the fidelity rows (not timed: 300 sweeps
    # is far beyond either backend's operating point).
    truth = personalized_pagerank_batch(ckg, users, iterations=300,
                                        tolerance=1e-14)
    truth_norm = truth.scores / np.maximum(degrees, 1.0)[None, :]
    power_norm = power.scores / np.maximum(degrees, 1.0)[None, :]
    push.normalize_by_degree(degrees)

    batch = users[:overlap_users]

    def pruned_edges(scores):
        graph = build_user_centric_graph(ckg, batch, depth=depth,
                                         ppr_scores=scores, k=k)
        edges = {}
        for level, layer in enumerate(graph.layers):
            slots = graph.slots[level][layer.src_pos]
            for slot, rel, head, tail in zip(slots, layer.relations,
                                             layer.heads, layer.tails):
                edges[(level, int(slot), int(rel), int(head), int(tail))] = \
                    float(truth_norm[batch[int(slot)], int(tail)])
        return edges

    reference = pruned_edges(truth_norm[batch])
    reference_mass = sum(reference.values()) or 1.0
    rows: Dict[str, Dict[str, float]] = {
        "Precompute (s)": {}, "Score storage (MB)": {},
        "Mass retention @K": {}, "Edge overlap @K": {},
    }
    for name, seconds, scores, nbytes in (
            ("power", power_seconds, power_norm[batch], power.scores.nbytes),
            ("push", push_seconds, push.select(batch), push.nbytes)):
        edges = pruned_edges(scores)
        kept = sum(mass for key, mass in reference.items() if key in edges)
        union = len(set(reference) | set(edges)) or 1
        rows["Precompute (s)"][name] = seconds
        rows["Score storage (MB)"][name] = nbytes / 1e6
        rows["Mass retention @K"][name] = kept / reference_mass
        rows["Edge overlap @K"][name] = \
            len(set(reference) & set(edges)) / union

    result = TableResult(
        title=(f"PPR engine comparison — power vs forward push "
               f"(lastfm_like x{scale:g}, profile={profile.name})"),
        columns=["power", "push"], rows=rows)
    result.notes.append(
        f"U={ckg.num_users} users, N={ckg.num_nodes} nodes, "
        f"E={ckg.num_edges} edges; push epsilon={epsilon:g}, "
        f"top_m={top_m}; retention/overlap on {len(batch)} users at "
        f"K={k}, L={depth} against a converged (300-sweep) reference")
    result.notes.append(
        "storage: power holds U x N float64; push holds <= U x top_m "
        "float32 in CSR — both backends retain >99% of the reference "
        "graph's PPR mass; raw edge overlap is tie-break noise either way")
    return result


def run_table9(profile: Optional[Profile] = None) -> TableResult:
    """Variant ablation (Table IX): random sampling / no attention / full."""
    profile = profile or active_profile()
    variants = {
        "KUCNet-random": {"sampler": "random"},
        "KUCNet-w.o.-Attn": {"use_attention": False},
        "KUCNet": {},
    }
    rows: Dict[str, Dict[str, float]] = {name: {} for name in variants}
    paper_rows: Dict[str, Dict[str, float]] = {name: {} for name in variants}
    columns: List[str] = []
    for dataset_name in ("lastfm_like", "amazon_book_like"):
        for setting, label in (("traditional", dataset_name),
                               ("new_item", f"new-{dataset_name}")):
            columns.append(label)
            for variant, overrides in variants.items():
                dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
                split = _make_split(dataset, setting, seed=0)
                model = kucnet_settings(dataset_name, setting, profile,
                                        **overrides)
                model.fit(split)
                result = evaluate(model, split, max_users=profile.eval_users)
                rows[variant][label] = result.recall
                reported = paper.PAPER_TABLE9.get(label, {}).get(variant)
                if reported is not None:
                    paper_rows[variant][label] = reported
    return TableResult(
        title=f"Table IX analogue — KUCNet variants (profile={profile.name})",
        columns=columns, rows=rows, paper=paper_rows)


# ----------------------------------------------------------------------
# Figures 4-6
# ----------------------------------------------------------------------

def run_fig4(profile: Optional[Profile] = None,
             dataset_name: str = "lastfm_like",
             methods: Sequence[str] = ("KUCNet", "KGAT", "KGIN", "R-GCN"),
             eval_every: int = 2) -> TableResult:
    """Learning curves: recall/ndcg vs cumulative training time (Fig. 4)."""
    profile = profile or active_profile()
    dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
    split = traditional_split(dataset, seed=0)

    rows: Dict[str, Dict[str, float]] = {}

    def record(method, epoch, seconds, model):
        result = evaluate(model, split, max_users=min(profile.eval_users or 60, 60),
                          seed=1)
        rows[f"{method} @epoch {epoch}"] = {
            "seconds": round(seconds, 2),
            "recall@20": result.recall,
            "ndcg@20": result.ndcg,
        }

    for method in methods:
        model = make_method(method, dataset_name, "traditional", profile)
        if method == "KUCNet":
            model.fit(split, callback=lambda stats: (
                record(method, stats.epoch, stats.cumulative_seconds, model)
                if stats.epoch % eval_every == eval_every - 1 else None))
        else:
            model.fit(split, epoch_callback=lambda epoch, m, seconds: (
                record(method, epoch, seconds, m)
                if epoch % eval_every == eval_every - 1 else None))
    result = TableResult(
        title=f"Fig. 4 analogue — learning curves on {dataset_name} "
              f"(profile={profile.name})",
        columns=["seconds", "recall@20", "ndcg@20"], rows=rows)
    result.notes.append(
        "paper's claim: KUCNet reaches better metrics in less training "
        "time than the GNN baselines; R-GCN converges slowest")
    return result


def run_fig5(profile: Optional[Profile] = None,
             methods: Sequence[str] = ("CKE", "R-GCN", "KGAT", "KGNN-LS",
                                       "CKAN", "KGIN", "KUCNet")) -> TableResult:
    """Model parameter counts per dataset (Fig. 5)."""
    profile = profile or active_profile()
    rows: Dict[str, Dict[str, float]] = {method: {} for method in methods}
    for dataset_name in RECOMMENDATION_DATASETS:
        dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
        split = traditional_split(dataset, seed=0)
        for method in methods:
            model = make_method(method, dataset_name, "traditional", profile)
            if hasattr(model, "prepare"):
                model.prepare(split)          # KUCNet: allocate without training
            else:
                model.build(split)            # baselines: allocate parameters
                model.split = split
            rows[method][dataset_name] = model.num_parameters()
    result = TableResult(
        title=f"Fig. 5 analogue — parameter counts (profile={profile.name})",
        columns=list(RECOMMENDATION_DATASETS), rows=rows)
    result.notes.append(
        "paper's claim: KUCNet has far fewer parameters because it learns "
        "no node embeddings — parameter count is independent of the "
        "number of users/items/entities")
    return result


def run_fig7(profile: Optional[Profile] = None,
             num_cases: int = 3) -> TableResult:
    """Interpretability case studies (§V-F, Fig. 7).

    Trains KUCNet in the traditional and new-item settings, extracts the
    attention-weighted explanation subgraph behind each top
    recommendation, and reports its size and whether the recommendation
    was a hit.  The rendered paths are attached as notes (the textual
    analogue of Fig. 7's drawings).
    """
    from ..core import explain, render_explanation
    from ..eval import rank_items

    profile = profile or active_profile()
    rows: Dict[str, Dict[str, float]] = {}
    notes: List[str] = []
    for setting in ("traditional", "new_item"):
        dataset = PRESETS["lastfm_like"](seed=0, scale=profile.scale)
        split = _make_split(dataset, setting, seed=0)
        model = kucnet_settings("lastfm_like", setting, profile)
        model.fit(split)
        for user in split.test_users[:num_cases]:
            scores = model.score_users([user])[0]
            top = int(rank_items(scores, split.train.positives(user), 1)[0])
            hit = top in split.test_positives[user]
            propagation = model.propagate_users([user],
                                                collect_attention=True)
            edges = explain(propagation, model.ckg, 0, top, threshold=0.5)
            if not edges:
                edges = explain(propagation, model.ckg, 0, top, threshold=0.2)
            label = f"{setting}: user {user} -> item {top}"
            rows[label] = {"edges": len(edges), "hit": float(hit)}
            rendering = render_explanation(edges[:6], model.ckg)
            notes.append(f"{label}\n{rendering}")
    return TableResult(
        title=f"Fig. 7 analogue — explanation subgraphs "
              f"(profile={profile.name})",
        columns=["edges", "hit"], rows=rows, notes=notes)


def run_fig6(profile: Optional[Profile] = None,
             dataset_name: str = "lastfm_like",
             num_users: int = 3) -> TableResult:
    """Inference cost of the three computation-graph strategies (Fig. 6)."""
    profile = profile or active_profile()
    dataset = PRESETS[dataset_name](seed=0, scale=profile.scale)
    split = traditional_split(dataset, seed=0)
    model = kucnet_settings(dataset_name, "traditional", profile)
    model.fit(split)
    users = split.test_users[:num_users]

    rows: Dict[str, Dict[str, float]] = {}

    # One span per strategy; wall-clock comes from the telemetry registry.
    telemetry.reset()
    with telemetry.enabled():
        with telemetry.span("eval.score_ui"):
            model.score_users_via_ui_subgraphs(users)
        with telemetry.span("eval.score_full"):
            model.score_users(users, k=None)
        with telemetry.span("eval.score_pruned"):
            model.score_users(users)
    spans = telemetry.get_registry().snapshot()["spans"]
    for label, span_name, mode in (
            ("KUCNet-UI", "eval.score_ui", "ui"),
            ("KUCNet-w.o.-PPR", "eval.score_full", "full"),
            ("KUCNet", "eval.score_pruned", "pruned")):
        rows[label] = {
            "edges": model.count_inference_edges(users, mode=mode),
            "seconds": round(spans[span_name]["total_seconds"], 3),
        }
    result = TableResult(
        title=f"Fig. 6 analogue — inference cost on {dataset_name} for "
              f"{len(users)} users (profile={profile.name})",
        columns=["edges", "seconds"], rows=rows)
    result.notes.append(
        "paper's claim: per-pair U-I graphs cost orders of magnitude more "
        "edges/time than the merged user-centric graph (Eq. 12), and PPR "
        "pruning reduces cost further")
    return result
