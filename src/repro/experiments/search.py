"""Hyper-parameter search following the paper's protocol (§V-A3).

The paper selects hyper-parameters **by training loss** with a capped
epoch budget, over grids like lr ∈ [1e-6, 1e-2], K ∈ [20, 200],
L ∈ {3,4,5}, δ ∈ {identity, tanh, ReLU}.  This module implements that
selection loop for KUCNet (and, generically, anything with a ``fit``
that records a loss history).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core import KUCNetConfig, KUCNetRecommender, TrainConfig
from ..data import Split

#: the paper's §V-A3 search space, reduced-scale analogue
DEFAULT_KUCNET_GRID = {
    "learning_rate": [1e-3, 3e-3, 5e-3],
    "k": [12, 20, 40],
    "depth": [3, 4, 5],
    "activation": ["identity", "tanh", "relu"],
}

#: which grid keys configure the model vs the trainer
_MODEL_KEYS = {"dim", "attn_dim", "depth", "activation", "dropout",
               "use_attention"}


@dataclass
class Trial:
    """One evaluated hyper-parameter combination."""

    params: Dict[str, Any]
    final_loss: float
    history: List[float] = field(default_factory=list)


@dataclass
class SearchResult:
    """All trials plus the winner (lowest final training loss)."""

    trials: List[Trial]
    best: Trial

    def summary(self) -> str:
        lines = [f"{len(self.trials)} trials; best loss "
                 f"{self.best.final_loss:.4f} with {self.best.params}"]
        for trial in sorted(self.trials, key=lambda t: t.final_loss)[:5]:
            lines.append(f"  loss={trial.final_loss:.4f} {trial.params}")
        return "\n".join(lines)


def grid(search_space: Dict[str, Iterable]) -> List[Dict[str, Any]]:
    """Expand a dict of value lists into the list of combinations."""
    keys = sorted(search_space)
    combos = itertools.product(*(list(search_space[key]) for key in keys))
    return [dict(zip(keys, values)) for values in combos]


def search_kucnet(split: Split,
                  search_space: Optional[Dict[str, Iterable]] = None,
                  epochs: int = 5, seed: int = 0,
                  base_model: Optional[KUCNetConfig] = None,
                  base_train: Optional[TrainConfig] = None,
                  max_trials: Optional[int] = None) -> SearchResult:
    """Grid-search KUCNet hyper-parameters by final training loss.

    Parameters
    ----------
    split:
        Training data (only the train side is used — selection is by
        loss, per §V-A3, so no test leakage).
    search_space:
        ``{param: values}``; params may belong to either
        :class:`KUCNetConfig` or :class:`TrainConfig`.
    epochs:
        Budget per trial (paper caps at 30 at full scale).
    max_trials:
        Optional cap; combinations beyond it are skipped in grid order.
    """
    search_space = search_space or DEFAULT_KUCNET_GRID
    combos = grid(search_space)
    if max_trials is not None:
        combos = combos[:max_trials]
    if not combos:
        raise ValueError("empty search space")

    base_model = base_model or KUCNetConfig(dim=32, seed=seed)
    base_train = base_train or TrainConfig(seed=seed)

    trials: List[Trial] = []
    for params in combos:
        model_kwargs = {**vars(base_model)}
        train_kwargs = {**vars(base_train)}
        for key, value in params.items():
            if key in _MODEL_KEYS:
                model_kwargs[key] = value
            else:
                train_kwargs[key] = value
        train_kwargs["epochs"] = epochs
        recommender = KUCNetRecommender(KUCNetConfig(**model_kwargs),
                                        TrainConfig(**train_kwargs))
        recommender.fit(split)
        history = [stats.loss for stats in recommender.history]
        trials.append(Trial(params=params, final_loss=history[-1],
                            history=history))

    best = min(trials, key=lambda trial: trial.final_loss)
    return SearchResult(trials=trials, best=best)
