"""Paper-reported numbers, used for side-by-side comparison in outputs.

All values transcribed from the ICDE 2024 paper.  Dataset keys map the
paper's datasets to this repo's synthetic analogues:
``Last-FM → lastfm_like``, ``Amazon-Book → amazon_book_like``,
``Alibaba-iFashion → alibaba_ifashion_like``, ``DisGeNet → disgenet_like``.
"""

# Table III: traditional recommendation, (recall@20, ndcg@20).
PAPER_TABLE3 = {
    "lastfm_like": {
        "MF": (0.0724, 0.0617), "FM": (0.0778, 0.0644), "NFM": (0.0829, 0.0671),
        "RippleNet": (0.0791, 0.0652), "KGNN-LS": (0.0880, 0.0642),
        "CKAN": (0.0812, 0.0660), "KGIN": (0.0978, 0.0848),
        "CKE": (0.0732, 0.0630), "R-GCN": (0.0743, 0.0631),
        "KGAT": (0.0873, 0.0744), "KUCNet": (0.1205, 0.1078),
    },
    "amazon_book_like": {
        "MF": (0.1300, 0.0678), "FM": (0.1345, 0.0701), "NFM": (0.1366, 0.0713),
        "RippleNet": (0.1336, 0.0694), "KGNN-LS": (0.1362, 0.0560),
        "CKAN": (0.1442, 0.0698), "KGIN": (0.1687, 0.0915),
        "CKE": (0.1342, 0.0698), "R-GCN": (0.1220, 0.0646),
        "KGAT": (0.1487, 0.0799), "KUCNet": (0.1718, 0.0967),
    },
    "alibaba_ifashion_like": {
        "MF": (0.1095, 0.0670), "FM": (0.1001, 0.0602), "NFM": (0.1035, 0.0654),
        "RippleNet": (0.0960, 0.0521), "KGNN-LS": (0.1039, 0.0557),
        "CKAN": (0.0970, 0.0509), "KGIN": (0.1147, 0.0716),
        "CKE": (0.1103, 0.0676), "R-GCN": (0.0860, 0.0515),
        "KGAT": (0.1030, 0.0627), "KUCNet": (0.1031, 0.0663),
    },
}

# Table IV: recommendation with new items, (recall@20, ndcg@20).
PAPER_TABLE4 = {
    "lastfm_like": {
        "MF": (0.0, 0.0), "FM": (0.0012, 0.0007), "NFM": (0.0125, 0.0068),
        "RippleNet": (0.0005, 0.0004), "KGNN-LS": (0.0, 0.0),
        "CKAN": (0.0005, 0.0005), "KGIN": (0.2472, 0.2292),
        "CKE": (0.0, 0.0), "R-GCN": (0.0616, 0.0372), "KGAT": (0.0, 0.0),
        "PPR": (0.2274, 0.1919), "PathSim": (0.5248, 0.5308),
        "REDGNN": (0.5284, 0.5425), "KUCNet": (0.5375, 0.5573),
    },
    "amazon_book_like": {
        "MF": (0.0, 0.0), "FM": (0.0026, 0.0010), "NFM": (0.0006, 0.0003),
        "RippleNet": (0.0011, 0.0005), "KGNN-LS": (0.0001, 0.0001),
        "CKAN": (0.0005, 0.0003), "KGIN": (0.0868, 0.0446),
        "CKE": (0.0, 0.0), "R-GCN": (0.0001, 0.0001), "KGAT": (0.0001, 0.0001),
        "PPR": (0.0301, 0.0167), "PathSim": (0.2053, 0.1491),
        "REDGNN": (0.2187, 0.1633), "KUCNet": (0.2237, 0.1685),
    },
    "alibaba_ifashion_like": {
        "MF": (0.0, 0.0), "FM": (0.0, 0.0), "NFM": (0.0, 0.0),
        "RippleNet": (0.0007, 0.0004), "KGNN-LS": (0.0001, 0.0001),
        "CKAN": (0.0003, 0.0002), "KGIN": (0.0010, 0.0004),
        "CKE": (0.0, 0.0), "R-GCN": (0.0001, 0.0001), "KGAT": (0.0, 0.0),
        "PPR": (0.0001, 0.0001), "PathSim": (0.0202, 0.0088),
        "REDGNN": (0.0072, 0.0043), "KUCNet": (0.0269, 0.0149),
    },
}

# Table V: DisGeNet, settings "new_item" and "new_user".
PAPER_TABLE5 = {
    "new_item": {
        "MF": (0.0, 0.0), "FM": (0.0007, 0.0003), "NFM": (0.0038, 0.0033),
        "RippleNet": (0.0023, 0.0011), "KGNN-LS": (0.0017, 0.0006),
        "CKAN": (0.0189, 0.0086), "KGIN": (0.0989, 0.0568),
        "CKE": (0.0001, 0.0), "KGAT": (0.0032, 0.0015),
        "R-GCN": (0.0598, 0.0294), "PPR": (0.1293, 0.0665),
        "PathSim": (0.2023, 0.1506), "REDGNN": (0.2341, 0.1523),
        "KUCNet": (0.2574, 0.1791),
    },
    "new_user": {
        "MF": (0.0123, 0.0086), "FM": (0.0238, 0.0165), "NFM": (0.0296, 0.0211),
        "RippleNet": (0.0027, 0.0018), "KGNN-LS": (0.0080, 0.0048),
        "CKAN": (0.0244, 0.0138), "KGIN": (0.0031, 0.0023),
        "CKE": (0.0072, 0.0066), "KGAT": (0.0364, 0.0264),
        "R-GCN": (0.1498, 0.1014), "PPR": (0.0194, 0.0156),
        "PathSim": (0.2810, 0.2144), "REDGNN": (0.2821, 0.2154),
        "KUCNet": (0.2883, 0.2274),
    },
}

# Table VI: running time in minutes (PPR preprocessing, training, inference).
PAPER_TABLE6 = {
    "lastfm_like": {"PPR": 8, "Training": 204, "Inference": 15},
    "amazon_book_like": {"PPR": 25, "Training": 335, "Inference": 150},
    "alibaba_ifashion_like": {"PPR": 46, "Training": 304, "Inference": 42},
}

# Table VII: recall@20 for different sampling numbers K.
PAPER_TABLE7 = {
    "lastfm_like": {20: 0.1200, 30: 0.1202, 35: 0.1205, 40: 0.1199, 50: 0.1198},
    "amazon_book_like": {100: 0.1702, 110: 0.1707, 120: 0.1718, 130: 0.1714,
                         140: 0.1703},
    "new-lastfm_like": {30: 0.5339, 40: 0.5368, 50: 0.5375, 60: 0.5369,
                        70: 0.5362},
    "new-amazon_book_like": {150: 0.2175, 160: 0.2197, 170: 0.2237,
                             180: 0.2196, 190: 0.2172},
}

# Table VIII: recall@20 for model depth L in {3, 4, 5}.
PAPER_TABLE8 = {
    "lastfm_like": {3: 0.1205, 4: 0.1125, 5: 0.1150},
    "amazon_book_like": {3: 0.1718, 4: 0.1667, 5: 0.1688},
    "alibaba_ifashion_like": {3: 0.1031, 4: 0.1004, 5: 0.1015},
    "new-lastfm_like": {3: 0.5375, 4: 0.5216, 5: 0.5331},
    "new-amazon_book_like": {3: 0.2237, 4: 0.1952, 5: 0.2030},
    "new-alibaba_ifashion_like": {3: 0.0057, 4: 0.0056, 5: 0.0269},
}

# Table IX: variant ablation, recall@20.
PAPER_TABLE9 = {
    "lastfm_like": {"KUCNet-random": 0.1181, "KUCNet-w.o.-Attn": 0.1193,
                    "KUCNet": 0.1205},
    "amazon_book_like": {"KUCNet-random": 0.1655, "KUCNet-w.o.-Attn": 0.1672,
                         "KUCNet": 0.1718},
    "new-lastfm_like": {"KUCNet-random": 0.5293, "KUCNet-w.o.-Attn": 0.5348,
                        "KUCNet": 0.5375},
    "new-amazon_book_like": {"KUCNet-random": 0.2142, "KUCNet-w.o.-Attn": 0.2172,
                             "KUCNet": 0.2237},
}

# Table II: dataset statistics as reported in the paper.
PAPER_TABLE2 = {
    "lastfm_like": {"users": 23566, "items": 48123, "interactions": 3034796,
                    "entities": 58266, "relations": 9, "triplets": 464567},
    "amazon_book_like": {"users": 70679, "items": 24915, "interactions": 847733,
                         "entities": 88572, "relations": 39,
                         "triplets": 2557746},
    "alibaba_ifashion_like": {"users": 114737, "items": 30040,
                              "interactions": 1781093, "entities": 59156,
                              "relations": 51, "triplets": 279155},
    "disgenet_like": {"users": 13074, "items": 8947, "interactions": 130820,
                      "entities": 14196, "relations": 4, "triplets": 928517},
}
