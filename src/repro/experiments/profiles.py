"""Execution profiles for the benchmark harness.

``quick`` (default) keeps every table/figure bench in the minutes range;
``full`` uses full dataset scale, more epochs, and every test user.
Select with the ``REPRO_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Profile:
    """Scaling knobs applied uniformly across experiments."""

    name: str
    #: dataset size multiplier (1.0 = the preset sizes of Table II analogue)
    scale: float
    #: epochs for embedding/GNN baselines
    baseline_epochs: int
    #: epochs for KUCNet and its variants
    kucnet_epochs: int
    #: evaluation user cap (None = all test users)
    eval_users: Optional[int]
    #: seeds to average over (the paper reports mean ± std)
    num_seeds: int


PROFILES = {
    "quick": Profile(name="quick", scale=0.6, baseline_epochs=10,
                     kucnet_epochs=6, eval_users=60, num_seeds=1),
    "full": Profile(name="full", scale=1.0, baseline_epochs=20,
                    kucnet_epochs=8, eval_users=None, num_seeds=2),
}


def active_profile() -> Profile:
    """Profile selected by ``REPRO_PROFILE`` (default ``quick``)."""
    name = os.environ.get("REPRO_PROFILE", "quick")
    if name not in PROFILES:
        raise ValueError(f"unknown profile {name!r}; choose from {sorted(PROFILES)}")
    return PROFILES[name]
