"""Method factories with per-dataset / per-setting hyper-parameters.

Mirrors the paper's protocol of tuning each method per dataset (§V-A3):
the numbers below were selected on the synthetic analogues.  Factories
take the active :class:`~repro.experiments.profiles.Profile` so the
quick profile trains shorter.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

from ..baselines import (BASELINES, BaselineConfig, PathSim, PPRRecommender,
                         REDGNN, Recommender)
from ..core import KUCNetConfig, KUCNetRecommender, TrainConfig
from .profiles import Profile

#: Table III method rows (embedding/GNN methods + KUCNet)
TABLE3_METHODS = ["MF", "FM", "NFM", "RippleNet", "KGNN-LS", "CKAN", "KGIN",
                  "CKE", "R-GCN", "KGAT", "KUCNet"]
#: Table IV/V method rows (adds the non-embedding baselines)
TABLE4_METHODS = TABLE3_METHODS[:-1] + ["PPR", "PathSim", "REDGNN", "KUCNet"]

#: KUCNet depth per (dataset, setting); the paper tunes L in {3, 4, 5}
#: (§V-A3).  At this reproduction's reduced scale the new-item settings
#: need the deeper configurations (see EXPERIMENTS.md).
KUCNET_DEPTH = {
    ("lastfm_like", "traditional"): 3,
    ("amazon_book_like", "traditional"): 3,
    ("alibaba_ifashion_like", "traditional"): 3,
    ("disgenet_like", "traditional"): 3,
    ("lastfm_like", "new_item"): 4,
    ("amazon_book_like", "new_item"): 4,
    ("alibaba_ifashion_like", "new_item"): 5,
    ("disgenet_like", "new_item"): 5,
    ("disgenet_like", "new_user"): 4,
}

#: KUCNet sampling budget K per (dataset, setting)
KUCNET_K = {
    ("lastfm_like", "traditional"): 20,
    ("amazon_book_like", "traditional"): 20,
    ("alibaba_ifashion_like", "traditional"): 20,
    ("disgenet_like", "traditional"): 20,
    ("lastfm_like", "new_item"): 12,
    ("amazon_book_like", "new_item"): 12,
    ("alibaba_ifashion_like", "new_item"): 15,
    ("disgenet_like", "new_item"): 20,
    ("disgenet_like", "new_user"): 12,
}

#: whether PPR pruning ranks by degree-normalized scores (see
#: TrainConfig.ppr_degree_normalized).  Degree normalization helps on
#: the KG-rich recommendation analogues but hurts on the DisGeNet
#: analogue, whose unique-attribute tails it over-selects — tuned per
#: dataset like K.
KUCNET_PPR_NORM = {
    "lastfm_like": True,
    "amazon_book_like": True,
    "alibaba_ifashion_like": True,
    "disgenet_like": False,
}


def kucnet_settings(dataset: str, setting: str, profile: Profile,
                    seed: int = 0, **overrides) -> KUCNetRecommender:
    """Tuned KUCNet for a (dataset, setting) pair."""
    depth = overrides.pop("depth", KUCNET_DEPTH.get((dataset, setting), 3))
    k = overrides.pop("k", KUCNET_K.get((dataset, setting), 40))
    epochs = overrides.pop("epochs",
                           profile.kucnet_epochs if setting == "traditional"
                           else max(profile.kucnet_epochs, 10))
    learning_rate = overrides.pop("learning_rate",
                                  3e-3 if setting == "traditional" else 5e-3)
    sampler = overrides.pop("sampler", "ppr")
    use_attention = overrides.pop("use_attention", True)
    degree_normalized = overrides.pop("ppr_degree_normalized",
                                      KUCNET_PPR_NORM.get(dataset, True))
    # PPR solver backend; REPRO_PPR_METHOD=push re-runs every table/figure
    # bench on the sparse forward-push engine without touching call sites.
    ppr_method = overrides.pop("ppr_method",
                               os.environ.get("REPRO_PPR_METHOD", "power"))
    # deep graphs grow multiplicatively per layer; smaller user batches
    # keep the per-batch autodiff memory bounded
    batch_users = overrides.pop("batch_users", 12 if depth >= 5 else 24)
    model = KUCNetConfig(dim=48, depth=depth, dropout=0.1,
                         use_attention=use_attention, seed=seed)
    train = TrainConfig(epochs=epochs, pairs_per_user=6, k=k,
                        batch_users=batch_users,
                        learning_rate=learning_rate, sampler=sampler,
                        ppr_degree_normalized=degree_normalized,
                        ppr_method=ppr_method,
                        seed=seed, **overrides)
    return KUCNetRecommender(model, train)


def make_method(name: str, dataset: str, setting: str, profile: Profile,
                seed: int = 0) -> Recommender:
    """Instantiate a method row of Tables III-V."""
    if name == "KUCNet":
        return kucnet_settings(dataset, setting, profile, seed=seed)
    if name == "PPR":
        return PPRRecommender()
    if name == "PathSim":
        return PathSim(seed=seed)
    if name == "REDGNN":
        depth = KUCNET_DEPTH.get((dataset, setting), 3)
        epochs = (profile.kucnet_epochs if setting == "traditional"
                  else max(profile.kucnet_epochs, 10))
        return REDGNN(dim=48, depth=depth, epochs=epochs, edge_cap=40,
                      seed=seed)
    if name in BASELINES:
        config = BaselineConfig(dim=32, epochs=profile.baseline_epochs,
                                seed=seed)
        return BASELINES[name](config)
    raise KeyError(f"unknown method {name!r}")
