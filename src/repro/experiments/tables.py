"""Result containers and text/markdown rendering for experiment outputs."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class TableResult:
    """A reproduced table: ordered rows of named numeric columns.

    ``paper`` optionally carries the paper-reported value for each cell
    (same row/column keys) so renderings show measured vs. paper
    side-by-side.
    """

    title: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]]
    paper: Optional[Dict[str, Dict[str, float]]] = None
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width text rendering with optional paper columns."""
        columns = list(self.columns)
        if self.paper:
            columns += [f"{c} (paper)" for c in self.columns]
        header = ["method"] + columns
        body = []
        for row_name, cells in self.rows.items():
            line = [row_name]
            for column in self.columns:
                line.append(_format(cells.get(column)))
            if self.paper:
                paper_cells = self.paper.get(row_name, {})
                for column in self.columns:
                    line.append(_format(paper_cells.get(column)))
            body.append(line)

        widths = [max(len(str(row[i])) for row in [header] + body)
                  for i in range(len(header))]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(str(cell).ljust(width)
                                   for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        columns = list(self.columns)
        if self.paper:
            columns += [f"{c} (paper)" for c in self.columns]
        lines = [f"### {self.title}", ""]
        lines.append("| method | " + " | ".join(columns) + " |")
        lines.append("|" + "---|" * (len(columns) + 1))
        for row_name, cells in self.rows.items():
            parts = [row_name]
            for column in self.columns:
                parts.append(_format(cells.get(column)))
            if self.paper:
                paper_cells = self.paper.get(row_name, {})
                for column in self.columns:
                    parts.append(_format(paper_cells.get(column)))
            lines.append("| " + " | ".join(parts) + " |")
        for note in self.notes:
            lines.append(f"\n_note: {note}_")
        return "\n".join(lines) + "\n"

    def save(self, directory: str, stem: str) -> str:
        """Write the markdown rendering to ``directory/stem.md``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{stem}.md")
        with open(path, "w") as handle:
            handle.write(self.render_markdown())
        return path

    def to_dict(self) -> Dict[str, object]:
        """Schema-tagged plain-dict form (the ``stem.json`` payload)."""
        return {
            "schema": "repro.table/1",
            "title": self.title,
            "columns": list(self.columns),
            "rows": {name: dict(cells) for name, cells in self.rows.items()},
            "paper": ({name: dict(cells)
                       for name, cells in self.paper.items()}
                      if self.paper else None),
            "notes": list(self.notes),
        }

    def save_json(self, directory: str, stem: str) -> str:
        """Write the machine-readable form to ``directory/stem.json``.

        Saved beside the markdown by the benchmark ``report`` fixture so
        paper-table results feed the same trend tooling as the
        ``BENCH_*.json`` artifacts (``docs/benchmarking.md``).
        """
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{stem}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def _format(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
