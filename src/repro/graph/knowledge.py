"""Knowledge graph triplet store (§III of the paper).

A directed multi-relational graph ``G_k = (V_k, E_k)`` held as three
parallel integer arrays ``(heads, relations, tails)``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np


class KnowledgeGraph:
    """Immutable triplet store over dense entity/relation id spaces.

    Parameters
    ----------
    num_entities, num_relations:
        Sizes of the entity and relation id spaces.
    triplets:
        Iterable of ``(head, relation, tail)``.  Duplicates are dropped.
    """

    def __init__(self, num_entities: int, num_relations: int,
                 triplets: Iterable[Tuple[int, int, int]]):
        if num_entities <= 0 or num_relations <= 0:
            raise ValueError("num_entities and num_relations must be positive")
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)

        unique = sorted(set((int(h), int(r), int(t)) for h, r, t in triplets))
        if unique:
            array = np.asarray(unique, dtype=np.int64)
            self.heads = array[:, 0].copy()
            self.relations = array[:, 1].copy()
            self.tails = array[:, 2].copy()
        else:
            self.heads = np.empty(0, dtype=np.int64)
            self.relations = np.empty(0, dtype=np.int64)
            self.tails = np.empty(0, dtype=np.int64)

        if self.heads.size:
            entity_ids = np.concatenate([self.heads, self.tails])
            if entity_ids.min() < 0 or entity_ids.max() >= num_entities:
                raise ValueError("triplet entity id out of range")
            if self.relations.min() < 0 or self.relations.max() >= num_relations:
                raise ValueError("triplet relation id out of range")

    # ------------------------------------------------------------------
    @property
    def num_triplets(self) -> int:
        return int(self.heads.size)

    def entity_degrees(self) -> np.ndarray:
        """Total (in + out) degree of each entity."""
        degrees = np.zeros(self.num_entities, dtype=np.int64)
        np.add.at(degrees, self.heads, 1)
        np.add.at(degrees, self.tails, 1)
        return degrees

    def relation_counts(self) -> np.ndarray:
        """Number of triplets per relation."""
        counts = np.zeros(self.num_relations, dtype=np.int64)
        np.add.at(counts, self.relations, 1)
        return counts

    def triplets_per_item(self, num_items: int) -> float:
        """KG density proxy: triplets divided by item count (Table II style)."""
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        return self.num_triplets / float(num_items)

    def __repr__(self) -> str:
        return (f"KnowledgeGraph(entities={self.num_entities}, "
                f"relations={self.num_relations}, triplets={self.num_triplets})")
