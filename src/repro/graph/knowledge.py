"""Knowledge graph triplet store (§III of the paper).

A directed multi-relational graph ``G_k = (V_k, E_k)`` held as three
parallel integer arrays ``(heads, relations, tails)``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np


class KnowledgeGraph:
    """Immutable triplet store over dense entity/relation id spaces.

    Parameters
    ----------
    num_entities, num_relations:
        Sizes of the entity and relation id spaces.
    triplets:
        Iterable of ``(head, relation, tail)``.  Duplicates are dropped.
    """

    def __init__(self, num_entities: int, num_relations: int,
                 triplets: Iterable[Tuple[int, int, int]]):
        if num_entities <= 0 or num_relations <= 0:
            raise ValueError("num_entities and num_relations must be positive")
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)

        if isinstance(triplets, np.ndarray):
            # Array fast path for generator-scale KGs: validate, then
            # dedup + lexicographic sort without per-triplet tuples.
            # Yields the same (heads, relations, tails) as the tuple path.
            array = np.ascontiguousarray(triplets, dtype=np.int64)
            if array.size and (array.ndim != 2 or array.shape[1] != 3):
                raise ValueError("triplet array must have shape (n, 3)")
            if array.size:
                entity_ids = array[:, [0, 2]]
                if entity_ids.min() < 0 or entity_ids.max() >= num_entities:
                    raise ValueError("triplet entity id out of range")
                if array[:, 1].min() < 0 or array[:, 1].max() >= num_relations:
                    raise ValueError("triplet relation id out of range")
                if num_entities * num_relations < 2 ** 62 // num_entities:
                    keys = np.unique(
                        (array[:, 0] * np.int64(num_relations) + array[:, 1])
                        * np.int64(num_entities) + array[:, 2])
                    self.heads = keys // (num_entities * num_relations)
                    remainder = keys % (num_entities * num_relations)
                    self.relations = remainder // num_entities
                    self.tails = remainder % num_entities
                else:  # composite key would overflow int64
                    array = np.unique(array, axis=0)
                    self.heads = array[:, 0].copy()
                    self.relations = array[:, 1].copy()
                    self.tails = array[:, 2].copy()
            else:
                self.heads = np.empty(0, dtype=np.int64)
                self.relations = np.empty(0, dtype=np.int64)
                self.tails = np.empty(0, dtype=np.int64)
            return

        unique = sorted(set((int(h), int(r), int(t)) for h, r, t in triplets))
        if unique:
            array = np.asarray(unique, dtype=np.int64)
            self.heads = array[:, 0].copy()
            self.relations = array[:, 1].copy()
            self.tails = array[:, 2].copy()
        else:
            self.heads = np.empty(0, dtype=np.int64)
            self.relations = np.empty(0, dtype=np.int64)
            self.tails = np.empty(0, dtype=np.int64)

        if self.heads.size:
            entity_ids = np.concatenate([self.heads, self.tails])
            if entity_ids.min() < 0 or entity_ids.max() >= num_entities:
                raise ValueError("triplet entity id out of range")
            if self.relations.min() < 0 or self.relations.max() >= num_relations:
                raise ValueError("triplet relation id out of range")

    # ------------------------------------------------------------------
    @property
    def num_triplets(self) -> int:
        return int(self.heads.size)

    def entity_degrees(self) -> np.ndarray:
        """Total (in + out) degree of each entity."""
        degrees = np.zeros(self.num_entities, dtype=np.int64)
        np.add.at(degrees, self.heads, 1)
        np.add.at(degrees, self.tails, 1)
        return degrees

    def relation_counts(self) -> np.ndarray:
        """Number of triplets per relation."""
        counts = np.zeros(self.num_relations, dtype=np.int64)
        np.add.at(counts, self.relations, 1)
        return counts

    def triplets_per_item(self, num_items: int) -> float:
        """KG density proxy: triplets divided by item count (Table II style)."""
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        return self.num_triplets / float(num_items)

    def __repr__(self) -> str:
        return (f"KnowledgeGraph(entities={self.num_entities}, "
                f"relations={self.num_relations}, triplets={self.num_triplets})")
