"""User-item interaction graph (§III of the paper).

Implicit-feedback interactions under the bipartite-graph view: a set of
``(u, i)`` pairs meaning user ``u`` interacted with item ``i``, stored as
parallel integer arrays with per-user positive-set indexes for O(1)
membership tests during negative sampling and evaluation masking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


class UserItemGraph:
    """Bipartite implicit-feedback interaction graph.

    Parameters
    ----------
    num_users, num_items:
        Sizes of the user and item id spaces (ids are dense in
        ``[0, num_users)`` / ``[0, num_items)``).
    interactions:
        Iterable of ``(user, item)`` pairs.  Duplicates are dropped.
    """

    def __init__(self, num_users: int, num_items: int,
                 interactions: Iterable[Tuple[int, int]]):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        self.num_users = int(num_users)
        self.num_items = int(num_items)

        if isinstance(interactions, np.ndarray):
            # Array fast path for generator-scale populations: dedup +
            # lexicographic sort via composite keys, no per-pair Python
            # objects.  Same (users, items) arrays as the tuple path.
            array = np.ascontiguousarray(interactions, dtype=np.int64)
            if array.size and (array.ndim != 2 or array.shape[1] != 2):
                raise ValueError(
                    "interaction array must have shape (n, 2)")
            if array.size:
                if array[:, 0].min() < 0 or array[:, 0].max() >= num_users:
                    raise ValueError("interaction user id out of range")
                if array[:, 1].min() < 0 or array[:, 1].max() >= num_items:
                    raise ValueError("interaction item id out of range")
                keys = np.unique(array[:, 0] * np.int64(num_items)
                                 + array[:, 1])
                users = keys // num_items
                items = keys % num_items
            else:
                users = np.empty(0, dtype=np.int64)
                items = np.empty(0, dtype=np.int64)
        else:
            pairs = sorted(set((int(u), int(i)) for u, i in interactions))
            if pairs:
                users = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
                items = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
            else:
                users = np.empty(0, dtype=np.int64)
                items = np.empty(0, dtype=np.int64)
            if users.size:
                if users.min() < 0 or users.max() >= num_users:
                    raise ValueError("interaction user id out of range")
                if items.min() < 0 or items.max() >= num_items:
                    raise ValueError("interaction item id out of range")
        self.users = users
        self.items = items
        # Built on first membership query: a million-user graph should
        # not pay for a million Python sets at construction time.
        self._positives: Optional[Dict[int, Set[int]]] = None

    def _positive_sets(self) -> Dict[int, Set[int]]:
        if self._positives is None:
            positives: Dict[int, Set[int]] = {}
            if self.users.size:
                uniq, starts = np.unique(self.users, return_index=True)
                bounds = np.append(starts, self.users.size)
                for k, user in enumerate(uniq.tolist()):
                    positives[user] = set(
                        self.items[bounds[k]:bounds[k + 1]].tolist())
            self._positives = positives
        return self._positives

    # ------------------------------------------------------------------
    @property
    def num_interactions(self) -> int:
        return int(self.users.size)

    def positives(self, user: int) -> Set[int]:
        """Items the user interacted with (empty set if none)."""
        return self._positive_sets().get(int(user), set())

    def has_interaction(self, user: int, item: int) -> bool:
        return int(item) in self._positive_sets().get(int(user), ())

    def users_with_interactions(self) -> List[int]:
        """Sorted list of users that have at least one interaction."""
        return sorted(self._positive_sets())

    def item_degrees(self) -> np.ndarray:
        """Number of interactions per item."""
        degrees = np.zeros(self.num_items, dtype=np.int64)
        np.add.at(degrees, self.items, 1)
        return degrees

    def user_degrees(self) -> np.ndarray:
        """Number of interactions per user."""
        degrees = np.zeros(self.num_users, dtype=np.int64)
        np.add.at(degrees, self.users, 1)
        return degrees

    def density(self) -> float:
        """Fraction of the user-item matrix that is observed."""
        return self.num_interactions / float(self.num_users * self.num_items)

    # ------------------------------------------------------------------
    def restrict_items(self, allowed_items: Sequence[int]) -> "UserItemGraph":
        """Return a copy containing only interactions with ``allowed_items``.

        Used to build the new-item splits of §V-C: the training graph is the
        original graph restricted to the training item set.  Id spaces are
        unchanged, only edges are filtered.
        """
        allowed = np.zeros(self.num_items, dtype=bool)
        allowed[np.asarray(list(allowed_items), dtype=np.int64)] = True
        mask = allowed[self.items]
        return UserItemGraph(self.num_users, self.num_items,
                             zip(self.users[mask].tolist(), self.items[mask].tolist()))

    def restrict_users(self, allowed_users: Sequence[int]) -> "UserItemGraph":
        """Return a copy containing only interactions by ``allowed_users``
        (new-user splits of §V-D)."""
        allowed = np.zeros(self.num_users, dtype=bool)
        allowed[np.asarray(list(allowed_users), dtype=np.int64)] = True
        mask = allowed[self.users]
        return UserItemGraph(self.num_users, self.num_items,
                             zip(self.users[mask].tolist(), self.items[mask].tolist()))

    def __repr__(self) -> str:
        return (f"UserItemGraph(users={self.num_users}, items={self.num_items}, "
                f"interactions={self.num_interactions})")
