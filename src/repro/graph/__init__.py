"""Graph substrates: user-item graph, KG, and the collaborative KG."""

from .ckg import (INTERACT_RELATION, CollaborativeKG, MmapCollaborativeKG,
                  load_npy)
from .knowledge import KnowledgeGraph
from .user_item import UserItemGraph

__all__ = ["UserItemGraph", "KnowledgeGraph", "CollaborativeKG",
           "MmapCollaborativeKG", "load_npy", "INTERACT_RELATION"]
