"""Graph substrates: user-item graph, KG, and the collaborative KG."""

from .ckg import INTERACT_RELATION, CollaborativeKG
from .knowledge import KnowledgeGraph
from .user_item import UserItemGraph

__all__ = ["UserItemGraph", "KnowledgeGraph", "CollaborativeKG", "INTERACT_RELATION"]
