"""Collaborative knowledge graph (CKG, §III of the paper).

Merges the user-item graph and the knowledge graph into one node/relation
space:

* node ids: users ``[0, U)``, KG entities ``[U, U + E)``, then one fresh
  node per item that has no aligned entity;
* relation ids: ``0`` is ``interact``, KG relations follow at ``1..R_k``,
  and every relation ``r`` gets a reverse twin ``r + num_base_relations``
  (the paper adds reverse relations so a user can reach an item in exactly
  ``L`` hops, §IV-B).

Edges (including reverses) are stored in CSR-by-head order so that the
layerwise expansion of Eq. (9) — "all edges whose head is in the frontier"
— is a handful of array slices.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .knowledge import KnowledgeGraph
from .user_item import UserItemGraph

INTERACT_RELATION = 0

CKG_META_NAME = "ckg_meta.json"
_CKG_ARRAYS = ("heads", "relations", "tails", "indptr", "item_nodes")


class CollaborativeKG:
    """Merged user-item + KG graph with reverse relations and CSR adjacency.

    Use :meth:`build` rather than calling the constructor directly.
    """

    def __init__(self, num_users: int, num_items: int, num_entities: int,
                 num_base_relations: int, item_nodes: np.ndarray,
                 heads: np.ndarray, relations: np.ndarray, tails: np.ndarray,
                 num_nodes: int):
        self.num_users = num_users
        self.num_items = num_items
        self.num_entities = num_entities
        #: relations before adding reverses (interact + KG relations)
        self.num_base_relations = num_base_relations
        #: total relations including reverse twins
        self.num_relations = 2 * num_base_relations
        #: item-side KG relation count (refined by :meth:`build`)
        self.num_kg_relations = num_base_relations - 1
        #: user-side relation count (refined by :meth:`build`)
        self.num_user_relations = 0
        self.num_nodes = num_nodes
        #: node id of each item (alignment target entity, or fresh node)
        self.item_nodes = item_nodes

        order = np.lexsort((tails, relations, heads))
        self.heads = heads[order]
        self.relations = relations[order]
        self.tails = tails[order]
        self.num_edges = int(self.heads.size)

        # CSR index: edge ids of out-edges of node n are
        # [indptr[n], indptr[n + 1]).
        counts = np.zeros(num_nodes, dtype=np.int64)
        np.add.at(counts, self.heads, 1)
        self.indptr = np.concatenate([[0], np.cumsum(counts)])

        self._item_node_to_item: Dict[int, int] = {
            int(node): item for item, node in enumerate(item_nodes.tolist())
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, ui_graph: UserItemGraph, kg: KnowledgeGraph,
              item_to_entity: Optional[Sequence[int]] = None,
              user_triplets: Optional[Sequence[Tuple[int, int, int]]] = None,
              num_user_relations: int = 0) -> "CollaborativeKG":
        """Assemble a CKG from interactions, a KG, and an item-entity alignment.

        Parameters
        ----------
        ui_graph:
            The user-item interactions.
        kg:
            Side-information knowledge graph.
        item_to_entity:
            ``item_to_entity[i]`` is the KG entity aligned with item ``i``
            (the matching set ``M`` of §III), or ``-1`` for unaligned items,
            which receive fresh CKG nodes only reachable through
            ``interact`` edges.  Defaults to the identity alignment
            (item ``i`` is entity ``i``), which requires
            ``kg.num_entities >= ui_graph.num_items``.
        user_triplets:
            Optional user-side KG: ``(user, relation, user)`` triplets, e.g.
            the disease-disease links of the DisGeNet experiment (§V-D).
            Relation ids live in ``[0, num_user_relations)`` and are mapped
            after the item-side KG relations.
        num_user_relations:
            Size of the user-side relation id space.
        """
        num_users = ui_graph.num_users
        num_items = ui_graph.num_items
        num_entities = kg.num_entities

        if item_to_entity is None:
            if num_entities < num_items:
                raise ValueError(
                    "identity alignment requires at least as many entities as items"
                )
            alignment = np.arange(num_items, dtype=np.int64)
        else:
            alignment = np.asarray(list(item_to_entity), dtype=np.int64)
            if alignment.shape != (num_items,):
                raise ValueError("item_to_entity must have one entry per item")
            if alignment.max(initial=-1) >= num_entities:
                raise ValueError("item_to_entity references unknown entity")

        # Assign node ids.
        entity_offset = num_users
        next_fresh = num_users + num_entities
        item_nodes = np.empty(num_items, dtype=np.int64)
        for item in range(num_items):
            entity = alignment[item]
            if entity >= 0:
                item_nodes[item] = entity_offset + entity
            else:
                item_nodes[item] = next_fresh
                next_fresh += 1
        num_nodes = next_fresh

        num_user_relations = int(num_user_relations)
        if user_triplets and num_user_relations <= 0:
            raise ValueError("user_triplets given but num_user_relations is 0")
        # interact + KG relations + user-side relations
        num_base_relations = 1 + kg.num_relations + num_user_relations

        # Forward edges: interactions then KG triplets (relations shifted by 1).
        ui_heads = ui_graph.users
        ui_tails = item_nodes[ui_graph.items]
        kg_heads = kg.heads + entity_offset
        kg_tails = kg.tails + entity_offset

        heads = np.concatenate([ui_heads, kg_heads])
        rels = np.concatenate([
            np.full(ui_heads.size, INTERACT_RELATION, dtype=np.int64),
            kg.relations + 1,
        ])
        tails = np.concatenate([ui_tails, kg_tails])

        if user_triplets:
            triples = np.asarray([(int(a), int(r), int(b)) for a, r, b in user_triplets],
                                 dtype=np.int64)
            if triples[:, [0, 2]].min() < 0 or triples[:, [0, 2]].max() >= num_users:
                raise ValueError("user triplet references unknown user")
            if triples[:, 1].min() < 0 or triples[:, 1].max() >= num_user_relations:
                raise ValueError("user triplet relation out of range")
            heads = np.concatenate([heads, triples[:, 0]])
            rels = np.concatenate([rels, triples[:, 1] + 1 + kg.num_relations])
            tails = np.concatenate([tails, triples[:, 2]])

        # Reverse twins.
        all_heads = np.concatenate([heads, tails])
        all_rels = np.concatenate([rels, rels + num_base_relations])
        all_tails = np.concatenate([tails, heads])

        ckg = cls(num_users, num_items, num_entities, num_base_relations,
                  item_nodes, all_heads, all_rels, all_tails, num_nodes)
        ckg.num_kg_relations = kg.num_relations
        ckg.num_user_relations = num_user_relations
        return ckg

    # ------------------------------------------------------------------
    # Online updates
    # ------------------------------------------------------------------
    def has_interaction(self, user: int, item: int) -> bool:
        """Whether the ``interact`` edge ``user -> item`` is present."""
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range")
        if not 0 <= item < self.num_items:
            raise ValueError(f"item {item} out of range")
        lo, hi = self.indptr[user], self.indptr[user + 1]
        mask = self.relations[lo:hi] == INTERACT_RELATION
        return bool(np.any(self.tails[lo:hi][mask] == self.item_nodes[item]))

    def add_interactions(self, pairs: Sequence[Tuple[int, int]]) -> "CollaborativeKG":
        """New CKG with ``(user, item)`` interactions appended.

        The online-serving delta: each pair contributes an ``interact``
        edge plus its reverse twin, the node space is unchanged (items
        and users already have nodes), and the edge arrays are re-sorted
        into CSR order by the constructor.  The result is
        indistinguishable from building the CKG over the union
        interaction set.  ``self`` is never mutated — callers swap in
        the returned graph, so readers of the old one stay consistent.

        Duplicate interactions (within the batch or against the existing
        graph) raise ``ValueError`` naming the offending pair.
        """
        pair_list = [(int(u), int(i)) for u, i in pairs]
        if not pair_list:
            raise ValueError("pairs must be non-empty")
        seen = set()
        for user, item in pair_list:
            if (user, item) in seen:
                raise ValueError(
                    f"duplicate interaction ({user}, {item}) in batch")
            seen.add((user, item))
            if self.has_interaction(user, item):
                raise ValueError(
                    f"interaction ({user}, {item}) already present")

        pair_array = np.asarray(pair_list, dtype=np.int64)
        users = pair_array[:, 0]
        item_tails = self.item_nodes[pair_array[:, 1]]
        interact = np.full(users.size, INTERACT_RELATION, dtype=np.int64)
        heads = np.concatenate([self.heads, users, item_tails])
        rels = np.concatenate([self.relations, interact,
                               interact + self.num_base_relations])
        tails = np.concatenate([self.tails, item_tails, users])

        updated = CollaborativeKG(
            self.num_users, self.num_items, self.num_entities,
            self.num_base_relations, self.item_nodes,
            heads, rels, tails, self.num_nodes)
        updated.num_kg_relations = self.num_kg_relations
        updated.num_user_relations = self.num_user_relations
        return updated

    # ------------------------------------------------------------------
    # Node id mapping
    # ------------------------------------------------------------------
    def user_node(self, user: int) -> int:
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range")
        return int(user)

    def item_node(self, item: int) -> int:
        if not 0 <= item < self.num_items:
            raise ValueError(f"item {item} out of range")
        return int(self.item_nodes[item])

    def entity_node(self, entity: int) -> int:
        if not 0 <= entity < self.num_entities:
            raise ValueError(f"entity {entity} out of range")
        return int(self.num_users + entity)

    def node_to_item(self, node: int) -> Optional[int]:
        """Item id whose node is ``node``, or ``None``."""
        return self._item_node_to_item.get(int(node))

    def is_user_node(self, node: int) -> bool:
        return 0 <= node < self.num_users

    def reverse_relation(self, relation: int) -> int:
        """The id of the reverse twin of ``relation`` (involution)."""
        if relation < self.num_base_relations:
            return relation + self.num_base_relations
        return relation - self.num_base_relations

    def relation_name(self, relation: int) -> str:
        """Human-readable relation label for explanations (§V-F)."""
        base = relation % self.num_base_relations
        prefix = "-" if relation >= self.num_base_relations else ""
        if base == INTERACT_RELATION:
            return f"{prefix}interact"
        return f"{prefix}rel_{base - 1}"

    # ------------------------------------------------------------------
    # Neighborhood expansion
    # ------------------------------------------------------------------
    def out_edge_ids(self, nodes: np.ndarray) -> np.ndarray:
        """Edge ids of all edges whose head is in ``nodes`` (Eq. 9).

        ``nodes`` must contain valid node ids; duplicates yield duplicate
        edge ids, so callers normally pass a uniqued frontier.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        starts = self.indptr[nodes]
        stops = self.indptr[nodes + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorized concatenation of the ranges [starts[k], stops[k]): the
        # position of each output element within its block is
        # arange(total) minus the block's offset in the output.
        block_offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        within_block = np.arange(total, dtype=np.int64) - np.repeat(block_offsets, lengths)
        return np.repeat(starts, lengths) + within_block

    def out_edges(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(heads, relations, tails)`` of edges out of ``nodes``."""
        edge_ids = self.out_edge_ids(nodes)
        return self.heads[edge_ids], self.relations[edge_ids], self.tails[edge_ids]

    def out_degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def average_degree(self) -> float:
        """Mean out-degree over all nodes (the paper's D-bar)."""
        return self.num_edges / float(self.num_nodes)

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    def normalized_adjacency(self) -> sp.csr_matrix:
        """Column-normalized adjacency ``M`` used by PPR (Eq. 13).

        ``M[i, j] = 1 / outdeg(j)`` if there is an edge ``j -> i`` in the
        CKG (reverse edges included, so the walk is effectively symmetric).
        Columns of isolated nodes are all-zero; the PPR iteration's restart
        term keeps the scores well-defined regardless.
        """
        out_degrees = np.diff(self.indptr).astype(np.float64)
        weights = 1.0 / out_degrees[self.heads]
        matrix = sp.csr_matrix(
            (weights, (self.tails, self.heads)),
            shape=(self.num_nodes, self.num_nodes),
        )
        matrix.sum_duplicates()
        return matrix

    # ------------------------------------------------------------------
    # On-disk layout (the mmap adjacency tier; see docs/storage.md)
    # ------------------------------------------------------------------
    def save_npy(self, directory: str) -> str:
        """Write the CSR arrays as raw ``.npy`` files plus a meta JSON.

        The arrays go to disk already in CSR-by-head order with the
        precomputed ``indptr``, so :func:`load_npy` can reopen them as
        read-only memory maps without re-sorting — the graph half of the
        out-of-core tier.  Returns the directory.
        """
        os.makedirs(directory, exist_ok=True)
        for name in _CKG_ARRAYS:
            np.save(os.path.join(directory, f"{name}.npy"),
                    getattr(self, name))
        meta = {
            "format": "repro-ckg-npy",
            "num_users": self.num_users, "num_items": self.num_items,
            "num_entities": self.num_entities,
            "num_base_relations": self.num_base_relations,
            "num_kg_relations": self.num_kg_relations,
            "num_user_relations": self.num_user_relations,
            "num_nodes": self.num_nodes,
        }
        tmp = os.path.join(directory, CKG_META_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=1, sort_keys=True)
        os.replace(tmp, os.path.join(directory, CKG_META_NAME))
        return directory

    def __repr__(self) -> str:
        return (f"CollaborativeKG(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"relations={self.num_relations})")


class MmapCollaborativeKG(CollaborativeKG):
    """A CKG served straight off the ``.npy`` files of :meth:`save_npy`.

    The edge arrays stay memory-mapped (read-only) instead of resident,
    and construction skips the lexsort/recount of the base constructor —
    the files already hold sorted CSR arrays, bitwise-identical to the
    in-RAM graph they were saved from, so every downstream consumer
    behaves identically.  Pickling ships only the directory path:
    spawn-started workers (and remote eval processes) reopen the maps by
    path instead of copying the arrays through the pickle stream.
    """

    def __init__(self, directory: str, mmap: bool = True):
        self.directory = directory
        self.mmap = bool(mmap)
        with open(os.path.join(directory, CKG_META_NAME),
                  encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != "repro-ckg-npy":
            raise ValueError(f"{directory} does not hold a saved CKG")
        self.num_users = int(meta["num_users"])
        self.num_items = int(meta["num_items"])
        self.num_entities = int(meta["num_entities"])
        self.num_base_relations = int(meta["num_base_relations"])
        self.num_relations = 2 * self.num_base_relations
        self.num_kg_relations = int(meta["num_kg_relations"])
        self.num_user_relations = int(meta["num_user_relations"])
        self.num_nodes = int(meta["num_nodes"])
        mode = "r" if self.mmap else None
        for name in _CKG_ARRAYS:
            path = os.path.join(directory, f"{name}.npy")
            setattr(self, name, np.load(path, mmap_mode=mode))
        # indptr and item_nodes are tiny and hot — keep them resident.
        self.indptr = np.asarray(self.indptr[:])
        self.item_nodes = np.asarray(self.item_nodes[:])
        self.num_edges = int(self.heads.size)
        self._item_node_to_item = {
            int(node): item
            for item, node in enumerate(self.item_nodes.tolist())
        }

    def __reduce__(self):
        return (load_npy, (self.directory, self.mmap))

    def __repr__(self) -> str:
        return (f"MmapCollaborativeKG(nodes={self.num_nodes}, "
                f"edges={self.num_edges}, dir={self.directory!r})")


def load_npy(directory: str, mmap: bool = True) -> MmapCollaborativeKG:
    """Reopen a CKG saved by :meth:`CollaborativeKG.save_npy`."""
    return MmapCollaborativeKG(directory, mmap=mmap)
