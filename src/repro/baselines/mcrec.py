"""MCRec (Hu et al., KDD 2018) — the meta-path + convolution method of §II-B.

"Extracts some pre-defined patterns of paths (meta-paths) as features
and utilizes a convolutional layer to encode the features into
interactions."  For each (user, item) pair and each meta-path type we
sample path instances, embed their node sequences, encode each instance
with a width-2 convolution + max pooling, pool instances per meta-path
(mean), and score with an MLP over ``[user ⊕ item ⊕ path features]``.

Meta-paths used (mirroring the paper's recommendation setting):

* ``U-I-U-I`` — collaborative;
* ``U-I-E-I`` — attribute similarity through the KG.

Like the other embedding methods, MCRec cannot handle new items (their
embeddings and path instances are missing), which is why the paper's
non-embedding line supersedes this family.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import (Embedding, Linear, Tensor, concat, gather_rows,
                        segment_max)
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender

#: nodes per path instance (all our meta-paths have 4 nodes)
PATH_LENGTH = 4


class MCRec(BPRModelRecommender):
    """MCRec with sampled meta-path instances.

    Parameters
    ----------
    instances_per_path:
        Path instances sampled per (user, item, meta-path).
    """

    name = "MCRec"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 instances_per_path: int = 3):
        super().__init__(config)
        self.instances_per_path = instances_per_path

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        num_entities = dataset.kg.num_entities
        # one embedding space: users, then items, then entities
        self._item_offset = self.num_users
        self._entity_offset = self.num_users + self.num_items
        self.node_embedding = Embedding(
            self._entity_offset + num_entities, dim, rng=self.rng)

        self.conv = Linear(2 * dim, dim, rng=self.rng)
        self.mlp = Linear(4 * dim, 16, rng=self.rng)     # u, i, 2 path feats
        self.head = Linear(16, 1, rng=self.rng)

        # Adjacency indexes for path sampling.
        self._user_items: Dict[int, np.ndarray] = {}
        for user in split.train.users_with_interactions():
            self._user_items[user] = np.fromiter(split.train.positives(user),
                                                 dtype=np.int64)
        self._item_users: Dict[int, List[int]] = {}
        for user, item in zip(split.train.users.tolist(),
                              split.train.items.tolist()):
            self._item_users.setdefault(item, []).append(user)

        alignment = dataset.item_to_entity
        item_entity = (np.asarray(alignment, dtype=np.int64)
                       if alignment is not None
                       else np.arange(self.num_items, dtype=np.int64))
        kg = dataset.kg
        self._item_attrs: Dict[int, List[int]] = {}
        self._attr_items: Dict[int, List[int]] = {}
        entity_item = {int(item_entity[i]): i for i in range(self.num_items)
                       if item_entity[i] >= 0}
        for head, tail in zip(kg.heads.tolist(), kg.tails.tolist()):
            item = entity_item.get(head)
            if item is not None and tail not in entity_item:
                self._item_attrs.setdefault(item, []).append(tail)
                self._attr_items.setdefault(tail, []).append(item)

    # ------------------------------------------------------------------
    # Path sampling (node id sequences in the unified embedding space)
    # ------------------------------------------------------------------
    def _sample_uiui(self, user: int, item: int) -> Optional[List[int]]:
        """u -> i' -> u' -> i: through a co-interacting user."""
        middle_users = self._item_users.get(item)
        if not middle_users:
            return None
        other = int(self.rng.choice(middle_users))
        other_items = self._user_items.get(other)
        if other_items is None or other_items.size == 0:
            return None
        bridge = int(self.rng.choice(other_items))
        return [user,
                self._item_offset + bridge,
                other,
                self._item_offset + item]

    def _sample_uiei(self, user: int, item: int) -> Optional[List[int]]:
        """u -> i' -> e -> i: through a shared KG attribute."""
        attrs = self._item_attrs.get(item)
        if not attrs:
            return None
        attr = int(self.rng.choice(attrs))
        siblings = self._attr_items.get(attr)
        if not siblings:
            return None
        bridge = int(self.rng.choice(siblings))
        return [user,
                self._item_offset + bridge,
                self._entity_offset + attr,
                self._item_offset + item]

    def _path_feature(self, pairs: Sequence[Tuple[int, int]],
                      sampler) -> Tensor:
        """Mean-pooled conv encoding of sampled instances per pair.

        Returns a ``(len(pairs), dim)`` tensor; pairs with no instance get
        zeros.
        """
        dim = self.config.dim
        sequences: List[List[int]] = []
        owners: List[int] = []
        for index, (user, item) in enumerate(pairs):
            for _ in range(self.instances_per_path):
                path = sampler(int(user), int(item))
                if path is not None:
                    sequences.append(path)
                    owners.append(index)
        if not sequences:
            return Tensor(np.zeros((len(pairs), dim)))

        node_ids = np.asarray(sequences, dtype=np.int64)   # (P, 4)
        flat = self.node_embedding(node_ids.ravel())       # (P*4, d)
        num_paths = node_ids.shape[0]

        # Width-2 convolution over the sequence: windows (0,1),(1,2),(2,3).
        window_rows = []
        for start in (0, 1, 2):
            left = gather_rows(flat, np.arange(num_paths) * PATH_LENGTH + start)
            right = gather_rows(flat, np.arange(num_paths) * PATH_LENGTH + start + 1)
            window_rows.append(self.conv(concat([left, right], axis=1)).relu())
        # Max over windows (per path), then mean over instances (per pair).
        stacked = concat(window_rows, axis=0)              # (3P, d)
        window_owner = np.tile(np.arange(num_paths), 3)
        per_path = segment_max(stacked, window_owner, num_paths, fill=0.0)

        counts = np.zeros(len(pairs))
        np.add.at(counts, owners, 1.0)
        from ..autodiff import segment_sum
        pooled = segment_sum(per_path, np.asarray(owners), len(pairs))
        inverse = Tensor((1.0 / np.maximum(counts, 1.0)).reshape(-1, 1))
        return pooled * inverse

    # ------------------------------------------------------------------
    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        pairs = list(zip(users.tolist(), items.tolist()))
        user_vectors = self.node_embedding(users)
        item_vectors = self.node_embedding(items + self._item_offset)
        uiui = self._path_feature(pairs, self._sample_uiui)
        uiei = self._path_feature(pairs, self._sample_uiei)
        features = concat([user_vectors, item_vectors, uiui, uiei], axis=1)
        return self.head(self.mlp(features).relu()).reshape(users.size)

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        scores = np.empty((len(users), self.num_items))
        all_items = np.arange(self.num_items)
        for row, user in enumerate(users):
            user_array = np.full(self.num_items, user, dtype=np.int64)
            scores[row] = self.pair_scores(user_array, all_items).data
        return scores
