"""PathSim-style meta-path recommender (§V-C1's second new baseline).

Extracts meta-path count features between users and items from the CKG
with sparse matrix products:

* ``U-I-U-I`` — collaborative: users who share items;
* ``U-I-E-I`` — attribute: items sharing KG entities with interacted items;
* ``U-I-I``  — direct item-item KG links (gene-gene analogue), if any;
* ``U-U-I``  — user-side KG then interaction (disease-disease analogue),
  if any.

Each count matrix is PathSim-normalized (symmetric degree smoothing) and
the final score is a learned non-negative weighted combination, fit with
BPR on the training interactions.  No node embeddings → works on new
items and new users, but it is bounded by its hand-picked paths
(Table IV: strong, yet below RED-GNN/KUCNet on KG-rich data).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..autodiff import Adam, Parameter, Tensor, bpr_loss
from ..data import Split
from ..engine import Engine, EpochStats, History, TelemetryHook
from .base import Recommender


class PathSim(Recommender):
    """Meta-path counting with learned path weights.

    Parameters
    ----------
    epochs / learning_rate:
        BPR fitting of the per-path weights (a handful of scalars).
    """

    name = "PathSim"

    def __init__(self, epochs: int = 30, learning_rate: float = 0.05,
                 batch_size: int = 512, seed: int = 0):
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self._features: Optional[np.ndarray] = None  # (P, U, I)
        self.path_names: List[str] = []
        self.weights: Optional[Parameter] = None
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------
    def fit(self, split: Split) -> "PathSim":
        matrices, names = self._path_matrices(split)
        self.path_names = names
        self._features = np.stack([self._normalize(m) for m in matrices])
        self._fit_weights(split)
        return self

    def _path_matrices(self, split: Split) -> Tuple[List[np.ndarray], List[str]]:
        dataset = split.dataset
        num_users, num_items = dataset.num_users, dataset.num_items
        kg = dataset.kg
        alignment = (np.asarray(dataset.item_to_entity, dtype=np.int64)
                     if dataset.item_to_entity is not None
                     else np.arange(num_items, dtype=np.int64))

        interactions = sp.csr_matrix(
            (np.ones(split.train.num_interactions),
             (split.train.users, split.train.items)),
            shape=(num_users, num_items))

        # Item-entity incidence (only attribute entities matter here).
        aligned_items = np.flatnonzero(alignment >= 0)
        entity_of = np.full(kg.num_entities, -1, dtype=np.int64)
        entity_of[alignment[aligned_items]] = aligned_items
        item_heads = entity_of[kg.heads]
        item_tails = entity_of[kg.tails]

        head_is_item = item_heads >= 0
        incidence = sp.csr_matrix(
            (np.ones(head_is_item.sum()),
             (item_heads[head_is_item], kg.tails[head_is_item])),
            shape=(num_items, kg.num_entities))

        matrices = [
            np.asarray((interactions @ interactions.T @ interactions).todense()),
            np.asarray((interactions @ incidence @ incidence.T).todense()),
        ]
        names = ["UIUI", "UIEI"]

        # Item-item KG edges (both endpoints aligned items).
        both_items = head_is_item & (item_tails >= 0)
        if both_items.any():
            item_item = sp.csr_matrix(
                (np.ones(both_items.sum()),
                 (item_heads[both_items], item_tails[both_items])),
                shape=(num_items, num_items))
            item_item = item_item + item_item.T
            matrices.append(np.asarray((interactions @ item_item).todense()))
            names.append("UII")

        if split.dataset.user_triplets:
            rows = [a for a, _, _ in split.dataset.user_triplets]
            cols = [b for _, _, b in split.dataset.user_triplets]
            social = sp.csr_matrix(
                (np.ones(len(rows)), (rows, cols)),
                shape=(num_users, num_users))
            social = social + social.T
            matrices.append(np.asarray((social @ interactions).todense()))
            names.append("UUI")

        return matrices, names

    @staticmethod
    def _normalize(counts: np.ndarray) -> np.ndarray:
        """PathSim-style symmetric normalization with +1 smoothing."""
        row = counts.sum(axis=1, keepdims=True)
        col = counts.sum(axis=0, keepdims=True)
        return 2.0 * counts / (row + col + 1.0)

    def _fit_weights(self, split: Split) -> None:
        """Fit non-negative path weights (via softplus) with BPR."""
        num_paths = self._features.shape[0]
        self.weights = Parameter(np.zeros(num_paths), name="path_weights")

        users = split.train.users
        items = split.train.items
        num_items = split.dataset.num_items

        def batches(epoch: int):
            # One sampled interaction batch per epoch (SGD-style).
            return [self.rng.integers(0, users.size,
                                      size=min(self.batch_size, users.size))]

        def step(batch: np.ndarray) -> Tensor:
            batch_users = users[batch]
            batch_pos = items[batch]
            batch_neg = self.rng.integers(0, num_items, size=batch.size)

            pos_feats = Tensor(self._features[:, batch_users, batch_pos].T)
            neg_feats = Tensor(self._features[:, batch_users, batch_neg].T)
            positive_weights = self.weights.softplus()
            return bpr_loss(pos_feats @ positive_weights,
                            neg_feats @ positive_weights)

        history = History()
        engine = Engine(Adam([self.weights], lr=self.learning_rate),
                        hooks=[TelemetryHook(), history])
        self.history = history.stats
        engine.fit(step, batches, self.epochs)

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        if self._features is None:
            raise RuntimeError("fit() must be called first")
        weights = np.log1p(np.exp(self.weights.data))  # softplus
        user_array = np.asarray(users)
        return np.tensordot(weights, self._features[:, user_array, :], axes=1)

    def num_parameters(self) -> int:
        return 0 if self.weights is None else self.weights.size
