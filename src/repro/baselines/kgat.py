"""KGAT (Wang et al., KDD 2019) — the KGAT row of Tables III-V.

Knowledge Graph Attention Network over the collaborative KG:

* every CKG node has a base embedding, trained jointly with a
  TransR-style KG-plausibility loss (as in the original's alternating
  scheme, the attention coefficients are computed from the *current*
  embedding values and not differentiated through);
* each layer aggregates neighbors weighted by the attention
  ``π(h, r, t) = (e_t + e_r) · tanh(e_h + e_r)`` softmax-normalized over
  each destination's incoming edges, with a bi-interaction aggregator
  ``LeakyReLU(W1 (e_h + e_N)) + LeakyReLU(W2 (e_h ⊙ e_N))``;
* the final representation concatenates all layer outputs, scored by dot
  product.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import (Embedding, Linear, Tensor, concat,
                        fused_gather_mul_segment_sum, fusion_enabled,
                        gather_rows, log_sigmoid, segment_sum)
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender


class KGAT(BPRModelRecommender):
    """KGAT with non-differentiated attention (alternating-style training).

    Parameters
    ----------
    num_layers:
        Propagation depth (final representation concatenates layers).
    kg_weight:
        Weight of the TransR-style triplet loss on CKG edges.
    """

    name = "KGAT"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_layers: int = 2, kg_weight: float = 0.3,
                 kg_batch: int = 128):
        super().__init__(config)
        self.num_layers = num_layers
        self.kg_weight = kg_weight
        self.kg_batch = kg_batch

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        self.ckg = split.dataset.build_ckg(split.train)
        dim = self.config.dim
        self.node_embedding = Embedding(self.ckg.num_nodes, dim, rng=self.rng)
        self.relation_embedding = Embedding(self.ckg.num_relations, dim, rng=self.rng)
        self.w_sum = [Linear(dim, dim, bias=False, rng=self.rng)
                      for _ in range(self.num_layers)]
        self.w_prod = [Linear(dim, dim, bias=False, rng=self.rng)
                       for _ in range(self.num_layers)]

    def _attention(self) -> np.ndarray:
        """π(h, r, t) softmax-normalized per destination (numpy only)."""
        nodes = self.node_embedding.weight.data
        relations = self.relation_embedding.weight.data
        h = nodes[self.ckg.heads]
        t = nodes[self.ckg.tails]
        r = relations[self.ckg.relations]
        logits = ((t + r) * np.tanh(h + r)).sum(axis=1)
        logits -= logits.max()
        weights = np.exp(logits)
        denom = np.zeros(self.ckg.num_nodes)
        np.add.at(denom, self.ckg.tails, weights)
        return weights / np.maximum(denom[self.ckg.tails], 1e-12)

    def _propagate(self) -> Tensor:
        attention = Tensor(self._attention().reshape(-1, 1))
        hidden = self.node_embedding.weight
        outputs: List[Tensor] = [hidden]
        for layer in range(self.num_layers):
            if fusion_enabled():
                neighborhood = fused_gather_mul_segment_sum(
                    hidden, self.ckg.heads, self.ckg.tails,
                    self.ckg.num_nodes, y=attention)
            else:
                source = gather_rows(hidden, self.ckg.heads)
                neighborhood = segment_sum(source * attention, self.ckg.tails,
                                           self.ckg.num_nodes)
            summed = _leaky_relu(self.w_sum[layer](hidden + neighborhood))
            gated = _leaky_relu(self.w_prod[layer](hidden * neighborhood))
            hidden = summed + gated
            outputs.append(hidden)
        return concat(outputs, axis=1)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        hidden = self._propagate()
        user_vectors = gather_rows(hidden, users)
        item_vectors = gather_rows(hidden, self.ckg.item_nodes[items])
        return (user_vectors * item_vectors).sum(axis=1)

    def extra_loss(self, users, pos, neg) -> Optional[Tensor]:
        """TransR-flavoured triplet plausibility loss on CKG edges."""
        if self.kg_weight <= 0:
            return None
        sample = self.rng.integers(0, self.ckg.num_edges, size=self.kg_batch)
        heads = self.ckg.heads[sample]
        relations = self.ckg.relations[sample]
        tails = self.ckg.tails[sample]
        corrupted = self.rng.integers(0, self.ckg.num_nodes, size=self.kg_batch)

        h = gather_rows(self.node_embedding.weight, heads)
        r = gather_rows(self.relation_embedding.weight, relations)
        t = gather_rows(self.node_embedding.weight, tails)
        t_bad = gather_rows(self.node_embedding.weight, corrupted)

        def plausibility(tail):
            diff = h + r - tail
            return -(diff * diff).sum(axis=1)

        ranking = -log_sigmoid(plausibility(t) - plausibility(t_bad)).mean()
        return ranking * self.kg_weight

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        hidden = self._propagate().data
        user_matrix = hidden[np.asarray(users)]
        item_matrix = hidden[self.ckg.item_nodes]
        return user_matrix @ item_matrix.T


def _leaky_relu(x: Tensor, slope: float = 0.2) -> Tensor:
    """LeakyReLU expressed with existing primitives."""
    return x.relu() - (-x).relu() * slope
