"""RippleNet (Wang et al., CIKM 2018) — the RippleNet row of Tables III-V.

Represents a user by "ripple sets": triplets reachable from the user's
interacted items in 1..H hops through the KG.  For a candidate item
``v``, each hop attends over its memory triplets (softmax of the
compatibility between ``v`` and the triplet's head+relation) and emits a
response ``o_h``; the user vector is the sum of hop responses and the
score is ``(Σ_h o_h) · v``.

Memories are sampled to a fixed size per hop at fit time, so users whose
seeds are empty (new users) fall back to zero memories — the failure the
paper reports in the new-user setting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Embedding, Tensor, gather_rows, segment_softmax, segment_sum
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender, sample_fixed_neighbors


class RippleNet(BPRModelRecommender):
    """RippleNet with additive head-relation attention.

    Parameters
    ----------
    num_hops:
        Ripple propagation depth ``H``.
    memory_size:
        Triplets kept per hop per user.
    """

    name = "RippleNet"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_hops: int = 2, memory_size: int = 16):
        super().__init__(config)
        self.num_hops = num_hops
        self.memory_size = memory_size

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.entity_embedding = Embedding(dataset.kg.num_entities, dim, rng=self.rng)
        self.relation_embedding = Embedding(dataset.kg.num_relations, dim, rng=self.rng)

        alignment = dataset.item_to_entity
        self._item_entity = (np.asarray(alignment, dtype=np.int64)
                             if alignment is not None
                             else np.arange(dataset.num_items, dtype=np.int64))
        self._triplets_by_head = self._index_kg(dataset.kg)
        self._memories = self._build_ripple_sets(split)

    def _index_kg(self, kg) -> Dict[int, np.ndarray]:
        by_head: Dict[int, List[int]] = {}
        for index, head in enumerate(kg.heads.tolist()):
            by_head.setdefault(head, []).append(index)
        return {head: np.asarray(ids, dtype=np.int64)
                for head, ids in by_head.items()}

    def _build_ripple_sets(self, split: Split) -> Dict[int, np.ndarray]:
        """Per user: array (num_hops, 3, memory_size) of (h, r, t) memories."""
        kg = split.dataset.kg
        memories: Dict[int, np.ndarray] = {}
        for user in range(split.dataset.num_users):
            seeds = [int(self._item_entity[item])
                     for item in split.train.positives(user)
                     if self._item_entity[item] >= 0]
            user_memory = np.zeros((self.num_hops, 3, self.memory_size),
                                   dtype=np.int64)
            frontier = np.asarray(seeds, dtype=np.int64)
            valid = False
            for hop in range(self.num_hops):
                triplet_ids = np.concatenate(
                    [self._triplets_by_head.get(int(e), np.empty(0, dtype=np.int64))
                     for e in frontier]) if frontier.size else np.empty(0, dtype=np.int64)
                if triplet_ids.size == 0:
                    break
                chosen = sample_fixed_neighbors(self.rng, triplet_ids,
                                                self.memory_size)
                user_memory[hop, 0] = kg.heads[chosen]
                user_memory[hop, 1] = kg.relations[chosen]
                user_memory[hop, 2] = kg.tails[chosen]
                frontier = np.unique(kg.tails[chosen])
                valid = True
            if valid:
                memories[user] = user_memory
        return memories

    # ------------------------------------------------------------------
    def _item_vectors(self, items: np.ndarray) -> Tensor:
        entities = self._item_entity[items]
        safe = np.where(entities >= 0, entities, 0)
        vectors = gather_rows(self.entity_embedding.weight, safe)
        mask = Tensor((entities >= 0).astype(np.float64).reshape(-1, 1))
        return vectors * mask

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        item_vectors = self._item_vectors(items)            # (B, d)
        user_vectors = self._user_vectors(users, item_vectors)
        return (user_vectors * item_vectors).sum(axis=1)

    def _user_vectors(self, users: np.ndarray, item_vectors: Tensor) -> Tensor:
        """Sum of hop responses, each an attention readout over memories."""
        batch = users.size
        memory = np.stack([
            self._memories.get(int(user),
                               np.zeros((self.num_hops, 3, self.memory_size),
                                        dtype=np.int64))
            for user in users
        ])                                                   # (B, H, 3, M)
        has_memory = np.asarray([int(user) in self._memories for user in users],
                                dtype=np.float64)
        segments = np.repeat(np.arange(batch), self.memory_size)

        total: Optional[Tensor] = None
        item_expanded = gather_rows(item_vectors, segments)   # (B*M, d)
        for hop in range(self.num_hops):
            heads = memory[:, hop, 0].ravel()
            relations = memory[:, hop, 1].ravel()
            tails = memory[:, hop, 2].ravel()
            h = self.entity_embedding(heads)
            r = self.relation_embedding(relations)
            t = self.entity_embedding(tails)
            compatibility = (item_expanded * (h + r)).sum(axis=1)  # (B*M,)
            attention = segment_softmax(compatibility, segments, batch)
            response = segment_sum(t * attention.reshape(-1, 1), segments, batch)
            total = response if total is None else total + response
        return total * Tensor(has_memory.reshape(-1, 1))

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        """All-item scoring with numpy (attention depends on the item)."""
        entities = self.entity_embedding.weight.data
        relations = self.relation_embedding.weight.data
        num_items = self.split.dataset.num_items
        item_entities = self._item_entity[:num_items]
        item_matrix = np.where((item_entities >= 0)[:, None],
                               entities[np.maximum(item_entities, 0)], 0.0)

        scores = np.zeros((len(users), num_items))
        for row, user in enumerate(users):
            memory = self._memories.get(int(user))
            if memory is None:
                continue
            user_repr = np.zeros((num_items, item_matrix.shape[1]))
            for hop in range(self.num_hops):
                h = entities[memory[hop, 0]]
                r = relations[memory[hop, 1]]
                t = entities[memory[hop, 2]]
                logits = item_matrix @ (h + r).T                # (I, M)
                logits -= logits.max(axis=1, keepdims=True)
                weights = np.exp(logits)
                weights /= weights.sum(axis=1, keepdims=True)
                user_repr += weights @ t
            scores[row] = (user_repr * item_matrix).sum(axis=1)
        return scores
