"""CKAN (Wang et al., SIGIR 2020) — the CKAN row of Tables III-V.

Collaborative Knowledge-aware Attentive Network: user and item sides are
encoded *separately* by propagating entity sets through the KG.

* The user's initial set is the entities of their interacted items
  (collaborative propagation); the item's initial set is its own entity.
* Each hop expands the set through sampled KG triplets and produces a
  knowledge-attention readout ``Σ softmax(f(h, r)) · t``.
* Final representations are sums over hop readouts; the score is a dot
  product.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import (Embedding, Linear, Parameter, Tensor, gather_rows,
                        segment_softmax, segment_sum)
from ..autodiff import init as ad_init
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender, sample_fixed_neighbors


class CKAN(BPRModelRecommender):
    """CKAN with fixed-size sampled triplet sets per hop.

    Parameters
    ----------
    num_hops:
        Propagation depth per side.
    set_size:
        Triplets kept per hop.
    """

    name = "CKAN"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_hops: int = 2, set_size: int = 16):
        super().__init__(config)
        self.num_hops = num_hops
        self.set_size = set_size

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.entity_embedding = Embedding(dataset.kg.num_entities, dim, rng=self.rng)
        self.relation_embedding = Embedding(dataset.kg.num_relations, dim, rng=self.rng)
        self.attn_hidden = Linear(dim, dim, rng=self.rng)
        self.attn_vector = Parameter(ad_init.xavier_uniform((dim,), rng=self.rng),
                                     name="attn_vector")

        alignment = dataset.item_to_entity
        self._item_entity = (np.asarray(alignment, dtype=np.int64)
                             if alignment is not None
                             else np.arange(dataset.num_items, dtype=np.int64))
        self._triplets_by_head = self._index_kg(dataset.kg)
        self._user_sets = {
            user: self._propagate_sets(
                dataset.kg,
                seeds=[int(self._item_entity[item])
                       for item in split.train.positives(user)
                       if self._item_entity[item] >= 0])
            for user in range(dataset.num_users)
        }
        self._item_sets = {
            item: self._propagate_sets(
                dataset.kg,
                seeds=([int(self._item_entity[item])]
                       if self._item_entity[item] >= 0 else []))
            for item in range(dataset.num_items)
        }

    def _index_kg(self, kg) -> Dict[int, np.ndarray]:
        by_head: Dict[int, List[int]] = {}
        for index, head in enumerate(kg.heads.tolist()):
            by_head.setdefault(head, []).append(index)
        return {head: np.asarray(ids, dtype=np.int64)
                for head, ids in by_head.items()}

    def _propagate_sets(self, kg, seeds: List[int]) -> Optional[np.ndarray]:
        """(num_hops, 3, set_size) sampled triplet sets, or None if empty."""
        if not seeds:
            return None
        sets = np.zeros((self.num_hops, 3, self.set_size), dtype=np.int64)
        frontier = np.asarray(seeds, dtype=np.int64)
        produced = False
        for hop in range(self.num_hops):
            triplet_ids = np.concatenate(
                [self._triplets_by_head.get(int(e), np.empty(0, dtype=np.int64))
                 for e in frontier]) if frontier.size else np.empty(0, dtype=np.int64)
            if triplet_ids.size == 0:
                if not produced:
                    # degenerate: keep the seeds as self-loop memories
                    seed_sample = sample_fixed_neighbors(self.rng, frontier,
                                                         self.set_size)
                    sets[hop, 0] = seed_sample
                    sets[hop, 1] = 0
                    sets[hop, 2] = seed_sample
                    produced = True
                break
            chosen = sample_fixed_neighbors(self.rng, triplet_ids, self.set_size)
            sets[hop, 0] = kg.heads[chosen]
            sets[hop, 1] = kg.relations[chosen]
            sets[hop, 2] = kg.tails[chosen]
            frontier = np.unique(kg.tails[chosen])
            produced = True
        return sets if produced else None

    # ------------------------------------------------------------------
    def _encode_side(self, sets_per_row: List[Optional[np.ndarray]],
                     seed_vectors: Tensor) -> Tensor:
        """Seed vector + attention readouts of each hop's triplet set."""
        batch = len(sets_per_row)
        stacked = np.stack([
            sets if sets is not None
            else np.zeros((self.num_hops, 3, self.set_size), dtype=np.int64)
            for sets in sets_per_row
        ])
        present = Tensor(np.asarray(
            [1.0 if sets is not None else 0.0 for sets in sets_per_row]
        ).reshape(-1, 1))
        segments = np.repeat(np.arange(batch), self.set_size)

        total = seed_vectors
        for hop in range(self.num_hops):
            heads = stacked[:, hop, 0].ravel()
            relations = stacked[:, hop, 1].ravel()
            tails = stacked[:, hop, 2].ravel()
            h = self.entity_embedding(heads)
            r = self.relation_embedding(relations)
            t = self.entity_embedding(tails)
            logits = (self.attn_hidden(h + r).relu() @ self.attn_vector)
            weights = segment_softmax(logits, segments, batch)
            readout = segment_sum(t * weights.reshape(-1, 1), segments, batch)
            total = total + readout * present
        return total

    def _user_vectors(self, users: np.ndarray) -> Tensor:
        sets = [self._user_sets.get(int(user)) for user in users]
        seeds = Tensor(np.zeros((users.size, self.config.dim)))
        return self._encode_side(sets, seeds)

    def _item_vectors(self, items: np.ndarray) -> Tensor:
        sets = [self._item_sets.get(int(item)) for item in items]
        entities = self._item_entity[items]
        safe = np.where(entities >= 0, entities, 0)
        seeds = gather_rows(self.entity_embedding.weight, safe)
        seeds = seeds * Tensor((entities >= 0).astype(np.float64).reshape(-1, 1))
        return self._encode_side(sets, seeds)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        return (self._user_vectors(users) * self._item_vectors(items)).sum(axis=1)

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        num_items = self.split.dataset.num_items
        user_matrix = self._user_vectors(np.asarray(users)).data
        item_matrix = self._item_vectors(np.arange(num_items)).data
        return user_matrix @ item_matrix.T
