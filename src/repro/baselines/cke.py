"""Collaborative Knowledge-base Embedding (CKE, Zhang et al. 2016).

The CKE row of Tables III-V.  Couples BPR-MF with a TransR knowledge
component: items are represented as ``q_i + e_{a(i)}`` where ``e`` are
entity embeddings trained jointly on KG triplets with the TransR
objective (projection per relation, margin-free BPR-style ranking of
true vs. corrupted triplets).  Still an embedding method end-to-end, so
new items get no signal (their rows in Tables IV-V are ~0).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autodiff import Embedding, Parameter, Tensor, gather_rows, log_sigmoid
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender


class CKE(BPRModelRecommender):
    """CKE: BPR-MF + TransR-regularized item/entity embeddings."""

    name = "CKE"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 kg_weight: float = 0.5, kg_batch: int = 128):
        super().__init__(config)
        self.kg_weight = kg_weight
        self.kg_batch = kg_batch

    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.user_embedding = Embedding(dataset.num_users, dim, rng=self.rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=self.rng)
        self.entity_embedding = Embedding(dataset.kg.num_entities, dim, rng=self.rng)
        self.relation_embedding = Embedding(dataset.kg.num_relations, dim, rng=self.rng)
        # One d×d TransR projection per relation, flattened for lookup.
        scale = 1.0 / np.sqrt(dim)
        self.relation_projection = Parameter(
            self.rng.normal(0, scale, size=(dataset.kg.num_relations, dim * dim)),
            name="relation_projection")

        self._kg = dataset.kg
        alignment = dataset.item_to_entity
        self._item_entity = (np.asarray(alignment, dtype=np.int64)
                             if alignment is not None
                             else np.arange(dataset.num_items, dtype=np.int64))

    # ------------------------------------------------------------------
    def _item_vectors(self, items: np.ndarray) -> Tensor:
        """Item representation ``q_i + e_{a(i)}`` (unaligned: ``q_i``)."""
        base = self.item_embedding(items)
        entities = self._item_entity[items]
        aligned = entities >= 0
        safe = np.where(aligned, entities, 0)
        entity_part = gather_rows(self.entity_embedding.weight, safe)
        mask = Tensor(aligned.astype(np.float64).reshape(-1, 1))
        return base + entity_part * mask

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vectors = self.user_embedding(users)
        item_vectors = self._item_vectors(items)
        return (user_vectors * item_vectors).sum(axis=1)

    def extra_loss(self, users, pos, neg) -> Optional[Tensor]:
        """TransR ranking loss on a random KG triplet batch."""
        kg = self._kg
        if kg.num_triplets == 0:
            return None
        batch = self.rng.integers(0, kg.num_triplets, size=self.kg_batch)
        heads = kg.heads[batch]
        relations = kg.relations[batch]
        tails = kg.tails[batch]
        corrupted = self.rng.integers(0, kg.num_entities, size=self.kg_batch)

        true_score = self._transr_score(heads, relations, tails)
        false_score = self._transr_score(heads, relations, corrupted)
        ranking = -log_sigmoid(true_score - false_score).mean()
        return ranking * self.kg_weight

    def _transr_score(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> Tensor:
        """``-||M_r h + r - M_r t||^2`` computed per triplet.

        The per-relation projection is applied by gathering each
        triplet's flattened ``M_r`` and contracting with a reshape-free
        elementwise trick: ``(M_r h)_d = sum_k M[d,k] h_k``.
        """
        dim = self.config.dim
        h = self.entity_embedding(heads)                         # (B, d)
        t = self.entity_embedding(tails)
        r = self.relation_embedding(relations)
        projections = gather_rows(self.relation_projection, relations)  # (B, d*d)

        diff = h - t                                             # (B, d)
        # (M_r diff)_d = sum_k M[d, k] diff_k: expand diff to (B, d*d) by
        # tiling and multiply, then segment-style reduce via reshape.
        tiled = _tile_columns(diff, dim)                         # (B, d*d)
        projected = (projections * tiled).reshape(diff.shape[0] * dim, dim).sum(axis=1)
        projected = projected.reshape(diff.shape[0], dim)        # (B, d)
        translated = projected + r
        return -(translated * translated).sum(axis=1)

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        user_matrix = self.user_embedding.weight.data[np.asarray(users)]
        items = np.arange(self.split.dataset.num_items)
        item_matrix = self._item_vectors(items).data
        return user_matrix @ item_matrix.T


def _tile_columns(x: Tensor, times: int) -> Tensor:
    """Repeat each row's d entries ``times`` times: (B, d) -> (B, times*d).

    Implemented with differentiable reshape + broadcasting-free gather:
    row-tiling via index gather keeps gradients exact.
    """
    batch, dim = x.shape
    flat = x.reshape(batch * dim)
    indices = (np.arange(batch)[:, None] * dim
               + np.tile(np.arange(dim), times)[None, :]).ravel()
    return gather_rows(flat.reshape(batch * dim, 1), indices).reshape(batch, times * dim)
