"""KGIN (Wang et al., WWW 2021) — the KGIN row of Tables III-V.

Learning Intents Behind Interactions with KG:

* **Intents**: each of ``P`` user intents is an attentive combination of
  KG relations, ``e_p = Σ_r softmax_r(w_pr) · e_r``;
* **User aggregation**: a user is the intent-gated mean of their
  interacted items' current representations, summed over layers;
* **Relational path-aware item aggregation**: items/entities aggregate
  KG neighbors gated elementwise by relation embeddings,
  ``e_i^{l+1} = mean_{(r,t)} e_r ⊙ e_t^l``.

Users have *no free embedding table* (they are derived from interactions
and intents), which is why KGIN degrades more gracefully on new items
than pure embedding baselines (Table IV) — item base embeddings remain
free parameters, so it still trails the subgraph methods.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import (Embedding, Parameter, Tensor,
                        fused_gather_mul_segment_sum, fusion_enabled,
                        gather_rows, softmax, segment_sum)
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender


class KGIN(BPRModelRecommender):
    """KGIN with full-graph relational aggregation.

    Parameters
    ----------
    num_layers:
        GNN depth over the KG / interaction graph.
    num_intents:
        Number of user intents ``P``.
    """

    name = "KGIN"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_layers: int = 2, num_intents: int = 4):
        super().__init__(config)
        self.num_layers = num_layers
        self.num_intents = num_intents

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        kg = dataset.kg
        self.entity_embedding = Embedding(kg.num_entities, dim, rng=self.rng)
        self.relation_embedding = Embedding(kg.num_relations, dim, rng=self.rng)
        self.intent_logits = Parameter(
            self.rng.normal(0, 0.1, size=(self.num_intents, kg.num_relations)),
            name="intent_logits")
        self.user_intent_logits = Parameter(
            self.rng.normal(0, 0.1, size=(dataset.num_users, self.num_intents)),
            name="user_intent_logits")

        alignment = dataset.item_to_entity
        self._item_entity = (np.asarray(alignment, dtype=np.int64)
                             if alignment is not None
                             else np.arange(dataset.num_items, dtype=np.int64))
        if (self._item_entity < 0).any():
            raise ValueError("KGIN requires every item aligned to an entity")

        # KG aggregation index (symmetrized) with mean normalization.
        self._kg_heads = np.concatenate([kg.heads, kg.tails])
        self._kg_rels = np.concatenate([kg.relations, kg.relations])
        self._kg_tails = np.concatenate([kg.tails, kg.heads])
        degree = np.zeros(kg.num_entities)
        np.add.at(degree, self._kg_heads, 1.0)
        self._kg_norm = 1.0 / np.maximum(degree, 1.0)

        # User aggregation index over training interactions.
        self._ui_users = split.train.users
        self._ui_item_entities = self._item_entity[split.train.items]
        user_degree = np.zeros(dataset.num_users)
        np.add.at(user_degree, self._ui_users, 1.0)
        self._user_norm = 1.0 / np.maximum(user_degree, 1.0)

        self._cached_final = None

    # ------------------------------------------------------------------
    def _propagate(self):
        """Full-graph propagation; returns (user_final, entity_final)."""
        num_entities = self.entity_embedding.num_embeddings
        num_users = self.user_intent_logits.shape[0]

        intent_weights = softmax(self.intent_logits, axis=1)
        intents = intent_weights @ self.relation_embedding.weight    # (P, d)
        user_gate = softmax(self.user_intent_logits, axis=1) @ intents  # (U, d)

        entity_layers: List[Tensor] = [self.entity_embedding.weight]
        user_layers: List[Tensor] = []
        norm = Tensor(self._kg_norm.reshape(-1, 1))
        user_norm = Tensor(self._user_norm.reshape(-1, 1))
        for _ in range(self.num_layers):
            current = entity_layers[-1]
            if fusion_enabled():
                # users aggregate their interacted items, gated by intents
                user_agg = fused_gather_mul_segment_sum(
                    current, self._ui_item_entities, self._ui_users,
                    num_users) * user_norm
                user_layers.append(user_agg * user_gate)
                # entities aggregate relation-gated neighbors
                entity_layers.append(fused_gather_mul_segment_sum(
                    current, self._kg_tails, self._kg_heads, num_entities,
                    y=self.relation_embedding.weight,
                    y_indices=self._kg_rels) * norm)
            else:
                item_states = gather_rows(current, self._ui_item_entities)
                user_agg = segment_sum(item_states, self._ui_users,
                                       num_users) * user_norm
                user_layers.append(user_agg * user_gate)
                messages = (gather_rows(current, self._kg_tails)
                            * gather_rows(self.relation_embedding.weight,
                                          self._kg_rels))
                entity_layers.append(segment_sum(messages, self._kg_heads,
                                                 num_entities) * norm)

        user_final = user_layers[0]
        for layer in user_layers[1:]:
            user_final = user_final + layer
        entity_final = entity_layers[0]
        for layer in entity_layers[1:]:
            entity_final = entity_final + layer
        return user_final, entity_final

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_final, entity_final = self._propagate()
        user_vectors = gather_rows(user_final, users)
        item_vectors = gather_rows(entity_final, self._item_entity[items])
        return (user_vectors * item_vectors).sum(axis=1)

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        user_final, entity_final = self._propagate()
        user_matrix = user_final.data[np.asarray(users)]
        item_matrix = entity_final.data[self._item_entity]
        return user_matrix @ item_matrix.T
