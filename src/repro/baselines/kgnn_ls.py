"""KGNN-LS (Wang et al., KDD 2019) — the KGNN-LS row of Tables III-V.

Computes *user-specific* item representations with a GNN over the KG:
edge weights are the user's affinity to the edge relation
(``s_u(r) = u · r``, softmax-normalized over each node's sampled
neighbors), aggregated for ``H`` hops; the score is ``u · h_v^H``.

The label-smoothness regularizer is implemented as the Dirichlet energy
of the user's interaction labels over the user-specific adjacency —
penalizing edges that connect an interacted item-entity to a
non-interacted one with high weight — which is the leave-one-out
label-propagation objective of the paper in its energy form.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..autodiff import (Embedding, Linear, Tensor, gather_rows,
                        segment_softmax, segment_sum)
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender, sample_fixed_neighbors


class KGNNLS(BPRModelRecommender):
    """KGNN-LS with sampled fixed-size neighborhoods.

    Parameters
    ----------
    num_hops:
        Receptive-field depth ``H``.
    neighbor_size:
        Neighbors sampled per entity.
    ls_weight:
        Strength of the label-smoothness regularizer.
    """

    name = "KGNN-LS"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_hops: int = 2, neighbor_size: int = 8,
                 ls_weight: float = 0.1):
        super().__init__(config)
        self.num_hops = num_hops
        self.neighbor_size = neighbor_size
        self.ls_weight = ls_weight

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.user_embedding = Embedding(dataset.num_users, dim, rng=self.rng)
        self.entity_embedding = Embedding(dataset.kg.num_entities, dim, rng=self.rng)
        self.relation_embedding = Embedding(dataset.kg.num_relations, dim, rng=self.rng)
        self.transforms = [Linear(dim, dim, rng=self.rng)
                           for _ in range(self.num_hops)]

        alignment = dataset.item_to_entity
        self._item_entity = (np.asarray(alignment, dtype=np.int64)
                             if alignment is not None
                             else np.arange(dataset.num_items, dtype=np.int64))
        self._neighbors, self._neighbor_relations = self._sample_adjacency(dataset.kg)
        # label table for LS: entity -> item (or -1)
        self._entity_item = np.full(dataset.kg.num_entities, -1, dtype=np.int64)
        valid = self._item_entity >= 0
        self._entity_item[self._item_entity[valid]] = np.flatnonzero(valid)

    def _sample_adjacency(self, kg):
        """Fixed-size sampled (neighbor, relation) arrays per entity.

        Isolated entities self-loop with relation 0.
        """
        by_head: Dict[int, list] = {}
        for head, relation, tail in zip(kg.heads.tolist(), kg.relations.tolist(),
                                        kg.tails.tolist()):
            by_head.setdefault(head, []).append((tail, relation))
            by_head.setdefault(tail, []).append((head, relation))
        neighbors = np.zeros((kg.num_entities, self.neighbor_size), dtype=np.int64)
        relations = np.zeros((kg.num_entities, self.neighbor_size), dtype=np.int64)
        for entity in range(kg.num_entities):
            pairs = by_head.get(entity)
            if not pairs:
                neighbors[entity] = entity
                continue
            ids = sample_fixed_neighbors(self.rng, np.arange(len(pairs)),
                                         self.neighbor_size)
            neighbors[entity] = [pairs[i][0] for i in ids]
            relations[entity] = [pairs[i][1] for i in ids]
        return neighbors, relations

    # ------------------------------------------------------------------
    def _item_representation(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """User-specific item encodings via relation-weighted aggregation.

        One simplification versus the original: instead of unrolling the
        full ``H``-hop receptive-field tree, each hop re-aggregates every
        needed entity's sampled neighborhood (same fixed samples), which
        yields the same receptive field with shared intermediate states.
        """
        entities = np.where(self._item_entity[items] >= 0,
                            self._item_entity[items], 0)
        batch = users.size
        user_vectors = self.user_embedding(users)                # (B, d)

        # Frontier: per pair, the item entity and its sampled tree flattened
        # breadth-first.  We aggregate bottom-up.
        layers = [entities]
        for _ in range(self.num_hops):
            layers.append(self._neighbors[layers[-1]].reshape(batch, -1))
        # layers[h] shape: (B, neighbor_size**h)

        hidden = self.entity_embedding(layers[-1].ravel())
        width = layers[-1].shape[1]
        for hop in range(self.num_hops - 1, -1, -1):
            parent = layers[hop]
            parent_width = parent.shape[1] if parent.ndim == 2 else 1
            parent_flat = parent.reshape(batch, parent_width)
            relations = self._neighbor_relations[parent_flat.ravel()].ravel()
            rel_vectors = self.relation_embedding(relations)     # (B*pw*ns, d)

            users_expanded = gather_rows(
                user_vectors, np.repeat(np.arange(batch), parent_width * self.neighbor_size))
            affinity = (users_expanded * rel_vectors).sum(axis=1)
            segments = np.repeat(np.arange(batch * parent_width), self.neighbor_size)
            weights = segment_softmax(affinity, segments, batch * parent_width)

            aggregated = segment_sum(hidden * weights.reshape(-1, 1),
                                     segments, batch * parent_width)
            parent_emb = self.entity_embedding(parent_flat.ravel())
            hidden = self.transforms[hop](parent_emb + aggregated).relu()
            width = parent_width
        return hidden                                            # (B, d)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        item_repr = self._item_representation(users, items)
        user_vectors = self.user_embedding(users)
        return (user_vectors * item_repr).sum(axis=1)

    def extra_loss(self, users, pos, neg) -> Optional[Tensor]:
        """Label-smoothness: Dirichlet energy of interaction labels under
        the user-specific edge weights ``sigmoid(u · r)``."""
        if self.ls_weight <= 0:
            return None
        kg = self.split.dataset.kg
        sample = self.rng.integers(0, kg.num_triplets,
                                   size=min(128, kg.num_triplets))
        heads = kg.heads[sample]
        relations = kg.relations[sample]
        tails = kg.tails[sample]

        batch_users = users[self.rng.integers(0, users.size, size=sample.size)]
        user_vectors = self.user_embedding(batch_users)
        rel_vectors = self.relation_embedding(relations)
        weights = (user_vectors * rel_vectors).sum(axis=1).sigmoid()

        labels_head = self._labels_for(batch_users, heads)
        labels_tail = self._labels_for(batch_users, tails)
        gap = Tensor((labels_head - labels_tail) ** 2)
        return (weights * gap).mean() * self.ls_weight

    def _labels_for(self, users: np.ndarray, entities: np.ndarray) -> np.ndarray:
        items = self._entity_item[entities]
        labels = np.zeros(users.size)
        for position, (user, item) in enumerate(zip(users, items)):
            if item >= 0 and self.split.train.has_interaction(int(user), int(item)):
                labels[position] = 1.0
        return labels

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        num_items = self.split.dataset.num_items
        scores = np.empty((len(users), num_items))
        all_items = np.arange(num_items)
        for row, user in enumerate(users):
            user_array = np.full(num_items, user, dtype=np.int64)
            repr_tensor = self._item_representation(user_array, all_items)
            user_vector = self.user_embedding.weight.data[user]
            scores[row] = repr_tensor.data @ user_vector
        return scores
