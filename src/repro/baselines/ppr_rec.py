"""PPR recommender (§V-C1's first non-embedding baseline).

Scores items directly by their Personalized PageRank mass from the
user's node over the CKG.  No training; works on new items (they are KG
nodes) and, when user-side KG links exist, on new users too.  Heuristic,
so it trails the learned subgraph methods (Tables IV-V).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data import Split
from ..ppr import personalized_pagerank_batch
from .base import Recommender


class PPRRecommender(Recommender):
    """Rank items by PPR score from the user's CKG node.

    Parameters
    ----------
    alpha / iterations:
        Power-iteration parameters of Eq. (13).
    """

    name = "PPR"

    def __init__(self, alpha: float = 0.15, iterations: int = 20):
        self.alpha = alpha
        self.iterations = iterations
        self.ckg = None
        self._adjacency = None

    def fit(self, split: Split) -> "PPRRecommender":
        self.ckg = split.dataset.build_ckg(split.train)
        self._adjacency = self.ckg.normalized_adjacency()
        return self

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        if self.ckg is None:
            raise RuntimeError("fit() must be called first")
        result = personalized_pagerank_batch(
            self.ckg, list(users), alpha=self.alpha,
            iterations=self.iterations, adjacency=self._adjacency)
        return result.scores[:, self.ckg.item_nodes]
