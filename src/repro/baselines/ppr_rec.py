"""PPR recommender (§V-C1's first non-embedding baseline).

Scores items directly by their Personalized PageRank mass from the
user's node over the CKG.  No training; works on new items (they are KG
nodes) and, when user-side KG links exist, on new users too.  Heuristic,
so it trails the learned subgraph methods (Tables IV-V).

Two solver backends are available (see ``docs/performance.md``): the
dense power iteration of Eq. 13 (``method="power"``) and sparse forward
push with top-M storage (``method="push"``), which keeps full-catalog
scoring sublinear in graph size per user.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data import Split
from ..ppr import forward_push_batch, personalized_pagerank_batch
from .base import Recommender


class PPRRecommender(Recommender):
    """Rank items by PPR score from the user's CKG node.

    Parameters
    ----------
    alpha / iterations:
        Power-iteration parameters of Eq. (13).
    method:
        ``"power"`` (dense, default) or ``"push"`` (sparse forward push).
    epsilon / top_m:
        Forward-push residual threshold and per-user entry budget
        (``method="push"`` only).  ``top_m`` should comfortably exceed
        the item catalog a user can reach, or truncated items score 0.
    """

    name = "PPR"

    def __init__(self, alpha: float = 0.15, iterations: int = 20,
                 method: str = "power", epsilon: float = 1e-4,
                 top_m: int = 1024):
        if method not in ("power", "push"):
            raise ValueError(f"unknown method {method!r}")
        self.alpha = alpha
        self.iterations = iterations
        self.method = method
        self.epsilon = epsilon
        self.top_m = top_m
        self.ckg = None
        self._adjacency = None

    def fit(self, split: Split) -> "PPRRecommender":
        self.ckg = split.dataset.build_ckg(split.train)
        if self.method == "power":
            self._adjacency = self.ckg.normalized_adjacency()
        return self

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        if self.ckg is None:
            raise RuntimeError("fit() must be called first")
        if self.method == "push":
            scores = forward_push_batch(
                self.ckg, list(users), alpha=self.alpha,
                epsilon=self.epsilon, top_m=self.top_m)
            return scores.dense_columns(self.ckg.item_nodes)
        result = personalized_pagerank_batch(
            self.ckg, list(users), alpha=self.alpha,
            iterations=self.iterations, adjacency=self._adjacency)
        return result.scores[:, self.ckg.item_nodes]
