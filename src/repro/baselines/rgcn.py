"""R-GCN (Schlichtkrull et al., ESWC 2018) — the R-GCN row of Tables III-V.

Relational GCN over the *collaborative* KG: every node (user, item,
entity) has a base embedding, and each layer aggregates neighbors with
per-relation transforms using basis decomposition
``W_r = Σ_b a_rb · V_b`` to bound the parameter count, with symmetric
degree normalization and a self-loop transform.

Originally built for KG completion, not recommendation — the paper notes
it needs the most training time and underperforms (Table III) because
the ``interact`` relation competes with every KG relation for capacity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import (Embedding, Linear, Parameter, Tensor,
                        fused_rgcn_messages, fusion_enabled, gather_rows,
                        segment_sum)
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender


class RGCN(BPRModelRecommender):
    """R-GCN over the CKG with basis-decomposed relation transforms.

    Parameters
    ----------
    num_layers:
        Propagation depth.
    num_bases:
        Basis count ``B`` of the relation-transform decomposition.
    """

    name = "R-GCN"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_layers: int = 2, num_bases: int = 4):
        super().__init__(config)
        self.num_layers = num_layers
        self.num_bases = num_bases

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        self.ckg = split.dataset.build_ckg(split.train)
        dim = self.config.dim
        self.node_embedding = Embedding(self.ckg.num_nodes, dim, rng=self.rng)
        self.bases = [
            [Linear(dim, dim, bias=False, rng=self.rng)
             for _ in range(self.num_bases)]
            for _ in range(self.num_layers)
        ]
        self.basis_coeffs = [
            Parameter(self.rng.normal(0, 0.3,
                                      size=(self.ckg.num_relations, self.num_bases)),
                      name=f"basis_coeffs_{layer}")
            for layer in range(self.num_layers)
        ]
        self.self_loops = [Linear(dim, dim, bias=False, rng=self.rng)
                           for _ in range(self.num_layers)]

        degree = np.zeros(self.ckg.num_nodes)
        np.add.at(degree, self.ckg.tails, 1.0)
        self._norm = 1.0 / np.maximum(degree, 1.0)

    def _propagate(self) -> Tensor:
        hidden = self.node_embedding.weight
        norm = Tensor(self._norm.reshape(-1, 1))
        for layer in range(self.num_layers):
            if fusion_enabled():
                aggregated = fused_rgcn_messages(
                    hidden, self.ckg.heads, self.ckg.relations,
                    self.ckg.tails, self.ckg.num_nodes,
                    [basis.weight for basis in self.bases[layer]],
                    self.basis_coeffs[layer]) * norm
            else:
                source = gather_rows(hidden, self.ckg.heads)   # (E, d)
                coeffs = gather_rows(self.basis_coeffs[layer],
                                     self.ckg.relations)
                messages = None
                for basis_index, basis in enumerate(self.bases[layer]):
                    term = basis(source) * _column(coeffs, basis_index)
                    messages = term if messages is None else messages + term
                aggregated = segment_sum(messages, self.ckg.tails,
                                         self.ckg.num_nodes) * norm
            hidden = (aggregated + self.self_loops[layer](hidden)).relu()
        return hidden

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        hidden = self._propagate()
        user_vectors = gather_rows(hidden, users)
        item_vectors = gather_rows(hidden, self.ckg.item_nodes[items])
        return (user_vectors * item_vectors).sum(axis=1)

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        hidden = self._propagate().data
        user_matrix = hidden[np.asarray(users)]
        item_matrix = hidden[self.ckg.item_nodes]
        return user_matrix @ item_matrix.T


def _column(x: Tensor, index: int) -> Tensor:
    """Differentiable selection of one column as an (N, 1) tensor."""
    num_rows, num_cols = x.shape
    flat = x.reshape(num_rows * num_cols)
    rows = np.arange(num_rows) * num_cols + index
    return gather_rows(flat.reshape(num_rows * num_cols, 1), rows)
