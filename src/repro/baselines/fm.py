"""Factorization Machines and Neural FM (the FM/NFM rows of Table III).

Both consume, for a (user, item) pair, a sparse feature vector holding
the user id, the item id, and the item's KG attribute entities as
context features (the "contextual information" §II-A credits FM with).
The second-order term is the classic factorized pairwise interaction

    0.5 * sum_d [ (Σ_f v_fd)^2 - Σ_f v_fd^2 ],

which NFM replaces with a bi-interaction *vector* fed through an MLP.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autodiff import Linear, Parameter, Tensor, gather_rows, segment_sum
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender


class FM(BPRModelRecommender):
    """Factorization Machine (Rendle et al., 2011) with KG context features.

    Feature id space: users, then items, then KG entities, then one dummy
    padding feature (zero contribution target) for items with few
    attributes.
    """

    name = "FM"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 context_size: int = 4):
        super().__init__(config)
        self.context_size = context_size

    # ------------------------------------------------------------------
    def build(self, split: Split) -> None:
        dataset = split.dataset
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        num_entities = dataset.kg.num_entities
        self._item_offset = self.num_users
        self._entity_offset = self.num_users + self.num_items
        self._dummy = self._entity_offset + num_entities
        num_features = self._dummy + 1

        scale = 1.0 / np.sqrt(self.config.dim)
        self.feature_embedding = Parameter(
            self.rng.normal(0, scale, size=(num_features, self.config.dim)),
            name="feature_embedding")
        self.feature_weight = Parameter(np.zeros(num_features),
                                        name="feature_weight")
        self.global_bias = Parameter(np.zeros(1), name="global_bias")
        self._item_context = self._build_item_context(dataset)

    def _build_item_context(self, dataset) -> np.ndarray:
        """Fixed-width context features per item: its KG attribute entities
        (head-side triplets of the aligned entity), dummy-padded."""
        kg = dataset.kg
        alignment = dataset.item_to_entity
        by_head: dict = {}
        for head, tail in zip(kg.heads.tolist(), kg.tails.tolist()):
            by_head.setdefault(head, []).append(tail)
        context = np.full((self.num_items, self.context_size), self._dummy,
                          dtype=np.int64)
        for item in range(self.num_items):
            entity = int(alignment[item]) if alignment is not None else item
            if entity < 0:
                continue
            attrs = by_head.get(entity, [])
            chosen = attrs[:self.context_size]
            context[item, :len(chosen)] = np.asarray(chosen) + self._entity_offset
        return context

    def _pair_features(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """(B, 2 + context_size) feature id matrix for the pairs."""
        return np.column_stack([
            users,
            items + self._item_offset,
            self._item_context[items],
        ])

    # ------------------------------------------------------------------
    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        features = self._pair_features(users, items)
        batch, width = features.shape
        segments = np.repeat(np.arange(batch), width)
        flat = features.ravel()

        vectors = gather_rows(self.feature_embedding, flat)      # (B*F, d)
        sum_vec = segment_sum(vectors, segments, batch)          # (B, d)
        sum_sq = segment_sum(vectors * vectors, segments, batch)
        pairwise = ((sum_vec * sum_vec - sum_sq) * 0.5).sum(axis=1)

        weights = gather_rows(self.feature_weight, flat)         # (B*F,)
        linear = segment_sum(weights, segments, batch)
        return pairwise + linear + self.global_bias

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        """Closed-form all-item scoring from precomputable item sums."""
        embeddings = self.feature_embedding.data
        weights = self.feature_weight.data
        item_features = np.column_stack([
            np.arange(self.num_items) + self._item_offset,
            self._item_context,
        ])
        item_sum = embeddings[item_features].sum(axis=1)          # (I, d)
        item_sq = (embeddings[item_features] ** 2).sum(axis=1)    # (I, d)
        item_linear = weights[item_features].sum(axis=1)          # (I,)
        item_const = 0.5 * (item_sum**2 - item_sq).sum(axis=1) + item_linear

        scores = np.empty((len(users), self.num_items))
        for row, user in enumerate(users):
            user_vec = embeddings[user]
            scores[row] = (item_sum @ user_vec + item_const
                           + weights[user] + self.global_bias.data[0])
        return scores


class NFM(FM):
    """Neural Factorization Machine (He & Chua, 2017).

    Replaces FM's scalar pairwise term with the bi-interaction vector
    ``0.5[(Σv)^2 - Σv^2]`` passed through a one-hidden-layer MLP.
    """

    name = "NFM"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 context_size: int = 4, hidden_dim: int = 32):
        super().__init__(config, context_size=context_size)
        self.hidden_dim = hidden_dim

    def build(self, split: Split) -> None:
        super().build(split)
        self.mlp_hidden = Linear(self.config.dim, self.hidden_dim, rng=self.rng)
        self.mlp_out = Parameter(
            self.rng.normal(0, 1.0 / np.sqrt(self.hidden_dim),
                            size=self.hidden_dim),
            name="mlp_out")

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        features = self._pair_features(users, items)
        batch, width = features.shape
        segments = np.repeat(np.arange(batch), width)
        flat = features.ravel()

        vectors = gather_rows(self.feature_embedding, flat)
        sum_vec = segment_sum(vectors, segments, batch)
        sum_sq = segment_sum(vectors * vectors, segments, batch)
        bi_interaction = (sum_vec * sum_vec - sum_sq) * 0.5      # (B, d)
        deep = self.mlp_hidden(bi_interaction).relu() @ self.mlp_out

        weights = gather_rows(self.feature_weight, flat)
        linear = segment_sum(weights, segments, batch)
        return deep + linear + self.global_bias

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        embeddings = self.feature_embedding.data
        weights = self.feature_weight.data
        item_features = np.column_stack([
            np.arange(self.num_items) + self._item_offset,
            self._item_context,
        ])
        item_sum = embeddings[item_features].sum(axis=1)
        item_sq = (embeddings[item_features] ** 2).sum(axis=1)
        item_linear = weights[item_features].sum(axis=1)

        w_hidden = self.mlp_hidden.weight.data
        b_hidden = self.mlp_hidden.bias.data
        out = self.mlp_out.data

        scores = np.empty((len(users), self.num_items))
        for row, user in enumerate(users):
            user_vec = embeddings[user]
            total = user_vec + item_sum                            # (I, d)
            bi = 0.5 * (total**2 - (user_vec**2 + item_sq))        # (I, d)
            hidden = np.maximum(bi @ w_hidden.T + b_hidden, 0.0)
            scores[row] = (hidden @ out + item_linear + weights[user]
                           + self.global_bias.data[0])
        return scores
