"""Matrix Factorization trained with BPR (the MF row of Tables III-V).

Pure collaborative filtering: ``ŷ_ui = p_u · q_i`` with user/item
embedding tables.  Uses only the interaction graph — the KG is ignored —
so it collapses on new items/users (their embeddings receive no
gradient), exactly the failure mode Tables IV-V report.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autodiff import Embedding, Tensor, gather_rows
from ..data import Split
from .base import BaselineConfig, BPRModelRecommender


class MF(BPRModelRecommender):
    """BPR-MF (Rendle et al., 2009)."""

    name = "MF"

    def __init__(self, config: Optional[BaselineConfig] = None):
        super().__init__(config)
        self.user_embedding: Optional[Embedding] = None
        self.item_embedding: Optional[Embedding] = None

    def build(self, split: Split) -> None:
        self.user_embedding = Embedding(split.dataset.num_users,
                                        self.config.dim, rng=self.rng)
        self.item_embedding = Embedding(split.dataset.num_items,
                                        self.config.dim, rng=self.rng)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vectors = self.user_embedding(users)
        item_vectors = self.item_embedding(items)
        return (user_vectors * item_vectors).sum(axis=1)

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        user_matrix = self.user_embedding.weight.data[np.asarray(users)]
        return user_matrix @ self.item_embedding.weight.data.T
