"""Shared infrastructure for baseline recommenders.

Every baseline implements the :class:`Recommender` interface (``fit`` on
a :class:`~repro.data.Split`, then ``score_users``).  Models trained with
BPR share the mini-batch loop in :class:`BPRModelRecommender`: subclasses
only provide a differentiable ``pair_scores(users, items)`` and a full
``score_users``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import Adam, Module, Tensor, bpr_loss
from ..data import Split
from ..engine import (BestCheckpoint, EarlyStopping, Engine, EpochCallback,
                      EpochStats, History, ProgressLogger, TelemetryHook)
from ..health import HealthConfig, HealthHook, HealthMonitor


@dataclass
class BaselineConfig:
    """Common hyper-parameters for learned baselines."""

    dim: int = 32
    epochs: int = 15
    batch_size: int = 256
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    seed: int = 0
    verbose: bool = False
    #: stop when the epoch loss plateaus for this many epochs (``None``
    #: disables) — the same §V-A3 rule KUCNet applies, via the shared
    #: :class:`repro.engine.EarlyStopping` hook
    patience: Optional[int] = None
    #: minimum relative loss improvement that resets the patience counter
    min_improvement: float = 1e-3
    #: restore the best-loss epoch's parameters after training
    #: (:class:`repro.engine.BestCheckpoint`)
    restore_best: bool = False
    #: training-health monitoring (:mod:`repro.health`): ``None`` is off;
    #: ``"warn"``/``"raise"`` attach a :class:`~repro.health.HealthHook`
    #: with that escalation policy (monitor lands on
    #: ``self.health_monitor`` after ``fit``)
    health_policy: Optional[str] = None


class Recommender(ABC):
    """Interface shared by every method in the evaluation tables."""

    name: str = "recommender"

    @abstractmethod
    def fit(self, split: Split) -> "Recommender":
        """Train (or precompute) on the split's training interactions."""

    @abstractmethod
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        """Scores over all items, shape ``(len(users), num_items)``."""

    def num_parameters(self) -> int:
        """Trainable parameter count (0 for heuristic methods)."""
        return 0


class BPRModelRecommender(Recommender, Module, ABC):
    """Base class for embedding models trained with BPR (Eq. 14).

    The fit loop samples ``(u, i+, i-)`` triplets uniformly over training
    interactions, scores them with the subclass's :meth:`pair_scores`,
    and optimizes with Adam.  ``self.train_seconds`` and
    ``self.epoch_history`` feed the efficiency analyses (Fig. 4).
    """

    def __init__(self, config: Optional[BaselineConfig] = None):
        Module.__init__(self)
        self.config = config or BaselineConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.split: Optional[Split] = None
        self.optimizer: Optional[Adam] = None
        #: populated when ``config.health_policy`` is set
        self.health_monitor: Optional[HealthMonitor] = None
        self.train_seconds = 0.0
        self.epoch_history: List[EpochStats] = []

    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, split: Split) -> None:
        """Allocate parameters once the data dimensions are known."""

    @abstractmethod
    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for aligned (user, item) id arrays."""

    def extra_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Optional[Tensor]:
        """Optional auxiliary loss term (e.g. CKE's TransR objective)."""
        return None

    # ------------------------------------------------------------------
    def fit(self, split: Split, epoch_callback=None) -> "BPRModelRecommender":
        """Train with BPR.

        ``epoch_callback(epoch, model, cumulative_seconds)`` fires after
        each epoch (used by the Fig. 4 learning-curve bench).
        """
        self.split = split
        self.build(split)
        self.optimizer = Adam(self.parameters(), lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)
        users = split.train.users
        items = split.train.items
        num_interactions = users.size
        if num_interactions == 0:
            raise ValueError("training split has no interactions")
        num_items = split.dataset.num_items

        def batches(epoch: int):
            order = self.rng.permutation(num_interactions)
            return [order[start:start + self.config.batch_size]
                    for start in range(0, num_interactions,
                                       self.config.batch_size)]

        def step(batch: np.ndarray) -> Tensor:
            batch_users = users[batch]
            batch_pos = items[batch]
            batch_neg = self._sample_negatives(split, batch_users, num_items)
            pos_scores = self.pair_scores(batch_users, batch_pos)
            neg_scores = self.pair_scores(batch_users, batch_neg)
            loss = bpr_loss(pos_scores, neg_scores)
            extra = self.extra_loss(batch_users, batch_pos, batch_neg)
            if extra is not None:
                loss = loss + extra
            return loss

        history = History()
        hooks = [TelemetryHook(), history]
        if self.config.health_policy is not None:
            self.health_monitor = HealthMonitor(
                HealthConfig(policy=self.config.health_policy))
            hooks.append(HealthHook(self.health_monitor, module=self))
        if self.config.verbose:
            hooks.append(ProgressLogger(prefix=self.name))
        if epoch_callback is not None:
            def adapter(stats: EpochStats) -> None:
                # The legacy callback contract: model in eval mode, the
                # (epoch, model, cumulative_seconds) signature.
                self.eval()
                epoch_callback(stats.epoch, self, stats.cumulative_seconds)
                self.train()

            hooks.append(EpochCallback(adapter))
        if self.config.patience is not None:
            hooks.append(EarlyStopping(patience=self.config.patience,
                                       min_improvement=self.config.min_improvement))
        if self.config.restore_best:
            hooks.append(BestCheckpoint(self))

        engine = Engine(self.optimizer, hooks=hooks)
        self.epoch_history = history.stats
        self.train()
        engine.fit(step, batches, self.config.epochs)
        self.train_seconds = engine.cumulative_seconds
        self.eval()
        return self

    def _sample_negatives(self, split: Split, batch_users: np.ndarray,
                          num_items: int) -> np.ndarray:
        negatives = self.rng.integers(0, num_items, size=batch_users.size)
        for position, user in enumerate(batch_users):
            while split.train.has_interaction(int(user), int(negatives[position])):
                negatives[position] = self.rng.integers(0, num_items)
        return negatives

    def num_parameters(self) -> int:
        return Module.num_parameters(self)


def sample_fixed_neighbors(rng: np.random.Generator, candidates: np.ndarray,
                           size: int) -> np.ndarray:
    """Sample exactly ``size`` entries (with replacement if needed).

    Used by the GNN baselines that work on fixed-size sampled
    neighborhoods (RippleNet, KGNN-LS, CKAN).  Empty candidate sets are
    the caller's responsibility.
    """
    if candidates.size == 0:
        raise ValueError("cannot sample from empty candidate set")
    replace = candidates.size < size
    return rng.choice(candidates, size=size, replace=replace)
