"""Extension baselines from the paper's related work (§II).

These are not rows of Tables III-V but are implemented for completeness
and for ablation-style comparisons on the same substrate:

* :class:`LightGCN` — He et al., SIGIR 2020 [22]: embedding propagation
  over the user-item bipartite graph with no transforms or
  nonlinearities; final representation is the mean over layers.
* :class:`NCF` — He et al., WWW 2017 [6]: neural collaborative
  filtering; an MLP over the concatenation of user/item embeddings plus
  a GMF (elementwise product) branch.
* :class:`TransERec` — Bordes et al., 2013 [32] applied to
  recommendation: TransE embeddings trained on the *collaborative* KG,
  scoring items by the plausibility of the ``(user, interact, item)``
  triplet, ``-||u + r_interact - i||``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import (Embedding, Linear, Tensor, concat, gather_rows,
                        log_sigmoid, segment_sum)
from ..data import Split
from ..graph import INTERACT_RELATION
from .base import BaselineConfig, BPRModelRecommender


class LightGCN(BPRModelRecommender):
    """LightGCN: parameter-free propagation of user/item embeddings.

    ``e^{l+1} = D^{-1/2} A D^{-1/2} e^l`` over the bipartite interaction
    graph; the final embedding is the mean of layers ``0..L``.
    """

    name = "LightGCN"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 num_layers: int = 2):
        super().__init__(config)
        self.num_layers = num_layers

    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self.embedding = Embedding(self.num_users + self.num_items, dim,
                                   rng=self.rng)

        users = split.train.users
        items = split.train.items + self.num_users
        # Symmetric normalized bipartite adjacency as an edge list.
        self._src = np.concatenate([users, items])
        self._dst = np.concatenate([items, users])
        degree = np.zeros(self.num_users + self.num_items)
        np.add.at(degree, self._src, 1.0)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1.0))
        self._edge_norm = inv_sqrt[self._src] * inv_sqrt[self._dst]

    def _propagate(self) -> Tensor:
        num_nodes = self.num_users + self.num_items
        norm = Tensor(self._edge_norm.reshape(-1, 1))
        layers: List[Tensor] = [self.embedding.weight]
        for _ in range(self.num_layers):
            messages = gather_rows(layers[-1], self._src) * norm
            layers.append(segment_sum(messages, self._dst, num_nodes))
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total * (1.0 / (self.num_layers + 1))

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        hidden = self._propagate()
        user_vectors = gather_rows(hidden, users)
        item_vectors = gather_rows(hidden, items + self.num_users)
        return (user_vectors * item_vectors).sum(axis=1)

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        hidden = self._propagate().data
        return hidden[np.asarray(users)] @ hidden[self.num_users:].T


class NCF(BPRModelRecommender):
    """Neural Collaborative Filtering: GMF branch + MLP branch."""

    name = "NCF"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 hidden_dim: int = 32):
        super().__init__(config)
        self.hidden_dim = hidden_dim

    def build(self, split: Split) -> None:
        dataset = split.dataset
        dim = self.config.dim
        self.user_embedding = Embedding(dataset.num_users, dim, rng=self.rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=self.rng)
        self.mlp_hidden = Linear(2 * dim, self.hidden_dim, rng=self.rng)
        self.head = Linear(self.hidden_dim + dim, 1, rng=self.rng)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vectors = self.user_embedding(users)
        item_vectors = self.item_embedding(items)
        gmf = user_vectors * item_vectors
        mlp = self.mlp_hidden(concat([user_vectors, item_vectors],
                                     axis=1)).relu()
        return self.head(concat([gmf, mlp], axis=1)).reshape(users.size)

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        num_items = self.item_embedding.num_embeddings
        scores = np.empty((len(users), num_items))
        all_items = np.arange(num_items)
        for row, user in enumerate(users):
            user_array = np.full(num_items, user, dtype=np.int64)
            scores[row] = self.pair_scores(user_array, all_items).data
        return scores


class TransERec(BPRModelRecommender):
    """TransE over the collaborative KG, recommending by triplet score.

    Trains ``-||h + r - t||`` ranking on *all* CKG edges (interactions
    included); recommendation scores are the plausibility of
    ``(user, interact, item)``.  A pure link-prediction view of
    recommendation (§II-C's "earlier methods").
    """

    name = "TransE"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 kg_batch: int = 256):
        super().__init__(config)
        self.kg_batch = kg_batch

    def build(self, split: Split) -> None:
        self.ckg = split.dataset.build_ckg(split.train)
        dim = self.config.dim
        self.node_embedding = Embedding(self.ckg.num_nodes, dim, rng=self.rng)
        self.relation_embedding = Embedding(self.ckg.num_relations, dim,
                                            rng=self.rng)

    def _plausibility(self, heads: Tensor, relation: Tensor, tails: Tensor) -> Tensor:
        diff = heads + relation - tails
        return -(diff * diff).sum(axis=1)

    def pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        h = gather_rows(self.node_embedding.weight, users)
        t = gather_rows(self.node_embedding.weight, self.ckg.item_nodes[items])
        r = gather_rows(self.relation_embedding.weight,
                        np.full(users.size, INTERACT_RELATION, dtype=np.int64))
        return self._plausibility(h, r, t)

    def extra_loss(self, users, pos, neg) -> Optional[Tensor]:
        """TransE ranking on random CKG edges (KG structure learning)."""
        sample = self.rng.integers(0, self.ckg.num_edges, size=self.kg_batch)
        heads = gather_rows(self.node_embedding.weight, self.ckg.heads[sample])
        tails = gather_rows(self.node_embedding.weight, self.ckg.tails[sample])
        relations = gather_rows(self.relation_embedding.weight,
                                self.ckg.relations[sample])
        corrupted = gather_rows(
            self.node_embedding.weight,
            self.rng.integers(0, self.ckg.num_nodes, size=self.kg_batch))
        true_score = self._plausibility(heads, relations, tails)
        false_score = self._plausibility(heads, relations, corrupted)
        return -log_sigmoid(true_score - false_score).mean() * 0.5

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        nodes = self.node_embedding.weight.data
        relation = self.relation_embedding.weight.data[INTERACT_RELATION]
        item_matrix = nodes[self.ckg.item_nodes]
        scores = np.empty((len(users), item_matrix.shape[0]))
        for row, user in enumerate(users):
            diff = nodes[user] + relation - item_matrix
            scores[row] = -(diff**2).sum(axis=1)
        return scores
