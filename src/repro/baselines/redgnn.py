"""RED-GNN (Zhang & Yao, WWW 2022) — the REDGNN row of Tables IV-V.

A subgraph GNN designed for KG completion, applied to recommendation by
treating ``(u, interact, ?)`` as the query: representations propagate
from the user through the relational digraph for ``L`` layers with
query-conditioned edge attention, and candidates are scored from their
relative representation — no node embeddings, hence inductive on new
items and users.

Relationship to KUCNet (per the paper's Table IX discussion): RED-GNN
propagates on the *full* (or uniformly capped) neighborhood without
user-personalized PPR pruning, and its attention conditions on the query
relation, which is constant for recommendation and therefore folds into
the attention bias.  We reuse the user-centric propagation machinery
with uniform edge capping, which reproduces RED-GNN's behaviour in this
setting (the paper measures it within ~1% of KUCNet-random).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core import KUCNetConfig, KUCNetRecommender, TrainConfig
from ..data import Split
from .base import Recommender


class REDGNN(Recommender):
    """RED-GNN adapted to recommendation (see module docstring).

    Parameters
    ----------
    dim / depth / epochs / edge_cap:
        Model width, propagation depth ``L``, training epochs, and the
        uniform per-node edge cap that bounds the relational digraph.
    """

    name = "REDGNN"

    def __init__(self, dim: int = 32, depth: int = 3, epochs: int = 8,
                 edge_cap: int = 30, seed: int = 0,
                 learning_rate: float = 5e-3):
        self._inner = KUCNetRecommender(
            KUCNetConfig(dim=dim, depth=depth, activation="relu", seed=seed),
            TrainConfig(epochs=epochs, k=edge_cap, sampler="random",
                        learning_rate=learning_rate, seed=seed),
        )

    def fit(self, split: Split) -> "REDGNN":
        self._inner.fit(split)
        return self

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        return self._inner.score_users(users)

    def num_parameters(self) -> int:
        return self._inner.num_parameters()

    @property
    def train_seconds(self) -> float:
        return (self._inner.history[-1].cumulative_seconds
                if self._inner.history else 0.0)

    @property
    def epoch_history(self):
        """Canonical :class:`~repro.engine.EpochStats` records (shared
        format with every other trainer since the engine migration)."""
        return list(self._inner.history)
