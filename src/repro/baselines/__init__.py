"""Baseline recommenders: the 13 comparison methods of Tables III-V.

Grouped as in the paper:

* CF-based: :class:`MF`, :class:`FM`, :class:`NFM`;
* KG-based: :class:`RippleNet`, :class:`KGNNLS`, :class:`CKAN`,
  :class:`KGIN`;
* CKG-based: :class:`CKE`, :class:`RGCN`, :class:`KGAT`;
* non-embedding (new-item capable): :class:`PPRRecommender`,
  :class:`PathSim`, :class:`REDGNN`.
"""

from .base import BaselineConfig, BPRModelRecommender, Recommender
from .cke import CKE
from .extra import NCF, LightGCN, TransERec
from .mcrec import MCRec
from .ckan import CKAN
from .fm import FM, NFM
from .kgat import KGAT
from .kgin import KGIN
from .kgnn_ls import KGNNLS
from .mf import MF
from .pathsim import PathSim
from .ppr_rec import PPRRecommender
from .redgnn import REDGNN
from .rgcn import RGCN
from .ripplenet import RippleNet

#: All baselines keyed by their table row label.
BASELINES = {
    "MF": MF,
    "FM": FM,
    "NFM": NFM,
    "RippleNet": RippleNet,
    "KGNN-LS": KGNNLS,
    "CKAN": CKAN,
    "KGIN": KGIN,
    "CKE": CKE,
    "R-GCN": RGCN,
    "KGAT": KGAT,
    "PPR": PPRRecommender,
    "PathSim": PathSim,
    "REDGNN": REDGNN,
}

#: extension methods from the paper's related work (not table rows)
EXTRA_BASELINES = {
    "LightGCN": LightGCN,
    "NCF": NCF,
    "TransE": TransERec,
    "MCRec": MCRec,
}

__all__ = [
    "Recommender", "BPRModelRecommender", "BaselineConfig", "BASELINES",
    "EXTRA_BASELINES", "LightGCN", "NCF", "TransERec", "MCRec",
    "MF", "FM", "NFM", "RippleNet", "KGNNLS", "CKAN", "KGIN",
    "CKE", "RGCN", "KGAT", "PPRRecommender", "PathSim", "REDGNN",
]
