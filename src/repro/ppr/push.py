"""Forward-push approximate PPR with sparse top-M score storage.

The power iteration of :mod:`repro.ppr.pagerank` materializes a dense
``(num_users, num_nodes)`` score matrix — O(U x N) memory and O(E x U)
compute per sweep — even though the Algorithm-1 pruner only ever reads a
handful of entries per edge expansion.  This module replaces both halves
of that cost:

* :func:`forward_push_batch` runs the Andersen–Chung–Lang *forward push*
  solver (Andersen, Chung & Lang, FOCS 2006) per source user, directly
  on the CKG CSR arrays.  Work is proportional to the residual mass
  actually moved — ``O(1 / (alpha * epsilon))`` pushes per user in the
  worst case, independent of graph size — instead of 20 full passes
  over every edge for every user.
* :class:`SparsePPRScores` keeps only the top-``M`` entries per user in
  CSR layout (``indptr`` / ``node_ids`` / ``values``, float32), cutting
  score storage from O(U x N) float64 to O(U x M) float32 while serving
  the pruner's gather through a vectorized binary-search
  :meth:`~SparsePPRScores.lookup`.

Invariant relating the two solvers: forward push maintains

    p(v) + sum_u r(u) * ppr_u(v) = ppr_source(v)

so after termination every true score is underestimated by at most
``epsilon * outdeg(v)``; with a small ``epsilon`` the top-K entries per
user — all the pruner consumes — match power iteration (see
``tests/test_ppr_push.py`` for the property test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from .. import telemetry
from ..graph import CollaborativeKG

DEFAULT_EPSILON = 1e-4
DEFAULT_TOP_M = 256
#: safety cap on vectorized frontier sweeps per user; the residual-mass
#: argument guarantees termination long before this in practice.
MAX_SWEEPS = 10_000


@dataclass
class SparsePPRScores:
    """Top-M PPR scores per user, stored as one CSR matrix.

    Row ``k`` holds user ``users[k]``'s retained entries:
    ``node_ids[indptr[k]:indptr[k + 1]]`` (sorted ascending) with scores
    ``values[indptr[k]:indptr[k + 1]]`` (float32).  Entries that were
    truncated (or never received pushed mass) read as ``0.0`` — the same
    convention the computation graph uses for unreached nodes.

    Attributes
    ----------
    users:
        User id per row.
    num_nodes:
        Width of the logical dense matrix (CKG node count).
    indptr / node_ids / values:
        CSR arrays; ``node_ids`` is sorted within each row.
    residual:
        Total residual mass left unpushed (an upper bound on the summed
        underestimation per user; convergence diagnostic).
    """

    users: np.ndarray
    num_nodes: int
    indptr: np.ndarray
    node_ids: np.ndarray
    values: np.ndarray
    residual: float = 0.0
    _keys: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        self.users = np.asarray(self.users, dtype=np.int64)
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.node_ids = np.asarray(self.node_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float32)
        self._row_of = {int(u): k for k, u in enumerate(self.users.tolist())}
        # Composite keys row * num_nodes + node are globally sorted
        # (rows ascend; node_ids ascend within each row), so lookups are
        # a single searchsorted over all rows at once.
        row_index = np.repeat(np.arange(self.users.size, dtype=np.int64),
                              np.diff(self.indptr))
        self._keys = row_index * np.int64(self.num_nodes) + self.node_ids

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.users.size)

    @property
    def nnz(self) -> int:
        return int(self.node_ids.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by the score storage (the ``ppr.score_bytes`` gauge)."""
        return int(self.indptr.nbytes + self.node_ids.nbytes
                   + self.values.nbytes)

    def has_user(self, user: int) -> bool:
        return int(user) in self._row_of

    # ------------------------------------------------------------------
    def lookup(self, slots: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Scores for (row-slot, node) query pairs; missing entries are 0.

        ``slots`` index *rows* of this structure (the pruner's user
        slots), not user ids.  Queries may repeat and arrive in any
        order; the result aligns with the input element-wise.
        """
        slots = np.asarray(slots, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros(slots.size, dtype=np.float32)
        if self._keys.size == 0 or slots.size == 0:
            return out
        wanted = slots * np.int64(self.num_nodes) + nodes
        positions = np.searchsorted(self._keys, wanted)
        positions = np.minimum(positions, self._keys.size - 1)
        found = self._keys[positions] == wanted
        out[found] = self.values[positions[found]]
        return out

    def dense_columns(self, nodes: np.ndarray) -> np.ndarray:
        """Dense ``(num_rows, len(nodes))`` gather of selected columns.

        Serves full-ranking consumers (the PPR baseline scores every
        item node) without densifying all ``num_nodes`` columns.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        slots = np.repeat(np.arange(self.num_rows, dtype=np.int64),
                          nodes.size)
        return self.lookup(slots, np.tile(nodes, self.num_rows)) \
            .reshape(self.num_rows, nodes.size)

    def for_user(self, user: int) -> np.ndarray:
        """Densified score vector over all nodes for ``user``."""
        row = self._row_of.get(int(user))
        if row is None:
            raise KeyError(f"no PPR scores computed for user {user}")
        dense = np.zeros(self.num_nodes, dtype=np.float32)
        lo, hi = self.indptr[row], self.indptr[row + 1]
        dense[self.node_ids[lo:hi]] = self.values[lo:hi]
        return dense

    def toarray(self) -> np.ndarray:
        """Full dense ``(num_rows, num_nodes)`` float32 matrix."""
        dense = np.zeros((self.num_rows, self.num_nodes), dtype=np.float32)
        row_index = np.repeat(np.arange(self.num_rows), np.diff(self.indptr))
        dense[row_index, self.node_ids] = self.values
        return dense

    def select(self, users: Sequence[int]) -> "SparsePPRScores":
        """Row subset for ``users`` (cheap CSR slice; rows realign to input).

        The counterpart of dense ``scores[list(users)]`` — the pruner's
        slot ``k`` then maps to row ``k`` of the result.
        """
        rows = np.asarray([self._row_of[int(u)] for u in users],
                          dtype=np.int64)
        starts = self.indptr[rows]
        lengths = self.indptr[rows + 1] - starts
        new_indptr = np.concatenate([[0], np.cumsum(lengths)])
        total = int(new_indptr[-1])
        if total:
            offsets = np.repeat(new_indptr[:-1], lengths)
            gather = (np.repeat(starts, lengths)
                      + np.arange(total, dtype=np.int64) - offsets)
        else:
            gather = np.empty(0, dtype=np.int64)
        return SparsePPRScores(
            users=self.users[rows], num_nodes=self.num_nodes,
            indptr=new_indptr, node_ids=self.node_ids[gather],
            values=self.values[gather], residual=self.residual)

    def normalize_by_degree(self, degrees: np.ndarray) -> None:
        """Divide stored values by ``max(deg(node), 1)`` in place.

        Sparse equivalent of the trainer's degree-normalized ranking
        (``r_u[v] / deg(v)``); zeros stay zeros, so only retained
        entries need touching.
        """
        degrees = np.maximum(np.asarray(degrees, dtype=np.float64), 1.0)
        self.values /= degrees[self.node_ids].astype(np.float32)


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------

DEFAULT_CHUNK_USERS = 64


def forward_push_batch(ckg: CollaborativeKG, users: Sequence[int],
                       alpha: float = 0.15,
                       epsilon: float = DEFAULT_EPSILON,
                       top_m: int = DEFAULT_TOP_M,
                       chunk_users: int = DEFAULT_CHUNK_USERS) -> SparsePPRScores:
    """Approximate PPR for each user by chunk-vectorized forward push.

    Users are processed in chunks of ``chunk_users``; a chunk's state is
    a pair of dense ``(chunk, num_nodes)`` arrays — estimate ``p`` and
    residual ``r`` (``r`` starts as one-hot restart rows).  Each sweep
    takes the whole frontier ``{(u, v) : r[u, v] > epsilon * outdeg(v)}``
    across every user in the chunk at once, moves ``alpha * r`` into
    ``p``, and spreads ``(1 - alpha) * r / outdeg`` along out-edges via
    a single ``bincount`` over ``row * num_nodes + tail`` composite
    keys.  Work is proportional to residual mass actually moved —
    O(1 / (alpha * epsilon)) pushes per user in the worst case — and
    peak temporary memory is O(chunk_users x num_nodes) regardless of
    how many users are requested.  Dangling nodes absorb their
    non-restart mass exactly as the column-normalized power iteration
    does (all-zero columns).

    Parameters
    ----------
    ckg:
        Graph whose CSR arrays (``indptr`` / ``tails``) drive the walk.
    users:
        Source users, one output row each.
    alpha:
        Restart probability (paper default 0.15).
    epsilon:
        Residual threshold; per-node underestimation is at most
        ``epsilon * outdeg(node)``.
    top_m:
        Retain at most this many entries per user (highest scores).
    chunk_users:
        Users pushed simultaneously (bounds temporary memory).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if top_m < 1:
        raise ValueError(f"top_m must be >= 1, got {top_m}")
    if chunk_users < 1:
        raise ValueError(f"chunk_users must be >= 1, got {chunk_users}")
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size == 0:
        raise ValueError("users must be non-empty")
    if user_array.min() < 0 or user_array.max() >= ckg.num_users:
        raise ValueError("user id out of range")

    num_nodes = ckg.num_nodes
    degrees = np.diff(ckg.indptr)
    inv_degrees = (1.0 - alpha) / np.maximum(degrees, 1)
    # Push v whenever r(v) > epsilon * outdeg(v); dangling nodes push
    # their restart share once (threshold 0) and never reactivate.
    thresholds = epsilon * degrees.astype(np.float64)

    chunks_nodes = []
    chunks_values = []
    lengths = np.empty(user_array.size, dtype=np.int64)
    total_pushes = 0
    total_residual = 0.0

    with telemetry.span("ppr.forward_push"):
        for start in range(0, user_array.size, chunk_users):
            chunk = user_array[start:start + chunk_users]
            batch = chunk.size
            estimate = np.zeros((batch, num_nodes))
            residual = np.zeros((batch, num_nodes))
            residual[np.arange(batch), chunk] = 1.0
            for _ in range(MAX_SWEEPS):
                rows, nodes = np.nonzero(residual > thresholds)
                if rows.size == 0:
                    break
                mass = residual[rows, nodes]
                estimate[rows, nodes] += alpha * mass
                residual[rows, nodes] = 0.0
                out_degs = degrees[nodes]
                edge_ids = ckg.out_edge_ids(nodes)
                if edge_ids.size:
                    spread = (mass * inv_degrees[nodes]).repeat(out_degs)
                    targets = (rows.repeat(out_degs) * np.int64(num_nodes)
                               + ckg.tails[edge_ids])
                    residual += np.bincount(
                        targets, weights=spread,
                        minlength=batch * num_nodes).reshape(batch, num_nodes)
                total_pushes += int(edge_ids.size) + int(rows.size)
            total_residual += float(residual.sum())

            for row in range(batch):
                kept = np.flatnonzero(estimate[row])
                if kept.size > top_m:
                    top = np.argpartition(-estimate[row, kept], top_m - 1)[:top_m]
                    kept = np.sort(kept[top])
                chunks_nodes.append(kept)
                chunks_values.append(estimate[row, kept].astype(np.float32))
                lengths[start + row] = kept.size

    indptr = np.concatenate([[0], np.cumsum(lengths)])
    scores = SparsePPRScores(
        users=user_array, num_nodes=num_nodes, indptr=indptr,
        node_ids=(np.concatenate(chunks_nodes) if chunks_nodes
                  else np.empty(0, dtype=np.int64)),
        values=(np.concatenate(chunks_values) if chunks_values
                else np.empty(0, dtype=np.float32)),
        residual=total_residual)

    telemetry.counter("ppr.push_ops", total_pushes)
    telemetry.counter("ppr.users", user_array.size)
    telemetry.gauge("ppr.residual_mass", total_residual)
    telemetry.gauge("ppr.score_bytes", scores.nbytes)
    return scores


def sparsify_scores(scores: np.ndarray, users: Sequence[int],
                    top_m: int = DEFAULT_TOP_M,
                    residual: float = 0.0) -> SparsePPRScores:
    """Truncate a dense ``(num_users, num_nodes)`` matrix to top-M CSR.

    Bridges the power-iteration backend into the sparse storage path —
    used by the benchmarks for apples-to-apples parity checks and by
    callers that want power-iteration accuracy with push-style memory.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D (users x nodes)")
    if top_m < 1:
        raise ValueError(f"top_m must be >= 1, got {top_m}")
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size != scores.shape[0]:
        raise ValueError("one users entry per score row required")

    chunks_nodes = []
    chunks_values = []
    lengths = np.empty(user_array.size, dtype=np.int64)
    for row in range(user_array.size):
        kept = np.flatnonzero(scores[row])
        if kept.size > top_m:
            top = np.argpartition(-scores[row, kept], top_m - 1)[:top_m]
            kept = np.sort(kept[top])
        chunks_nodes.append(kept)
        chunks_values.append(scores[row, kept].astype(np.float32))
        lengths[row] = kept.size

    indptr = np.concatenate([[0], np.cumsum(lengths)])
    return SparsePPRScores(
        users=user_array, num_nodes=scores.shape[1], indptr=indptr,
        node_ids=(np.concatenate(chunks_nodes) if chunks_nodes
                  else np.empty(0, dtype=np.int64)),
        values=(np.concatenate(chunks_values) if chunks_values
                else np.empty(0, dtype=np.float32)),
        residual=residual)


def concat_sparse_scores(parts: Sequence[SparsePPRScores]) -> SparsePPRScores:
    """Stack per-chunk score structures row-wise, in the given order.

    The inverse of chunking a user population for fan-out: feeding the
    per-chunk outputs of :func:`forward_push_batch` back through this in
    chunk order yields arrays bitwise-identical to a single serial call
    over the whole population (the solver processes chunks
    independently, so the concatenated CSR arrays — and the residual
    accumulated in the same float order — coincide exactly).
    """
    parts = list(parts)
    if not parts:
        raise ValueError("parts must be non-empty")
    if len(parts) == 1:
        return parts[0]
    num_nodes = parts[0].num_nodes
    if any(part.num_nodes != num_nodes for part in parts):
        raise ValueError("parts disagree on num_nodes")
    residual = 0.0
    for part in parts:
        residual += part.residual
    lengths = np.concatenate([np.diff(part.indptr) for part in parts])
    return SparsePPRScores(
        users=np.concatenate([part.users for part in parts]),
        num_nodes=num_nodes,
        indptr=np.concatenate([[0], np.cumsum(lengths)]),
        node_ids=np.concatenate([part.node_ids for part in parts]),
        values=np.concatenate([part.values for part in parts]),
        residual=residual)


#: either PPR score backend, as accepted by the computation-graph pruner
PPRScoreLike = Union[np.ndarray, SparsePPRScores]
