"""Forward-push approximate PPR with sparse top-M score storage.

The power iteration of :mod:`repro.ppr.pagerank` materializes a dense
``(num_users, num_nodes)`` score matrix — O(U x N) memory and O(E x U)
compute per sweep — even though the Algorithm-1 pruner only ever reads a
handful of entries per edge expansion.  This module replaces both halves
of that cost:

* :func:`forward_push_batch` runs the Andersen–Chung–Lang *forward push*
  solver (Andersen, Chung & Lang, FOCS 2006) per source user, directly
  on the CKG CSR arrays.  Work is proportional to the residual mass
  actually moved — ``O(1 / (alpha * epsilon))`` pushes per user in the
  worst case, independent of graph size — instead of 20 full passes
  over every edge for every user.
* :class:`SparsePPRScores` keeps only the top-``M`` entries per user in
  CSR layout (``indptr`` / ``node_ids`` / ``values``, float32), cutting
  score storage from O(U x N) float64 to O(U x M) float32 while serving
  the pruner's gather through a vectorized binary-search
  :meth:`~SparsePPRScores.lookup`.

Invariant relating the two solvers: forward push maintains

    p(v) + sum_u r(u) * ppr_u(v) = ppr_source(v)

so after termination every true score is underestimated by at most
``epsilon * outdeg(v)``; with a small ``epsilon`` the top-K entries per
user — all the pruner consumes — match power iteration (see
``tests/test_ppr_push.py`` for the property test).

The same invariant powers *incremental maintenance* for online serving:
:func:`forward_push_batch` can keep the per-user residual vectors
(``keep_residuals=True``), and :func:`incremental_push` restores the
invariant after new interactions arrive — per inserted edge ``(h, t)``
with prior out-degree ``d(h)`` it folds the estimate mass already pushed
through ``h`` into adjusted ``p`` / ``r`` terms (Zhang, Lofgren & Goel,
KDD 2016) and then resumes pushing only the displaced residual, instead
of recomputing every user from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from ..graph import CollaborativeKG

DEFAULT_EPSILON = 1e-4
DEFAULT_TOP_M = 256
#: safety cap on vectorized frontier sweeps per user; the residual-mass
#: argument guarantees termination long before this in practice.
MAX_SWEEPS = 10_000


@dataclass
class SparsePPRScores:
    """Top-M PPR scores per user, stored as one CSR matrix.

    Row ``k`` holds user ``users[k]``'s retained entries:
    ``node_ids[indptr[k]:indptr[k + 1]]`` (sorted ascending) with scores
    ``values[indptr[k]:indptr[k + 1]]`` (float32).  Entries that were
    truncated (or never received pushed mass) read as ``0.0`` — the same
    convention the computation graph uses for unreached nodes.

    Attributes
    ----------
    users:
        User id per row.
    num_nodes:
        Width of the logical dense matrix (CKG node count).
    indptr / node_ids / values:
        CSR arrays; ``node_ids`` is sorted within each row.
    residual:
        Total residual mass left unpushed (an upper bound on the summed
        underestimation per user; convergence diagnostic).
    res_indptr / res_node_ids / res_values:
        Optional second CSR holding each user's *residual* vector
        (``keep_residuals=True``), the state :func:`incremental_push`
        resumes from.  Either all three are present or none.
    alpha / epsilon:
        Solver parameters recorded alongside kept residuals so
        maintenance continues with the exact same contract.
    """

    users: np.ndarray
    num_nodes: int
    indptr: np.ndarray
    node_ids: np.ndarray
    values: np.ndarray
    residual: float = 0.0
    res_indptr: Optional[np.ndarray] = None
    res_node_ids: Optional[np.ndarray] = None
    res_values: Optional[np.ndarray] = None
    alpha: Optional[float] = None
    epsilon: Optional[float] = None
    _keys: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        self.users = np.asarray(self.users, dtype=np.int64)
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.node_ids = np.asarray(self.node_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float32)
        res_parts = (self.res_indptr, self.res_node_ids, self.res_values)
        if any(part is not None for part in res_parts):
            if any(part is None for part in res_parts):
                raise ValueError(
                    "res_indptr, res_node_ids and res_values must be "
                    "provided together")
            self.res_indptr = np.asarray(self.res_indptr, dtype=np.int64)
            self.res_node_ids = np.asarray(self.res_node_ids, dtype=np.int64)
            self.res_values = np.asarray(self.res_values, dtype=np.float32)
        self._row_of = {int(u): k for k, u in enumerate(self.users.tolist())}
        # Composite keys row * num_nodes + node are globally sorted
        # (rows ascend; node_ids ascend within each row), so lookups are
        # a single searchsorted over all rows at once.
        row_index = np.repeat(np.arange(self.users.size, dtype=np.int64),
                              np.diff(self.indptr))
        self._keys = row_index * np.int64(self.num_nodes) + self.node_ids

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.users.size)

    @property
    def nnz(self) -> int:
        return int(self.node_ids.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by the score storage (the ``ppr.score_bytes`` gauge)."""
        total = int(self.indptr.nbytes + self.node_ids.nbytes
                    + self.values.nbytes)
        if self.has_residuals:
            total += int(self.res_indptr.nbytes + self.res_node_ids.nbytes
                         + self.res_values.nbytes)
        return total

    @property
    def has_residuals(self) -> bool:
        """Whether per-user residual rows were kept for maintenance."""
        return self.res_indptr is not None

    def has_user(self, user: int) -> bool:
        return int(user) in self._row_of

    def residual_for_user(self, user: int) -> np.ndarray:
        """Densified residual vector for ``user`` (requires kept residuals)."""
        if not self.has_residuals:
            raise ValueError(
                "scores were computed without keep_residuals=True")
        row = self._row_of.get(int(user))
        if row is None:
            raise KeyError(f"no PPR scores computed for user {user}")
        dense = np.zeros(self.num_nodes, dtype=np.float32)
        lo, hi = self.res_indptr[row], self.res_indptr[row + 1]
        dense[self.res_node_ids[lo:hi]] = self.res_values[lo:hi]
        return dense

    # ------------------------------------------------------------------
    def lookup(self, slots: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Scores for (row-slot, node) query pairs; missing entries are 0.

        ``slots`` index *rows* of this structure (the pruner's user
        slots), not user ids.  Queries may repeat and arrive in any
        order; the result aligns with the input element-wise.  Slots and
        nodes are bounds-checked: an out-of-range query raises
        ``IndexError`` naming the offender rather than silently reading
        a clamped position.
        """
        slots = np.asarray(slots, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if slots.size != nodes.size:
            raise ValueError(
                f"slots and nodes must align element-wise, got "
                f"{slots.size} slots and {nodes.size} nodes")
        if slots.size:
            bad_slots = (slots < 0) | (slots >= self.num_rows)
            if bad_slots.any():
                offender = int(slots[bad_slots][0])
                raise IndexError(
                    f"slot {offender} out of range for "
                    f"{self.num_rows} score rows")
            bad_nodes = (nodes < 0) | (nodes >= self.num_nodes)
            if bad_nodes.any():
                offender = int(nodes[bad_nodes][0])
                raise IndexError(
                    f"node {offender} out of range for "
                    f"num_nodes={self.num_nodes}")
        out = np.zeros(slots.size, dtype=np.float32)
        if self._keys.size == 0 or slots.size == 0:
            return out
        wanted = slots * np.int64(self.num_nodes) + nodes
        positions = np.searchsorted(self._keys, wanted)
        positions = np.minimum(positions, self._keys.size - 1)
        found = self._keys[positions] == wanted
        out[found] = self.values[positions[found]]
        return out

    def dense_columns(self, nodes: np.ndarray) -> np.ndarray:
        """Dense ``(num_rows, len(nodes))`` gather of selected columns.

        Serves full-ranking consumers (the PPR baseline scores every
        item node) without densifying all ``num_nodes`` columns.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        slots = np.repeat(np.arange(self.num_rows, dtype=np.int64),
                          nodes.size)
        return self.lookup(slots, np.tile(nodes, self.num_rows)) \
            .reshape(self.num_rows, nodes.size)

    def for_user(self, user: int) -> np.ndarray:
        """Densified score vector over all nodes for ``user``."""
        row = self._row_of.get(int(user))
        if row is None:
            raise KeyError(f"no PPR scores computed for user {user}")
        dense = np.zeros(self.num_nodes, dtype=np.float32)
        lo, hi = self.indptr[row], self.indptr[row + 1]
        dense[self.node_ids[lo:hi]] = self.values[lo:hi]
        return dense

    def toarray(self) -> np.ndarray:
        """Full dense ``(num_rows, num_nodes)`` float32 matrix."""
        dense = np.zeros((self.num_rows, self.num_nodes), dtype=np.float32)
        row_index = np.repeat(np.arange(self.num_rows), np.diff(self.indptr))
        dense[row_index, self.node_ids] = self.values
        return dense

    def select(self, users: Sequence[int]) -> "SparsePPRScores":
        """Row subset for ``users`` (cheap CSR slice; rows realign to input).

        The counterpart of dense ``scores[list(users)]`` — the pruner's
        slot ``k`` then maps to row ``k`` of the result.  Maintenance
        metadata (kept residuals) stays with the full structure; the
        selection is a plain score view.  Users without a computed row
        raise ``KeyError`` naming the offenders.
        """
        missing = sorted({int(u) for u in users
                          if int(u) not in self._row_of})
        if missing:
            raise KeyError(
                f"no PPR scores computed for user(s) {missing}: "
                f"structure holds {self.num_rows} rows")
        rows = np.asarray([self._row_of[int(u)] for u in users],
                          dtype=np.int64)
        starts = self.indptr[rows]
        lengths = self.indptr[rows + 1] - starts
        new_indptr = np.concatenate([[0], np.cumsum(lengths)])
        total = int(new_indptr[-1])
        if total:
            offsets = np.repeat(new_indptr[:-1], lengths)
            gather = (np.repeat(starts, lengths)
                      + np.arange(total, dtype=np.int64) - offsets)
        else:
            gather = np.empty(0, dtype=np.int64)
        return SparsePPRScores(
            users=self.users[rows], num_nodes=self.num_nodes,
            indptr=new_indptr, node_ids=self.node_ids[gather],
            values=self.values[gather], residual=self.residual)

    def normalize_by_degree(self, degrees: np.ndarray) -> None:
        """Divide stored values by ``max(deg(node), 1)`` in place.

        Sparse equivalent of the trainer's degree-normalized ranking
        (``r_u[v] / deg(v)``); zeros stay zeros, so only retained
        entries need touching.
        """
        degrees = np.maximum(np.asarray(degrees, dtype=np.float64), 1.0)
        self.values /= degrees[self.node_ids].astype(np.float32)

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Serialize every field — including the maintenance state — to npz.

        The residual CSR and the ``alpha`` / ``epsilon`` solver contract
        ride along when present, so :func:`incremental_push` keeps
        working on a structure that went through disk (regression-tested
        in ``tests/test_ppr_push.py``).  Returns the path written.
        """
        path = _npz_path(path)
        payload = dict(
            users=self.users, num_nodes=np.int64(self.num_nodes),
            indptr=self.indptr, node_ids=self.node_ids, values=self.values,
            residual=np.float64(self.residual))
        if self.has_residuals:
            payload.update(
                res_indptr=self.res_indptr, res_node_ids=self.res_node_ids,
                res_values=self.res_values)
        if self.alpha is not None:
            payload["alpha"] = np.float64(self.alpha)
        if self.epsilon is not None:
            payload["epsilon"] = np.float64(self.epsilon)
        np.savez(path, **payload)
        return path

    @classmethod
    def load(cls, path: str) -> "SparsePPRScores":
        """Inverse of :meth:`save`; restores maintenance state if stored."""
        path = _npz_path(path)
        with np.load(path) as payload:
            optional = {}
            if "res_indptr" in payload:
                optional.update(
                    res_indptr=payload["res_indptr"],
                    res_node_ids=payload["res_node_ids"],
                    res_values=payload["res_values"])
            if "alpha" in payload:
                optional["alpha"] = float(payload["alpha"])
            if "epsilon" in payload:
                optional["epsilon"] = float(payload["epsilon"])
            return cls(
                users=payload["users"],
                num_nodes=int(payload["num_nodes"]),
                indptr=payload["indptr"], node_ids=payload["node_ids"],
                values=payload["values"],
                residual=float(payload["residual"]), **optional)


def _npz_path(path: str) -> str:
    return path if path.endswith(".npz") else path + ".npz"


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------

DEFAULT_CHUNK_USERS = 64


def _sweep_chunk(ckg: CollaborativeKG, estimate: np.ndarray,
                 residual: np.ndarray, thresholds: np.ndarray,
                 degrees: np.ndarray, inv_degrees: np.ndarray, alpha: float,
                 signed: bool = False,
                 touched: Optional[np.ndarray] = None) -> int:
    """Run frontier sweeps on one dense chunk until below threshold.

    Mutates ``estimate`` / ``residual`` in place and returns the push-op
    count (frontier nodes + traversed edges).  ``signed=True`` pushes
    whenever ``|r| > epsilon * outdeg`` — incremental maintenance can
    leave *negative* residual at the head of an inserted edge, and both
    signs must drain for the two-sided error bound to hold.  ``touched``
    (optional bool array, one slot per chunk row) is OR-ed with the rows
    that pushed, so callers can tell which users actually moved.
    """
    batch, num_nodes = residual.shape
    ops = 0
    for _ in range(MAX_SWEEPS):
        if signed:
            rows, nodes = np.nonzero(np.abs(residual) > thresholds)
        else:
            rows, nodes = np.nonzero(residual > thresholds)
        if rows.size == 0:
            break
        mass = residual[rows, nodes]
        estimate[rows, nodes] += alpha * mass
        residual[rows, nodes] = 0.0
        out_degs = degrees[nodes]
        edge_ids = ckg.out_edge_ids(nodes)
        if edge_ids.size:
            spread = (mass * inv_degrees[nodes]).repeat(out_degs)
            targets = (rows.repeat(out_degs) * np.int64(num_nodes)
                       + ckg.tails[edge_ids])
            residual += np.bincount(
                targets, weights=spread,
                minlength=batch * num_nodes).reshape(batch, num_nodes)
        ops += int(edge_ids.size) + int(rows.size)
        if touched is not None:
            touched[rows] = True
    return ops


def forward_push_batch(ckg: CollaborativeKG, users: Sequence[int],
                       alpha: float = 0.15,
                       epsilon: float = DEFAULT_EPSILON,
                       top_m: int = DEFAULT_TOP_M,
                       chunk_users: int = DEFAULT_CHUNK_USERS,
                       keep_residuals: bool = False) -> SparsePPRScores:
    """Approximate PPR for each user by chunk-vectorized forward push.

    Users are processed in chunks of ``chunk_users``; a chunk's state is
    a pair of dense ``(chunk, num_nodes)`` arrays — estimate ``p`` and
    residual ``r`` (``r`` starts as one-hot restart rows).  Each sweep
    takes the whole frontier ``{(u, v) : r[u, v] > epsilon * outdeg(v)}``
    across every user in the chunk at once, moves ``alpha * r`` into
    ``p``, and spreads ``(1 - alpha) * r / outdeg`` along out-edges via
    a single ``bincount`` over ``row * num_nodes + tail`` composite
    keys.  Work is proportional to residual mass actually moved —
    O(1 / (alpha * epsilon)) pushes per user in the worst case — and
    peak temporary memory is O(chunk_users x num_nodes) regardless of
    how many users are requested.  Dangling nodes absorb their
    non-restart mass exactly as the column-normalized power iteration
    does (all-zero columns).

    Parameters
    ----------
    ckg:
        Graph whose CSR arrays (``indptr`` / ``tails``) drive the walk.
    users:
        Source users, one output row each.
    alpha:
        Restart probability (paper default 0.15).
    epsilon:
        Residual threshold; per-node underestimation is at most
        ``epsilon * outdeg(node)``.
    top_m:
        Retain at most this many entries per user (highest scores).
    chunk_users:
        Users pushed simultaneously (bounds temporary memory).
    keep_residuals:
        Also store each user's sparse residual row so
        :func:`incremental_push` can resume the solve after graph
        updates.  Implies *untruncated* estimate rows (``top_m`` is
        ignored): the maintenance invariant reads the estimate at every
        node an inserted edge touches, so silently dropping entries
        would corrupt later updates.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if top_m < 1:
        raise ValueError(f"top_m must be >= 1, got {top_m}")
    if chunk_users < 1:
        raise ValueError(f"chunk_users must be >= 1, got {chunk_users}")
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size == 0:
        raise ValueError("users must be non-empty")
    if user_array.min() < 0 or user_array.max() >= ckg.num_users:
        raise ValueError("user id out of range")

    num_nodes = ckg.num_nodes
    degrees = np.diff(ckg.indptr)
    inv_degrees = (1.0 - alpha) / np.maximum(degrees, 1)
    # Push v whenever r(v) > epsilon * outdeg(v); dangling nodes push
    # their restart share once (threshold 0) and never reactivate.
    thresholds = epsilon * degrees.astype(np.float64)

    chunks_nodes = []
    chunks_values = []
    lengths = np.empty(user_array.size, dtype=np.int64)
    res_chunks_nodes = []
    res_chunks_values = []
    res_lengths = np.empty(user_array.size, dtype=np.int64)
    total_pushes = 0
    total_residual = 0.0

    with telemetry.span("ppr.forward_push"):
        for start in range(0, user_array.size, chunk_users):
            chunk = user_array[start:start + chunk_users]
            batch = chunk.size
            estimate = np.zeros((batch, num_nodes))
            residual = np.zeros((batch, num_nodes))
            residual[np.arange(batch), chunk] = 1.0
            total_pushes += _sweep_chunk(ckg, estimate, residual, thresholds,
                                         degrees, inv_degrees, alpha)
            total_residual += float(residual.sum())

            for row in range(batch):
                kept = np.flatnonzero(estimate[row])
                if not keep_residuals and kept.size > top_m:
                    top = np.argpartition(-estimate[row, kept], top_m - 1)[:top_m]
                    kept = np.sort(kept[top])
                chunks_nodes.append(kept)
                chunks_values.append(estimate[row, kept].astype(np.float32))
                lengths[start + row] = kept.size
                if keep_residuals:
                    res_kept = np.flatnonzero(residual[row])
                    res_chunks_nodes.append(res_kept)
                    res_chunks_values.append(
                        residual[row, res_kept].astype(np.float32))
                    res_lengths[start + row] = res_kept.size

    indptr = np.concatenate([[0], np.cumsum(lengths)])
    res_arrays = {}
    if keep_residuals:
        res_arrays = dict(
            res_indptr=np.concatenate([[0], np.cumsum(res_lengths)]),
            res_node_ids=(np.concatenate(res_chunks_nodes)
                          if res_chunks_nodes else np.empty(0, dtype=np.int64)),
            res_values=(np.concatenate(res_chunks_values)
                        if res_chunks_values
                        else np.empty(0, dtype=np.float32)))
    scores = SparsePPRScores(
        users=user_array, num_nodes=num_nodes, indptr=indptr,
        node_ids=(np.concatenate(chunks_nodes) if chunks_nodes
                  else np.empty(0, dtype=np.int64)),
        values=(np.concatenate(chunks_values) if chunks_values
                else np.empty(0, dtype=np.float32)),
        residual=total_residual, alpha=alpha, epsilon=epsilon, **res_arrays)

    telemetry.counter("ppr.push_ops", total_pushes)
    telemetry.counter("ppr.users", user_array.size)
    telemetry.gauge("ppr.residual_mass", total_residual)
    telemetry.gauge("ppr.score_bytes", scores.nbytes)
    return scores


def forward_push_sharded(ckg: CollaborativeKG, users: Sequence[int],
                         directory: str, alpha: float = 0.15,
                         epsilon: float = DEFAULT_EPSILON,
                         top_m: int = DEFAULT_TOP_M,
                         chunk_users: int = DEFAULT_CHUNK_USERS,
                         keep_residuals: bool = False,
                         max_open: Optional[int] = None,
                         overwrite: bool = False):
    """Forward push written to disk shard-by-shard, never all in RAM.

    Same solver, same parameters, same chunking as
    :func:`forward_push_batch` — but each ``chunk_users`` chunk is
    flushed to ``directory`` as one ``.npy`` CSR shard the moment it
    finishes, so peak memory is a single chunk no matter how many users
    are requested.  The solver processes chunks independently and the
    shards store its exact per-chunk arrays, which is why reads from the
    returned :class:`~repro.storage.ShardedPPRScores` are
    bitwise-identical to the in-RAM backend on the same solve.

    Telemetry is additive across the per-chunk solver calls, so
    ``ppr.push_ops`` / ``ppr.users`` totals match a single serial call;
    the ``ppr.residual_mass`` / ``ppr.score_bytes`` gauges are restated
    with the whole-run values once the manifest is written.
    """
    from ..storage.sharded import ShardWriter
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size == 0:
        raise ValueError("users must be non-empty")
    writer = ShardWriter(directory, ckg.num_nodes,
                         keep_residuals=keep_residuals, overwrite=overwrite)
    total_residual = 0.0
    with telemetry.span("ppr.forward_push_sharded"):
        for start in range(0, user_array.size, chunk_users):
            chunk = user_array[start:start + chunk_users]
            part = forward_push_batch(
                ckg, chunk, alpha=alpha, epsilon=epsilon, top_m=top_m,
                chunk_users=chunk_users, keep_residuals=keep_residuals)
            total_residual += part.residual
            writer.append(part)
        store = writer.finalize(alpha=alpha, epsilon=epsilon,
                                max_open=max_open)
    telemetry.gauge("ppr.residual_mass", total_residual)
    telemetry.gauge("ppr.score_bytes", store.nbytes)
    return store


# ----------------------------------------------------------------------
# Incremental maintenance
# ----------------------------------------------------------------------


@dataclass
class IncrementalPushResult:
    """Outcome of :func:`incremental_push`.

    Attributes
    ----------
    ckg:
        The updated graph (new :class:`CollaborativeKG`; the input graph
        is never mutated).
    scores:
        Fresh :class:`SparsePPRScores` (with residuals kept) valid for
        ``ckg``; the input scores are never mutated.
    changed_users:
        User ids whose estimate rows differ from the input — the set a
        serving cache must invalidate.
    push_ops:
        Work done: resumed sweep ops plus one op per applied per-row
        edge adjustment (the ``ppr.incremental_pushes`` counter).
    """

    ckg: CollaborativeKG
    scores: SparsePPRScores
    changed_users: np.ndarray
    push_ops: int


def _delta_edges(ckg: CollaborativeKG,
                 pairs: Sequence[Tuple[int, int]]
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inserted directed edges for an interaction delta, in order.

    Each pair contributes interact (user -> item node) then its reverse
    twin.  Returns ``(heads, tails, deg_at)`` where ``deg_at[j]`` is the
    head's out-degree at the moment edge ``j`` is applied — the old
    degree plus earlier insertions at the same head — so the correction
    holds exactly on each intermediate graph.
    """
    pair_array = np.asarray(pairs, dtype=np.int64)
    user_nodes = pair_array[:, 0]
    item_nodes = ckg.item_nodes[pair_array[:, 1]]
    ins_heads = np.empty(2 * len(pairs), dtype=np.int64)
    ins_tails = np.empty_like(ins_heads)
    ins_heads[0::2] = user_nodes
    ins_tails[0::2] = item_nodes
    ins_heads[1::2] = item_nodes
    ins_tails[1::2] = user_nodes

    old_degrees = np.diff(ckg.indptr)
    deg_at = old_degrees[ins_heads].copy()
    runs: dict = {}
    for j, head in enumerate(ins_heads.tolist()):
        deg_at[j] += runs.get(head, 0)
        runs[head] = runs.get(head, 0) + 1
    return ins_heads, ins_tails, deg_at


def _apply_delta_chunk(new_ckg: CollaborativeKG, estimate: np.ndarray,
                       residual: np.ndarray, ins_heads: np.ndarray,
                       ins_tails: np.ndarray, deg_at: np.ndarray,
                       alpha: float, thresholds: np.ndarray,
                       degrees: np.ndarray, inv_degrees: np.ndarray
                       ) -> Tuple[int, np.ndarray]:
    """Apply the per-edge corrections to one dense chunk, then re-sweep.

    The chunk kernel shared by the in-RAM and sharded incremental paths
    — identical float operations in identical order, so both backends
    produce bitwise-identical updated rows.  Mutates ``estimate`` /
    ``residual`` in place; returns ``(sweep_ops, touched)`` where
    ``touched`` flags the chunk rows whose state moved.
    """
    touched = np.zeros(estimate.shape[0], dtype=bool)
    for j in range(ins_heads.size):
        head = int(ins_heads[j])
        tail = int(ins_tails[j])
        degree = int(deg_at[j])
        p_head = estimate[:, head].copy()
        if degree == 0:
            residual[:, tail] += (1.0 - alpha) / alpha * p_head
        else:
            estimate[:, head] += p_head / degree
            residual[:, head] -= p_head / (alpha * degree)
            residual[:, tail] += (1.0 - alpha) * p_head / (alpha * degree)
        touched |= p_head != 0.0

    sweep_ops = _sweep_chunk(new_ckg, estimate, residual, thresholds,
                             degrees, inv_degrees, alpha, signed=True,
                             touched=touched)
    return sweep_ops, touched


def incremental_push(ckg: CollaborativeKG, scores,
                     new_interactions: Sequence[Tuple[int, int]],
                     chunk_users: int = DEFAULT_CHUNK_USERS
                     ) -> IncrementalPushResult:
    """Maintain forward-push PPR scores after new user-item interactions.

    Instead of re-running :func:`forward_push_batch` from scratch on the
    updated graph, this restores the push invariant

        ``p(v) + sum_u r(u) * ppr_u(v) = ppr_source(v)``

    directly.  Each interaction inserts two directed edges (``interact``
    plus its reverse twin); for an inserted edge ``(h, t)`` where ``h``
    previously had out-degree ``d``, the estimate mass already pushed
    through ``h`` (``p(h) = alpha * m``, so ``m = p(h) / alpha`` units
    were pushed) was spread over ``d`` out-edges when it should now
    cover ``d + 1``.  Folding the correction into the push state gives,
    per score row (Zhang, Lofgren & Goel, KDD 2016):

    * ``d > 0``:  ``p(h) += p(h) / d``, ``r(h) -= p(h) / (alpha * d)``,
      ``r(t) += (1 - alpha) * p(h) / (alpha * d)``
    * ``d == 0`` (a dangling head gains its first edge): the absorbed
      mass re-emerges at the tail, ``r(t) += (1 - alpha) * p(h) / alpha``

    applied sequentially per inserted edge with running degrees, so the
    invariant holds exactly on each intermediate graph.  The head
    adjustment can leave ``r(h)`` *negative*; the resumed sweep drains
    ``|r| > epsilon * outdeg`` so the final error bound is two-sided:
    every score is within ``epsilon * outdeg(v)`` of the true PPR on the
    updated graph (same contract as a from-scratch push).

    Work is proportional to the displaced residual — after a small
    interaction delta this is a tiny fraction of a from-scratch solve
    (the ``ppr.incremental_vs_scratch`` benchmark gates exactly that).

    Parameters
    ----------
    ckg:
        Graph the ``scores`` were computed on.
    scores:
        Must have been computed with ``keep_residuals=True``.
    new_interactions:
        ``(user, item)`` pairs to append; duplicates of existing
        interactions are rejected by
        :meth:`~repro.graph.ckg.CollaborativeKG.add_interactions`.
    chunk_users:
        Score rows densified simultaneously (bounds temporary memory).
        Ignored for sharded scores, whose shards are the chunks.
    """
    # Sharded stores maintain themselves shard-by-shard with targeted
    # invalidation; the import is lazy to keep storage -> push one-way.
    from ..storage.sharded import (ShardedPPRScores,
                                   incremental_push_sharded)
    if isinstance(scores, ShardedPPRScores):
        return incremental_push_sharded(ckg, scores, new_interactions)
    if not scores.has_residuals:
        raise ValueError(
            "incremental_push requires scores computed with "
            "keep_residuals=True — residual rows were not stored")
    if scores.num_nodes != ckg.num_nodes:
        raise ValueError(
            f"scores cover {scores.num_nodes} nodes but the graph has "
            f"{ckg.num_nodes} — they belong to different graphs")
    if chunk_users < 1:
        raise ValueError(f"chunk_users must be >= 1, got {chunk_users}")
    alpha = float(scores.alpha)
    epsilon = float(scores.epsilon)

    pairs = [(int(u), int(i)) for u, i in new_interactions]
    if not pairs:
        raise ValueError("new_interactions must be non-empty")

    with telemetry.span("ppr.incremental_push"):
        new_ckg = ckg.add_interactions(pairs)
        num_nodes = ckg.num_nodes
        ins_heads, ins_tails, deg_at = _delta_edges(ckg, pairs)
        new_degrees = np.diff(new_ckg.indptr)
        inv_degrees = (1.0 - alpha) / np.maximum(new_degrees, 1)
        thresholds = epsilon * new_degrees.astype(np.float64)

        chunks_nodes = []
        chunks_values = []
        lengths = np.empty(scores.num_rows, dtype=np.int64)
        res_chunks_nodes = []
        res_chunks_values = []
        res_lengths = np.empty(scores.num_rows, dtype=np.int64)
        changed = np.zeros(scores.num_rows, dtype=bool)
        sweep_ops = 0
        total_residual = 0.0

        for start in range(0, scores.num_rows, chunk_users):
            stop = min(start + chunk_users, scores.num_rows)
            batch = stop - start
            estimate = np.zeros((batch, num_nodes))
            residual = np.zeros((batch, num_nodes))
            for local, row in enumerate(range(start, stop)):
                lo, hi = scores.indptr[row], scores.indptr[row + 1]
                estimate[local, scores.node_ids[lo:hi]] = scores.values[lo:hi]
                lo, hi = scores.res_indptr[row], scores.res_indptr[row + 1]
                residual[local, scores.res_node_ids[lo:hi]] = \
                    scores.res_values[lo:hi]

            ops, touched = _apply_delta_chunk(
                new_ckg, estimate, residual, ins_heads, ins_tails, deg_at,
                alpha, thresholds, new_degrees, inv_degrees)
            sweep_ops += ops
            total_residual += float(np.abs(residual).sum())
            changed[start:stop] = touched

            for local, row in enumerate(range(start, stop)):
                kept = np.flatnonzero(estimate[local])
                chunks_nodes.append(kept)
                chunks_values.append(estimate[local, kept].astype(np.float32))
                lengths[row] = kept.size
                res_kept = np.flatnonzero(residual[local])
                res_chunks_nodes.append(res_kept)
                res_chunks_values.append(
                    residual[local, res_kept].astype(np.float32))
                res_lengths[row] = res_kept.size

        new_scores = SparsePPRScores(
            users=scores.users.copy(), num_nodes=num_nodes,
            indptr=np.concatenate([[0], np.cumsum(lengths)]),
            node_ids=(np.concatenate(chunks_nodes) if chunks_nodes
                      else np.empty(0, dtype=np.int64)),
            values=(np.concatenate(chunks_values) if chunks_values
                    else np.empty(0, dtype=np.float32)),
            residual=total_residual,
            res_indptr=np.concatenate([[0], np.cumsum(res_lengths)]),
            res_node_ids=(np.concatenate(res_chunks_nodes)
                          if res_chunks_nodes
                          else np.empty(0, dtype=np.int64)),
            res_values=(np.concatenate(res_chunks_values)
                        if res_chunks_values
                        else np.empty(0, dtype=np.float32)),
            alpha=alpha, epsilon=epsilon)

        # One op per applied per-edge adjustment, plus the resumed sweeps;
        # recorded under both counters so `bench compare` can gate the
        # incremental arm's share of the total push work.
        push_ops = sweep_ops + int(ins_heads.size)
        telemetry.counter("ppr.push_ops", push_ops)
        telemetry.counter("ppr.incremental_pushes", push_ops)
        telemetry.gauge("ppr.residual_mass", total_residual)
        telemetry.gauge("ppr.score_bytes", new_scores.nbytes)

    return IncrementalPushResult(
        ckg=new_ckg, scores=new_scores,
        changed_users=scores.users[changed].copy(), push_ops=push_ops)


def sparsify_scores(scores: np.ndarray, users: Sequence[int],
                    top_m: int = DEFAULT_TOP_M,
                    residual: float = 0.0) -> SparsePPRScores:
    """Truncate a dense ``(num_users, num_nodes)`` matrix to top-M CSR.

    Bridges the power-iteration backend into the sparse storage path —
    used by the benchmarks for apples-to-apples parity checks and by
    callers that want power-iteration accuracy with push-style memory.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError("scores must be 2-D (users x nodes)")
    if top_m < 1:
        raise ValueError(f"top_m must be >= 1, got {top_m}")
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size != scores.shape[0]:
        raise ValueError("one users entry per score row required")

    chunks_nodes = []
    chunks_values = []
    lengths = np.empty(user_array.size, dtype=np.int64)
    for row in range(user_array.size):
        kept = np.flatnonzero(scores[row])
        if kept.size > top_m:
            top = np.argpartition(-scores[row, kept], top_m - 1)[:top_m]
            kept = np.sort(kept[top])
        chunks_nodes.append(kept)
        chunks_values.append(scores[row, kept].astype(np.float32))
        lengths[row] = kept.size

    indptr = np.concatenate([[0], np.cumsum(lengths)])
    return SparsePPRScores(
        users=user_array, num_nodes=scores.shape[1], indptr=indptr,
        node_ids=(np.concatenate(chunks_nodes) if chunks_nodes
                  else np.empty(0, dtype=np.int64)),
        values=(np.concatenate(chunks_values) if chunks_values
                else np.empty(0, dtype=np.float32)),
        residual=residual)


def concat_sparse_scores(parts: Sequence[SparsePPRScores]) -> SparsePPRScores:
    """Stack per-chunk score structures row-wise, in the given order.

    The inverse of chunking a user population for fan-out: feeding the
    per-chunk outputs of :func:`forward_push_batch` back through this in
    chunk order yields arrays bitwise-identical to a single serial call
    over the whole population (the solver processes chunks
    independently, so the concatenated CSR arrays — and the residual
    accumulated in the same float order — coincide exactly).
    """
    parts = list(parts)
    if not parts:
        raise ValueError("parts must be non-empty")
    if len(parts) == 1:
        return parts[0]
    num_nodes = parts[0].num_nodes
    if any(part.num_nodes != num_nodes for part in parts):
        raise ValueError("parts disagree on num_nodes")
    residual = 0.0
    for part in parts:
        residual += part.residual
    lengths = np.concatenate([np.diff(part.indptr) for part in parts])
    res_arrays = {}
    if all(part.has_residuals for part in parts):
        res_lengths = np.concatenate(
            [np.diff(part.res_indptr) for part in parts])
        res_arrays = dict(
            res_indptr=np.concatenate([[0], np.cumsum(res_lengths)]),
            res_node_ids=np.concatenate(
                [part.res_node_ids for part in parts]),
            res_values=np.concatenate([part.res_values for part in parts]),
            alpha=parts[0].alpha, epsilon=parts[0].epsilon)
    return SparsePPRScores(
        users=np.concatenate([part.users for part in parts]),
        num_nodes=num_nodes,
        indptr=np.concatenate([[0], np.cumsum(lengths)]),
        node_ids=np.concatenate([part.node_ids for part in parts]),
        values=np.concatenate([part.values for part in parts]),
        residual=residual, **res_arrays)


#: either PPR score backend, as accepted by the computation-graph pruner
PPRScoreLike = Union[np.ndarray, SparsePPRScores]
