"""Personalized PageRank over the collaborative KG (§IV-C2)."""

from .pagerank import (PPRScores, personalized_pagerank,
                       personalized_pagerank_batch, top_k_items_by_ppr)

__all__ = ["personalized_pagerank", "personalized_pagerank_batch",
           "PPRScores", "top_k_items_by_ppr"]
