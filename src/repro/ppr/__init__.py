"""Personalized PageRank over the collaborative KG (§IV-C2).

Two solver backends share this namespace: the dense power iteration of
:mod:`.pagerank` (the paper's literal Eq. 13) and the sparse forward
push of :mod:`.push` (same scores, sublinear per user, top-M storage).
The push backend additionally supports online maintenance: scores
computed with ``keep_residuals=True`` can be updated in place of a
from-scratch recompute via :func:`incremental_push` when new
interactions arrive.
"""

from .pagerank import (PPRScores, personalized_pagerank,
                       personalized_pagerank_batch,
                       personalized_pagerank_mmap, top_k_items_by_ppr)
from .push import (IncrementalPushResult, PPRScoreLike, SparsePPRScores,
                   concat_sparse_scores, forward_push_batch,
                   forward_push_sharded, incremental_push, sparsify_scores)

__all__ = ["personalized_pagerank", "personalized_pagerank_batch",
           "personalized_pagerank_mmap",
           "PPRScores", "top_k_items_by_ppr",
           "SparsePPRScores", "forward_push_batch", "forward_push_sharded",
           "sparsify_scores", "concat_sparse_scores", "PPRScoreLike",
           "incremental_push", "IncrementalPushResult"]
