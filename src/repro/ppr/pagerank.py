"""Personalized PageRank by sparse power iteration (Eq. 13 of the paper).

The paper computes, for every user ``u``, a score vector ``r_u`` over all
CKG nodes with the iteration

    r_u^{k+1} = (1 - alpha) * M @ r_u^k + alpha * p_u,

where ``M`` is the column-normalized CKG adjacency, ``p_u`` the one-hot
restart vector of ``u``, and ``alpha = 0.15`` the restart probability,
run for ~20 steps.  Scores are a preprocessing step (Table VI) reused by
the top-K edge pruner of Algorithm 1.

We batch users by stacking restart vectors into a sparse matrix, so one
pass of sparse-dense products serves many users at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from ..graph import CollaborativeKG

DEFAULT_ALPHA = 0.15
DEFAULT_ITERATIONS = 20


@dataclass
class PPRScores:
    """PPR scores for a set of source users.

    Attributes
    ----------
    users:
        The user ids the rows correspond to.
    scores:
        Array of shape ``(len(users), num_nodes)``; ``scores[k, n]`` is the
        PPR mass of node ``n`` from user ``users[k]``'s perspective.
    residual:
        Max-norm change of the final iteration (convergence diagnostic).
    """

    users: np.ndarray
    scores: np.ndarray
    residual: float

    def __post_init__(self):
        self._row_of = {int(u): k for k, u in enumerate(self.users.tolist())}

    def for_user(self, user: int) -> np.ndarray:
        """Score vector over all nodes for ``user``."""
        row = self._row_of.get(int(user))
        if row is None:
            raise KeyError(f"no PPR scores computed for user {user}")
        return self.scores[row]

    def has_user(self, user: int) -> bool:
        return int(user) in self._row_of


def personalized_pagerank(ckg: CollaborativeKG, user: int,
                          alpha: float = DEFAULT_ALPHA,
                          iterations: int = DEFAULT_ITERATIONS,
                          adjacency: Optional[sp.spmatrix] = None) -> np.ndarray:
    """PPR score vector of one user (convenience wrapper)."""
    result = personalized_pagerank_batch(ckg, [user], alpha=alpha,
                                         iterations=iterations,
                                         adjacency=adjacency)
    return result.scores[0]


def personalized_pagerank_batch(ckg: CollaborativeKG, users: Sequence[int],
                                alpha: float = DEFAULT_ALPHA,
                                iterations: int = DEFAULT_ITERATIONS,
                                adjacency: Optional[sp.spmatrix] = None,
                                tolerance: float = 0.0) -> PPRScores:
    """Run Eq. (13) for a batch of users simultaneously.

    Parameters
    ----------
    ckg:
        The collaborative KG whose column-normalized adjacency drives the walk.
    users:
        User ids to compute scores for.
    alpha:
        Restart probability (paper default 0.15).
    iterations:
        Number of power-iteration steps (paper default 20).
    adjacency:
        Precomputed ``ckg.normalized_adjacency()`` to amortize across calls.
    tolerance:
        If positive, stop early once the max-norm update falls below it.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size == 0:
        raise ValueError("users must be non-empty")
    if user_array.min() < 0 or user_array.max() >= ckg.num_users:
        raise ValueError("user id out of range")

    matrix = adjacency if adjacency is not None else ckg.normalized_adjacency()
    num_nodes = ckg.num_nodes

    # Restart matrix: column k is the one-hot vector of users[k].
    restart = np.zeros((num_nodes, user_array.size))
    restart[user_array, np.arange(user_array.size)] = 1.0

    ranks = restart.copy()
    residual = np.inf
    with telemetry.span("ppr.power_iteration"):
        sweeps = 0
        for _ in range(iterations):
            updated = (1.0 - alpha) * (matrix @ ranks) + alpha * restart
            residual = float(np.abs(updated - ranks).max())
            ranks = updated
            sweeps += 1
            if tolerance > 0.0 and residual < tolerance:
                break
    telemetry.counter("ppr.sweeps", sweeps)
    telemetry.counter("ppr.users", user_array.size)
    telemetry.gauge("ppr.residual", residual)

    return PPRScores(users=user_array, scores=ranks.T.copy(), residual=residual)


def personalized_pagerank_mmap(ckg: CollaborativeKG, users: Sequence[int],
                               out_path: str, alpha: float = DEFAULT_ALPHA,
                               iterations: int = DEFAULT_ITERATIONS,
                               chunk_users: int = 64,
                               tolerance: float = 0.0) -> np.ndarray:
    """Power-iteration PPR written chunk-by-chunk into an on-disk array.

    The out-of-core counterpart of :func:`personalized_pagerank_batch`
    for the dense backend: rows land in a ``.npy`` memmap at
    ``out_path`` as each ``chunk_users`` batch converges, so peak RAM is
    one chunk's scores plus the adjacency — never the full
    ``(num_users, num_nodes)`` matrix.  Each chunk runs the exact same
    iteration as the in-RAM path, so the stored rows are
    bitwise-identical to it.  Returns the read-only memmap.
    """
    if chunk_users < 1:
        raise ValueError(f"chunk_users must be >= 1, got {chunk_users}")
    user_array = np.asarray(list(users), dtype=np.int64)
    if user_array.size == 0:
        raise ValueError("users must be non-empty")
    if not out_path.endswith(".npy"):
        out_path = out_path + ".npy"
    matrix = ckg.normalized_adjacency()
    out = np.lib.format.open_memmap(
        out_path, mode="w+", dtype=np.float64,
        shape=(user_array.size, ckg.num_nodes))
    with telemetry.span("ppr.power_iteration_mmap"):
        for start in range(0, user_array.size, chunk_users):
            chunk = user_array[start:start + chunk_users]
            part = personalized_pagerank_batch(
                ckg, chunk, alpha=alpha, iterations=iterations,
                adjacency=matrix, tolerance=tolerance)
            out[start:start + chunk.size] = part.scores
    out.flush()
    del out
    return np.load(out_path, mmap_mode="r")


def top_k_items_by_ppr(ckg: CollaborativeKG, scores: np.ndarray, k: int,
                       exclude_items: Optional[Sequence[int]] = None) -> np.ndarray:
    """Rank items by a user's PPR node scores (the PPR baseline of §V-C1).

    Parameters
    ----------
    ckg:
        Graph providing the item -> node mapping.
    scores:
        A single user's PPR vector over all nodes.
    k:
        Number of items to return.
    exclude_items:
        Items to mask out (e.g. the user's training positives).

    Returns
    -------
    Item ids sorted by descending PPR score.  Excluded items are never
    returned, so fewer than ``k`` items come back when the exclusions
    saturate the catalog (same contract as ``eval.metrics.rank_items``).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    item_scores = scores[ckg.item_nodes].copy()
    if exclude_items is not None:
        item_scores[np.asarray(list(exclude_items), dtype=np.int64)] = -np.inf
    k = min(k, item_scores.size)
    top = np.argpartition(-item_scores, k - 1)[:k]
    ranked = top[np.argsort(-item_scores[top], kind="stable")]
    # When k reaches past the unmasked count, the argpartition tail is
    # -inf-masked exclusions — drop them instead of recommending them.
    return ranked[item_scores[ranked] > -np.inf]
