"""Training-health monitoring: NaN guards, grad norms, drift detectors.

A :class:`HealthMonitor` collects structured :class:`HealthAlert`
records for one run; :class:`HealthHook` feeds it from the engine loop
(non-finite loss/grads, exploding grad norms, loss spikes, unstable
update ratios), and the standalone monitors cover PPR residual drift
and sampler exhaustion.  Every alert bumps the ``health.alerts``
counter and flows into JSONL dumps via
``telemetry.write_jsonl(..., extra_records=monitor.records())``.

Escalation is policy-driven: ``HealthConfig(policy="warn")`` (default)
surfaces alerts as RuntimeWarnings; ``policy="raise"`` turns
fatal-severity alerts into :class:`HealthError` so unattended runs and
CI fail fast::

    from repro.health import HealthConfig, HealthHook, HealthMonitor

    monitor = HealthMonitor(HealthConfig(policy="raise"))
    engine.fit(..., hooks=[TelemetryHook(), HealthHook(monitor, model)])
    telemetry.write_jsonl("health.jsonl", manifest=manifest,
                          extra_records=monitor.records())

See ``docs/observability.md`` for the alert record schema.
"""

from .alerts import (POLICIES, EpochHealth, HealthAlert, HealthConfig,
                     HealthError, HealthMonitor)
from .hooks import HealthHook
from .monitors import check_ppr_residual, check_sampler, check_snapshot

__all__ = [
    "HealthAlert", "HealthConfig", "HealthError", "HealthMonitor",
    "EpochHealth", "HealthHook", "POLICIES",
    "check_ppr_residual", "check_sampler", "check_snapshot",
]
