"""Standalone health monitors for non-engine pipeline stages.

The :class:`~repro.health.hooks.HealthHook` covers the training loop;
these functions cover the stages around it:

* :func:`check_ppr_residual` — the forward-push PPR invariant bounds the
  per-user score underestimation by the residual mass left on the
  frontier, so residual drift silently corrupts the subgraph pruner's
  input.  Call it with the aggregate residual after
  :meth:`KUCNetTrainer.prepare` (the push backend reports it on
  ``SparsePPRScores.residual``).
* :func:`check_sampler` — the BPR negative sampler falls back to a
  linear scan when rejection sampling saturates; a handful of
  fallbacks is fine, systematic exhaustion means the interaction
  matrix is too dense for the configured sampler and epochs silently
  crawl.
* :func:`check_snapshot` — run both checks after the fact from a plain
  registry snapshot (``train.sampler_exhausted`` counter /
  ``ppr.residual_mass`` + ``ppr.num_users`` gauges), for post-hoc
  auditing of a JSONL dump or a worker snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .. import telemetry
from .alerts import HealthAlert, HealthMonitor

__all__ = ["check_ppr_residual", "check_sampler", "check_snapshot"]


def check_ppr_residual(residual: float, num_users: int,
                       monitor: HealthMonitor) -> Optional[HealthAlert]:
    """Alert when PPR residual mass per user exceeds the configured cap.

    ``residual`` is the aggregate un-pushed probability mass across all
    seed users (``SparsePPRScores.residual``); dividing by ``num_users``
    gives the mean per-user approximation error bound.
    """
    per_user = float(residual) / max(int(num_users), 1)
    telemetry.gauge("health.ppr_residual_per_user", per_user)
    cap = monitor.config.ppr_residual_per_user_max
    if per_user > cap:
        return monitor.alert(
            "ppr_residual",
            message=f"PPR residual mass {per_user:.4g} per user exceeds "
                    f"{cap:g} — push tolerance too loose for this graph; "
                    f"subgraph scores are underestimated",
            value=per_user, threshold=cap,
            residual=float(residual), num_users=int(num_users))
    return None


def check_sampler(exhausted: float,
                  monitor: HealthMonitor) -> Optional[HealthAlert]:
    """Alert when sampler-exhaustion fallbacks exceed the configured cap."""
    exhausted = int(exhausted)
    cap = monitor.config.sampler_exhausted_max
    if exhausted > cap:
        return monitor.alert(
            "sampler_exhausted",
            message=f"negative sampler fell back to exhaustive scan "
                    f"{exhausted} time(s) (max {cap}) — interaction "
                    f"matrix too dense for rejection sampling",
            value=float(exhausted), threshold=float(cap))
    return None


def check_snapshot(snapshot: Dict[str, Any],
                   monitor: HealthMonitor) -> List[HealthAlert]:
    """Run the standalone checks against a registry snapshot dict.

    Accepts the shape produced by ``MetricsRegistry.snapshot()`` (or a
    parsed-back JSONL section map with the same nesting).  Returns the
    alerts raised, if any.
    """
    alerts: List[HealthAlert] = []
    counters = snapshot.get("counters", {})
    exhausted = counters.get("train.sampler_exhausted")
    if exhausted is not None:
        alert = check_sampler(exhausted.get("total", 0), monitor)
        if alert is not None:
            alerts.append(alert)
    gauges = snapshot.get("gauges", {})
    residual = gauges.get("ppr.residual_mass")
    if residual is not None:
        num_users = gauges.get("ppr.num_users", {}).get("value", 1)
        alert = check_ppr_residual(residual.get("value", 0.0), num_users,
                                   monitor)
        if alert is not None:
            alerts.append(alert)
    return alerts
