"""Engine lifecycle hook watching model health during training.

:class:`HealthHook` plugs into :class:`repro.engine.Engine` and watches
every batch and epoch for the failure modes that silently ruin a run:

* **non-finite loss** — NaN/Inf batch loss is a ``fatal`` alert (the
  run is unrecoverable: Adam's moments are already poisoned);
* **non-finite gradients** — NaN/Inf in any parameter group's gradient,
  also ``fatal``;
* **exploding gradients** — per-group L2 grad norm above
  ``grad_norm_max`` (warn);
* **loss spikes** — a batch loss above ``loss_spike_ratio`` times its
  EWMA after a warmup period (warn), the classic symptom of a bad
  batch or a too-hot learning rate;
* **unstable updates** — end-of-epoch relative weight change
  ``||W_end - W_start|| / ||W_start||`` above ``update_ratio_max``
  (warn), the update-ratio rule of thumb (healthy runs sit orders of
  magnitude below 1 per epoch).

Per epoch it records ``health.grad_norm.<group>`` and
``health.update_ratio.<group>`` gauges plus a structured
:class:`~repro.health.alerts.EpochHealth` record into the monitor, so
health dumps carry the full timeline.

Parameter groups: when constructed with a ``module`` (anything exposing
``named_parameters()``), parameters group by the first component of
their dotted name; otherwise the hook reads ``engine.optimizer.params``
at fit start and tracks them as one ``"model"`` group.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..engine.hooks import Hook
from .alerts import EpochHealth, HealthConfig, HealthMonitor

__all__ = ["HealthHook"]


class HealthHook(Hook):
    """Engine hook: gradient/update/loss health checks per batch + epoch.

    Parameters
    ----------
    monitor:
        The collecting :class:`HealthMonitor`; created from ``config``
        when omitted.
    module:
        Optional model whose ``named_parameters()`` define parameter
        groups; falls back to the engine optimizer's flat param list.
    config:
        Thresholds/policy; ignored when an explicit ``monitor`` is
        passed (the monitor's config wins).
    """

    def __init__(self, monitor: Optional[HealthMonitor] = None,
                 module=None,  # noqa: ANN001 — anything with named_parameters
                 config: Optional[HealthConfig] = None):
        self.monitor = monitor or HealthMonitor(config)
        self.module = module
        self._groups: List[Tuple[str, list]] = []
        self._epoch_start_norms: Dict[str, float] = {}
        self._epoch_start_state: Dict[str, List[np.ndarray]] = {}
        self._grad_norm_sums: Dict[str, float] = {}
        self._batches = 0
        self._losses: List[float] = []
        self._ewma: Optional[float] = None
        self._seen_batches = 0

    # ------------------------------------------------------------------
    def _resolve_groups(self, engine) -> None:
        if self.module is not None and hasattr(self.module,
                                               "named_parameters"):
            by_group: Dict[str, list] = {}
            for name, param in self.module.named_parameters():
                by_group.setdefault(name.split(".", 1)[0], []).append(param)
            self._groups = sorted(by_group.items())
        elif getattr(engine, "optimizer", None) is not None:
            self._groups = [("model", list(engine.optimizer.params))]
        else:
            self._groups = []

    @staticmethod
    def _l2(arrays: List[np.ndarray]) -> float:
        total = 0.0
        for array in arrays:
            total += float(np.sum(np.asarray(array, dtype=np.float64) ** 2))
        return math.sqrt(total)

    # ------------------------------------------------------------------
    def on_fit_start(self, engine) -> None:
        self._resolve_groups(engine)
        self._ewma = None
        self._seen_batches = 0

    def on_epoch_start(self, engine, epoch: int) -> None:
        if not self._groups:
            self._resolve_groups(engine)
        self._grad_norm_sums = {name: 0.0 for name, _ in self._groups}
        self._batches = 0
        self._losses = []
        self._epoch_start_norms = {
            name: self._l2([p.data for p in params])
            for name, params in self._groups}
        self._epoch_start_state = {
            name: [p.data.copy() for p in params]
            for name, params in self._groups}

    def on_batch_end(self, engine, epoch: int, index: int,
                     loss: Optional[float]) -> None:
        config = self.monitor.config
        if loss is not None:
            self._check_loss(float(loss), epoch, index)
        self._batches += 1
        for name, params in self._groups:
            grads = [p.grad for p in params if p.grad is not None]
            if not grads:
                continue
            if not all(np.all(np.isfinite(g)) for g in grads):
                self.monitor.alert(
                    "non_finite_grad", severity="fatal",
                    message=f"NaN/Inf gradient in group {name!r} "
                            f"(epoch {epoch}, batch {index})",
                    value=float("nan"), epoch=epoch, batch=index, group=name)
                continue
            norm = self._l2(grads)
            self._grad_norm_sums[name] += norm
            if norm > config.grad_norm_max:
                self.monitor.alert(
                    "grad_norm",
                    message=f"group {name!r} gradient norm {norm:.3g} "
                            f"exceeds {config.grad_norm_max:g} "
                            f"(epoch {epoch}, batch {index})",
                    value=norm, threshold=config.grad_norm_max,
                    epoch=epoch, batch=index, group=name)

    def _check_loss(self, loss: float, epoch: int, index: int) -> None:
        config = self.monitor.config
        if not math.isfinite(loss):
            self.monitor.alert(
                "non_finite_loss", severity="fatal",
                message=f"batch loss is {loss!r} (epoch {epoch}, "
                        f"batch {index}) — optimizer state is poisoned",
                value=loss, epoch=epoch, batch=index)
            return
        self._losses.append(loss)
        self._seen_batches += 1
        if self._ewma is None:
            self._ewma = loss
            return
        armed = self._seen_batches > config.loss_spike_warmup
        floor = max(abs(self._ewma), 1e-12)
        if armed and abs(loss) > config.loss_spike_ratio * floor:
            self.monitor.alert(
                "loss_spike",
                message=f"batch loss {loss:.4g} is "
                        f"{abs(loss) / floor:.1f}x the EWMA "
                        f"{self._ewma:.4g} (epoch {epoch}, batch {index})",
                value=loss, threshold=config.loss_spike_ratio * floor,
                epoch=epoch, batch=index)
        beta = config.loss_ewma_beta
        self._ewma = beta * self._ewma + (1.0 - beta) * loss

    def on_epoch_end(self, engine, stats) -> None:
        config = self.monitor.config
        alerts_before = len(self.monitor.alerts)
        grad_norm: Dict[str, float] = {}
        update_ratio: Dict[str, float] = {}
        for name, params in self._groups:
            mean_norm = (self._grad_norm_sums.get(name, 0.0)
                         / max(self._batches, 1))
            grad_norm[name] = mean_norm
            telemetry.gauge(f"health.grad_norm.{name}", mean_norm)
            start = self._epoch_start_state.get(name)
            if start is None:
                continue
            start_norm = self._epoch_start_norms.get(name, 0.0)
            if start_norm <= 1e-12:
                # A zero-initialized group (fresh biases) has no
                # meaningful *relative* change — any movement divides
                # by ~0 and false-alerts every run.
                continue
            delta = self._l2([p.data - w0 for p, w0 in zip(params, start)])
            ratio = delta / start_norm
            update_ratio[name] = ratio
            telemetry.gauge(f"health.update_ratio.{name}", ratio)
            if ratio > config.update_ratio_max:
                self.monitor.alert(
                    "update_ratio",
                    message=f"group {name!r} moved {ratio:.3g} of its "
                            f"weight norm in epoch {stats.epoch} "
                            f"(max {config.update_ratio_max:g})",
                    value=ratio, threshold=config.update_ratio_max,
                    epoch=stats.epoch, group=name)
        self.monitor.record_epoch(EpochHealth(
            epoch=stats.epoch, loss=stats.loss,
            grad_norm=grad_norm, update_ratio=update_ratio,
            batches=self._batches,
            alerts=len(self.monitor.alerts) - alerts_before))
        # Release the weight snapshots between epochs.
        self._epoch_start_state = {}
