"""Health alerts: structured records, policy, and the collecting monitor.

Model health can degenerate silently — NaN gradients propagate zeros,
update ratios explode, the negative sampler saturates, PPR residual mass
drifts — and an aggregate loss curve hides all of it.  This module
defines the vocabulary every health check speaks:

* :class:`HealthAlert` — one structured finding (check name, severity,
  measured value, threshold, free-form context), serializable as a
  JSONL record with ``"record": "alert"`` so it flows through the
  existing :func:`repro.telemetry.write_jsonl` sink unchanged;
* :class:`HealthConfig` — thresholds plus the warn/raise **policy**:
  ``"warn"`` (default) surfaces alerts as :class:`RuntimeWarning`,
  ``"raise"`` escalates ``fatal``-severity alerts to
  :class:`HealthError` so CI and long unattended runs fail fast;
* :class:`HealthMonitor` — the collector: every alert bumps the
  ``health.alerts`` counter, emits a flight-recorder instant event, and
  is retained for the JSONL dump.

The monitor also accumulates per-epoch :class:`EpochHealth` records
(grad norms, update ratios, loss statistics per parameter group) —
written by :class:`repro.health.HealthHook` — so a health dump reads as
a timeline, not just a verdict.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import telemetry

__all__ = ["HealthAlert", "HealthConfig", "HealthError", "HealthMonitor",
           "EpochHealth", "POLICIES"]

POLICIES = ("warn", "raise")


class HealthError(RuntimeError):
    """Raised for ``fatal`` alerts under the ``"raise"`` policy."""

    def __init__(self, alert: "HealthAlert"):
        super().__init__(f"[{alert.check}] {alert.message}")
        self.alert = alert


@dataclass
class HealthAlert:
    """One structured health finding."""

    check: str                    # e.g. "non_finite_loss", "grad_norm"
    severity: str                 # "warn" | "fatal"
    message: str
    value: float = 0.0            # the measured quantity
    threshold: float = 0.0        # the limit it violated
    context: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """JSONL record (``"record": "alert"``) for the health dump."""
        value = float(self.value)
        return {
            "record": "alert", "check": self.check,
            "severity": self.severity, "message": self.message,
            "value": value if math.isfinite(value) else repr(value),
            "threshold": float(self.threshold),
            "context": dict(self.context),
        }


@dataclass
class EpochHealth:
    """Per-epoch model-health statistics (one JSONL record each).

    ``grad_norm`` / ``update_ratio`` map parameter-group name to the
    epoch's mean L2 gradient norm and the end-of-epoch relative weight
    change ``||W_end - W_start|| / ||W_start||``.
    """

    epoch: int
    loss: float
    grad_norm: Dict[str, float] = field(default_factory=dict)
    update_ratio: Dict[str, float] = field(default_factory=dict)
    batches: int = 0
    alerts: int = 0

    def to_record(self) -> Dict[str, Any]:
        return {
            "record": "health", "epoch": int(self.epoch),
            "loss": float(self.loss),
            "grad_norm": {k: float(v) for k, v in self.grad_norm.items()},
            "update_ratio": {k: float(v)
                             for k, v in self.update_ratio.items()},
            "batches": int(self.batches), "alerts": int(self.alerts),
        }


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and escalation policy for every health check."""

    #: ``"warn"`` emits RuntimeWarnings; ``"raise"`` raises
    #: :class:`HealthError` on ``fatal`` alerts (warn-severity alerts
    #: still only warn).
    policy: str = "warn"
    #: per-group L2 gradient norm above this is an exploding-gradient
    #: alert (warn severity)
    grad_norm_max: float = 1e3
    #: per-group relative weight change per epoch above this is an
    #: unstable-update alert (warn severity)
    update_ratio_max: float = 0.5
    #: EWMA smoothing factor for the loss-spike detector
    loss_ewma_beta: float = 0.9
    #: a batch loss above ``ratio * ewma`` (after warmup) is a spike
    loss_spike_ratio: float = 3.0
    #: batches observed before the spike detector arms
    loss_spike_warmup: int = 8
    #: PPR residual mass *per user* above this is a drift alert — the
    #: forward-push invariant bounds per-user score underestimation by
    #: the residual, so drift here silently corrupts the pruner's input
    ppr_residual_per_user_max: float = 0.05
    #: sampler-exhaustion events above this count trigger an alert
    sampler_exhausted_max: int = 0

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(f"unknown health policy {self.policy!r}; "
                             f"choose from {POLICIES}")


class HealthMonitor:
    """Collects alerts and epoch records; applies the escalation policy.

    One monitor instance accompanies one training/eval run.  Thread-odd
    usage is not expected (the engine drives it from one thread), so no
    locking.
    """

    def __init__(self, config: Optional[HealthConfig] = None):
        self.config = config or HealthConfig()
        self.alerts: List[HealthAlert] = []
        self.epochs: List[EpochHealth] = []

    # ------------------------------------------------------------------
    def alert(self, check: str, message: str, value: float = 0.0,
              threshold: float = 0.0, severity: str = "warn",
              **context: Any) -> HealthAlert:
        """Record one alert; warn or raise according to the policy.

        Always: retained for :meth:`records`, counted under
        ``health.alerts`` (plus ``health.alerts.<check>``), and emitted
        as a flight-recorder instant event so traces show *when* the
        model went unhealthy.
        """
        alert = HealthAlert(check=check, severity=severity, message=message,
                            value=value, threshold=threshold,
                            context=dict(context))
        self.alerts.append(alert)
        telemetry.counter("health.alerts")
        telemetry.counter(f"health.alerts.{check}")
        telemetry.instant("health.alert",
                          {"check": check, "severity": severity,
                           "message": message})
        if severity == "fatal" and self.config.policy == "raise":
            raise HealthError(alert)
        warnings.warn(f"health[{check}]: {message}", RuntimeWarning,
                      stacklevel=3)
        return alert

    def record_epoch(self, epoch_health: EpochHealth) -> None:
        self.epochs.append(epoch_health)

    # ------------------------------------------------------------------
    @property
    def alert_count(self) -> int:
        return len(self.alerts)

    def records(self) -> List[Dict[str, Any]]:
        """Epoch-health then alert records, ready for ``write_jsonl``."""
        return ([epoch.to_record() for epoch in self.epochs]
                + [alert.to_record() for alert in self.alerts])
