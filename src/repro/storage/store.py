"""The ``ScoreStore`` contract and backend resolution knobs.

Every PPR score structure in the repo — the in-RAM
:class:`~repro.ppr.SparsePPRScores` and the on-disk
:class:`~repro.storage.ShardedPPRScores` — serves the same read
interface to the pruner, the trainer, and the serving layer.
:class:`ScoreStore` names that interface so the backends stay
interchangeable: anything the pruner or server does against one must
work (and return bitwise-identical values) against the other.

Backend selection is a single knob threaded through the stack:
``TrainConfig.ppr_store`` / ``--store {ram,mmap}`` on the CLI, falling
back to ``$REPRO_PPR_STORE`` and finally ``"ram"``.  ``"ram"`` keeps
today's in-memory arrays; ``"mmap"`` writes per-chunk ``.npy`` CSR
shards and serves reads through memory maps (see ``docs/storage.md``).
"""

from __future__ import annotations

import abc
import os
import tempfile
from typing import Optional

__all__ = ["ScoreStore", "STORE_ENV_VAR", "STORE_BACKENDS",
           "resolve_store", "resolve_store_dir"]

#: environment fallback for the ``--store`` / ``ppr_store`` knob
STORE_ENV_VAR = "REPRO_PPR_STORE"

STORE_BACKENDS = ("ram", "mmap")


def resolve_store(requested: Optional[str] = None) -> str:
    """Resolve a store backend: explicit value > ``$REPRO_PPR_STORE`` > ram.

    Unknown names raise ``ValueError`` naming the choices, whether they
    came from the caller or the environment.
    """
    value = requested
    source = "ppr_store"
    if value is None or value == "":
        value = os.environ.get(STORE_ENV_VAR, "") or "ram"
        source = STORE_ENV_VAR
    value = str(value).strip().lower()
    if value not in STORE_BACKENDS:
        raise ValueError(
            f"unknown score store {value!r} (from {source}); "
            f"choose one of {STORE_BACKENDS}")
    return value


def resolve_store_dir(requested: Optional[str] = None,
                      prefix: str = "repro_ppr_") -> str:
    """Directory for shard files: the explicit path, or a fresh tempdir.

    An explicit path is created (parents included) if missing and
    returned as-is — the caller owns its lifetime.  ``None`` creates a
    process-unique temporary directory; callers that want it reclaimed
    should arrange cleanup themselves (the trainer attaches a
    ``weakref.finalize``).
    """
    if requested:
        os.makedirs(requested, exist_ok=True)
        return requested
    return tempfile.mkdtemp(prefix=prefix)


class ScoreStore(abc.ABC):
    """Read interface every PPR score backend implements.

    ``lookup`` / ``select`` / ``dense_columns`` / ``for_user`` must be
    **bitwise-identical** across backends for the same solve — the
    property test in ``tests/test_storage.py`` holds the sharded backend
    to the in-RAM reference entry by entry.  Registered (virtually) for
    both backends so ``isinstance(x, ScoreStore)`` works without
    coupling the implementations.
    """

    @property
    @abc.abstractmethod
    def num_rows(self) -> int:
        """Stored score rows (one per user)."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Total stored (row, node) entries."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Bytes held by the score storage (RAM or on disk)."""

    @property
    @abc.abstractmethod
    def has_residuals(self) -> bool:
        """Whether residual rows were kept for incremental maintenance."""

    @abc.abstractmethod
    def has_user(self, user: int) -> bool: ...

    @abc.abstractmethod
    def lookup(self, slots, nodes): ...

    @abc.abstractmethod
    def select(self, users): ...

    @abc.abstractmethod
    def dense_columns(self, nodes): ...

    @abc.abstractmethod
    def for_user(self, user: int): ...

    @abc.abstractmethod
    def normalize_by_degree(self, degrees) -> None: ...
