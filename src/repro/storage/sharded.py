"""Sharded, memory-mapped PPR score storage.

The in-RAM :class:`~repro.ppr.SparsePPRScores` concatenates every
user's CSR row into one set of arrays — O(total nnz) resident memory,
the hard ceiling on serving millions of users.  This module keeps the
same logical structure but splits it into **per-chunk shards on disk**:

* :class:`ShardWriter` receives one :class:`SparsePPRScores` per solver
  chunk (the existing ``ppr_chunk_users`` boundaries) and writes each as
  a set of raw ``.npy`` files — CSR ``indptr`` / ``node_ids`` /
  ``values`` plus the residual CSR when the solve kept residuals —
  described by a single ``manifest.json``.
* :class:`ShardedPPRScores` serves the :class:`~repro.storage.ScoreStore`
  read interface straight off ``np.load(..., mmap_mode="r")`` handles,
  keeping at most ``max_open`` shards open in an LRU
  (``storage.shard_hits`` / ``storage.shard_misses`` telemetry).  Reads
  are **bitwise-identical** to the in-RAM backend: the shard files hold
  the exact float32/int64 arrays the RAM structure would.
* :func:`incremental_push_sharded` maintains the store after new
  interactions with *targeted shard invalidation*: shards whose rows the
  delta never touched are reused by reference in the next manifest
  version (``storage.shards_reused``); touched shards are rewritten
  (``storage.shards_rewritten``).

Pickling a :class:`ShardedPPRScores` ships only the directory path and
settings — a spawn-started worker reopens the shards by path instead of
inheriting (or copying) the arrays.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..ppr.push import (IncrementalPushResult, SparsePPRScores,
                        _apply_delta_chunk, _delta_edges)
from .store import ScoreStore

__all__ = ["ShardWriter", "ShardedPPRScores", "incremental_push_sharded",
           "MANIFEST_NAME", "DEFAULT_MAX_OPEN", "OPEN_SHARDS_ENV_VAR"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-ppr-shards"
MANIFEST_FORMAT_VERSION = 1

#: LRU bound on simultaneously open (mmap'd) shards
DEFAULT_MAX_OPEN = 8
OPEN_SHARDS_ENV_VAR = "REPRO_PPR_OPEN_SHARDS"

_CSR_PARTS = ("indptr", "node_ids", "values")
_RES_PARTS = ("res_indptr", "res_node_ids", "res_values")


def _default_max_open() -> int:
    value = os.environ.get(OPEN_SHARDS_ENV_VAR, "")
    try:
        return max(1, int(value)) if value else DEFAULT_MAX_OPEN
    except ValueError:
        return DEFAULT_MAX_OPEN


def _atomic_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    os.replace(tmp, path)


def _shard_files(index: int, version: int,
                 with_residuals: bool) -> Dict[str, str]:
    prefix = f"shard_{index:05d}_v{version}"
    parts = _CSR_PARTS + (_RES_PARTS if with_residuals else ())
    return {part: f"{prefix}.{part}.npy" for part in parts}


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------

class ShardWriter:
    """Stream per-chunk score structures to disk, one shard per chunk.

    Usage: construct over an empty (or fresh) directory, ``append`` the
    chunk outputs of the solver **in user order**, then ``finalize`` to
    write the manifest and get the readable :class:`ShardedPPRScores`.
    The writer never holds more than one chunk's arrays — peak RAM is
    one shard, regardless of the population size.
    """

    def __init__(self, directory: str, num_nodes: int,
                 keep_residuals: bool = False, overwrite: bool = False):
        self.directory = directory
        self.num_nodes = int(num_nodes)
        self.keep_residuals = bool(keep_residuals)
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path) and not overwrite:
            raise FileExistsError(
                f"{manifest_path} already holds a shard manifest; pass "
                "overwrite=True (or point the writer at a fresh directory)")
        self._entries: List[dict] = []
        self._user_chunks: List[np.ndarray] = []
        self._residual = 0.0
        self._finalized = False

    def append(self, part: SparsePPRScores) -> None:
        """Write one solver chunk as the next shard."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        if part.num_nodes != self.num_nodes:
            raise ValueError(
                f"chunk covers {part.num_nodes} nodes, writer expects "
                f"{self.num_nodes}")
        if part.has_residuals != self.keep_residuals:
            raise ValueError(
                "chunk residual layout disagrees with the writer "
                f"(keep_residuals={self.keep_residuals})")
        index = len(self._entries)
        row_start = sum(len(users) for users in self._user_chunks)
        files = _shard_files(index, 0, self.keep_residuals)
        np.save(os.path.join(self.directory, files["indptr"]), part.indptr)
        np.save(os.path.join(self.directory, files["node_ids"]),
                part.node_ids)
        np.save(os.path.join(self.directory, files["values"]), part.values)
        entry = {
            "row_start": int(row_start),
            "row_stop": int(row_start + part.num_rows),
            "nnz": int(part.nnz),
            "res_nnz": None,
            "residual": float(part.residual),
            "files": files,
        }
        if self.keep_residuals:
            np.save(os.path.join(self.directory, files["res_indptr"]),
                    part.res_indptr)
            np.save(os.path.join(self.directory, files["res_node_ids"]),
                    part.res_node_ids)
            np.save(os.path.join(self.directory, files["res_values"]),
                    part.res_values)
            entry["res_nnz"] = int(part.res_node_ids.size)
        self._entries.append(entry)
        self._user_chunks.append(np.asarray(part.users, dtype=np.int64))
        self._residual += float(part.residual)
        telemetry.counter("storage.shards_written")

    def finalize(self, alpha: Optional[float] = None,
                 epsilon: Optional[float] = None,
                 max_open: Optional[int] = None) -> "ShardedPPRScores":
        """Write ``users.npy`` + the manifest; return the readable store."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        if not self._entries:
            raise ValueError("no shards were appended")
        self._finalized = True
        users = np.concatenate(self._user_chunks)
        np.save(os.path.join(self.directory, "users.npy"), users)
        manifest = {
            "format": MANIFEST_FORMAT,
            "format_version": MANIFEST_FORMAT_VERSION,
            "version": 0,
            "num_rows": int(users.size),
            "num_nodes": self.num_nodes,
            "alpha": None if alpha is None else float(alpha),
            "epsilon": None if epsilon is None else float(epsilon),
            "residual": float(self._residual),
            "has_residuals": self.keep_residuals,
            "users_file": "users.npy",
            "shards": self._entries,
        }
        _atomic_json(os.path.join(self.directory, MANIFEST_NAME), manifest)
        store = ShardedPPRScores(self.directory, max_open=max_open)
        telemetry.gauge("storage.shard_bytes", store.nbytes)
        return store


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------

class _ShardHandle:
    """One open shard: small indptr in RAM, data arrays memory-mapped."""

    __slots__ = ("indptr", "node_ids", "values", "res_indptr",
                 "res_node_ids", "res_values", "keys")

    def __init__(self, directory: str, entry: dict, has_residuals: bool):
        files = entry["files"]
        path = lambda part: os.path.join(directory, files[part])  # noqa: E731
        self.indptr = np.load(path("indptr"))
        self.node_ids = np.load(path("node_ids"), mmap_mode="r")
        self.values = np.load(path("values"), mmap_mode="r")
        if has_residuals:
            self.res_indptr = np.load(path("res_indptr"))
            self.res_node_ids = np.load(path("res_node_ids"), mmap_mode="r")
            self.res_values = np.load(path("res_values"), mmap_mode="r")
        else:
            self.res_indptr = self.res_node_ids = self.res_values = None
        #: composite lookup keys, computed lazily on first lookup —
        #: RAM usage is bounded by the LRU (evicted with the handle)
        self.keys: Optional[np.ndarray] = None

    def lookup_keys(self, num_nodes: int) -> np.ndarray:
        if self.keys is None:
            rows = np.repeat(
                np.arange(self.indptr.size - 1, dtype=np.int64),
                np.diff(self.indptr))
            self.keys = rows * np.int64(num_nodes) + self.node_ids[:]
        return self.keys


class ShardedPPRScores(ScoreStore):
    """Mmap-backed PPR scores over the shard layout of :class:`ShardWriter`.

    The logical structure (row ``k`` = user ``users[k]``'s sorted CSR
    entries) is identical to :class:`~repro.ppr.SparsePPRScores`; only
    the residency differs.  ``lookup`` / ``select`` / ``dense_columns``
    / ``for_user`` return bitwise-identical values.  ``select`` realizes
    the requested rows as an in-RAM :class:`SparsePPRScores`, so every
    downstream consumer (pruner, model, server) is untouched.

    At most ``max_open`` shards are open at once; access beyond the
    bound evicts the least-recently-used handle
    (``storage.shard_hits`` / ``storage.shard_misses`` counters,
    ``storage.open_shards`` gauge).
    """

    def __init__(self, directory: str, max_open: Optional[int] = None):
        self.directory = directory
        self.max_open = _default_max_open() if max_open is None \
            else max(1, int(max_open))
        self._load_manifest()

    def _load_manifest(self) -> None:
        path = os.path.join(self.directory, MANIFEST_NAME)
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"{path} is not a {MANIFEST_FORMAT} manifest")
        if manifest.get("format_version") != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard manifest format_version "
                f"{manifest.get('format_version')!r}")
        self.manifest = manifest
        self.num_nodes = int(manifest["num_nodes"])
        self.residual = float(manifest["residual"])
        self.alpha = manifest["alpha"]
        self.epsilon = manifest["epsilon"]
        self.users = np.load(
            os.path.join(self.directory, manifest["users_file"]))
        self._shards: List[dict] = manifest["shards"]
        self._row_starts = np.asarray(
            [entry["row_start"] for entry in self._shards], dtype=np.int64)
        self._user_order = np.argsort(self.users, kind="stable")
        self._users_sorted = self.users[self._user_order]
        self._handles: "OrderedDict[int, _ShardHandle]" = OrderedDict()

    # -- pickling: ship the path, reopen shards in the receiving process
    def __getstate__(self):
        return {"directory": self.directory, "max_open": self.max_open}

    def __setstate__(self, state):
        self.directory = state["directory"]
        self.max_open = state["max_open"]
        self._load_manifest()

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.users.size)

    @property
    def nnz(self) -> int:
        return int(sum(entry["nnz"] for entry in self._shards))

    @property
    def nbytes(self) -> int:
        """On-disk bytes across all shard files (plus the users array)."""
        total = int(self.users.nbytes)
        for entry in self._shards:
            rows = entry["row_stop"] - entry["row_start"]
            total += (rows + 1) * 8 + entry["nnz"] * 12
            if entry["res_nnz"] is not None:
                total += (rows + 1) * 8 + entry["res_nnz"] * 12
        return total

    @property
    def has_residuals(self) -> bool:
        return bool(self.manifest["has_residuals"])

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def open_shard_indices(self) -> List[int]:
        """Currently open shards, least-recently-used first (test hook)."""
        return list(self._handles)

    # ------------------------------------------------------------------
    def _handle(self, index: int) -> _ShardHandle:
        handle = self._handles.get(index)
        if handle is not None:
            self._handles.move_to_end(index)
            telemetry.counter("storage.shard_hits")
            return handle
        telemetry.counter("storage.shard_misses")
        handle = _ShardHandle(self.directory, self._shards[index],
                              self.has_residuals)
        self._handles[index] = handle
        while len(self._handles) > self.max_open:
            self._handles.popitem(last=False)
        telemetry.gauge("storage.open_shards", len(self._handles))
        return handle

    def _shard_of_rows(self, rows: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._row_starts, rows, side="right") - 1

    def _rows_of(self, users: Sequence[int]) -> np.ndarray:
        query = np.asarray([int(u) for u in users], dtype=np.int64)
        pos = np.searchsorted(self._users_sorted, query)
        pos_clipped = np.minimum(pos, self._users_sorted.size - 1)
        found = (self._users_sorted.size > 0) \
            & (self._users_sorted[pos_clipped] == query)
        if not np.all(found):
            missing = sorted({int(u) for u in query[~found]})
            raise KeyError(
                f"no PPR scores computed for user(s) {missing}: "
                f"structure holds {self.num_rows} rows")
        return self._user_order[pos_clipped]

    def has_user(self, user: int) -> bool:
        pos = np.searchsorted(self._users_sorted, int(user))
        return bool(pos < self._users_sorted.size
                    and self._users_sorted[pos] == int(user))

    def _row_slice(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """One row's ``(node_ids, values)``, read from its shard."""
        index = int(self._shard_of_rows(np.asarray([row]))[0])
        handle = self._handle(index)
        local = row - self._shards[index]["row_start"]
        lo, hi = handle.indptr[local], handle.indptr[local + 1]
        return np.asarray(handle.node_ids[lo:hi]), \
            np.asarray(handle.values[lo:hi])

    # ------------------------------------------------------------------
    # ScoreStore reads (bitwise-identical to SparsePPRScores)
    # ------------------------------------------------------------------
    def lookup(self, slots: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Scores for (row-slot, node) query pairs; missing entries are 0.

        Same contract (and bounds-check errors) as
        :meth:`~repro.ppr.SparsePPRScores.lookup`; queries are grouped
        by shard so each touched shard is opened once per call.
        """
        slots = np.asarray(slots, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if slots.size != nodes.size:
            raise ValueError(
                f"slots and nodes must align element-wise, got "
                f"{slots.size} slots and {nodes.size} nodes")
        out = np.zeros(slots.size, dtype=np.float32)
        if slots.size == 0:
            return out
        bad_slots = (slots < 0) | (slots >= self.num_rows)
        if bad_slots.any():
            offender = int(slots[bad_slots][0])
            raise IndexError(
                f"slot {offender} out of range for "
                f"{self.num_rows} score rows")
        bad_nodes = (nodes < 0) | (nodes >= self.num_nodes)
        if bad_nodes.any():
            offender = int(nodes[bad_nodes][0])
            raise IndexError(
                f"node {offender} out of range for "
                f"num_nodes={self.num_nodes}")
        shard_ids = self._shard_of_rows(slots)
        for index in np.unique(shard_ids):
            mask = shard_ids == index
            handle = self._handle(int(index))
            keys = handle.lookup_keys(self.num_nodes)
            if keys.size == 0:
                continue
            local = slots[mask] - self._shards[int(index)]["row_start"]
            wanted = local * np.int64(self.num_nodes) + nodes[mask]
            positions = np.searchsorted(keys, wanted)
            positions = np.minimum(positions, keys.size - 1)
            found = keys[positions] == wanted
            values = np.zeros(int(mask.sum()), dtype=np.float32)
            values[found] = handle.values[positions[found]]
            out[mask] = values
        return out

    def dense_columns(self, nodes: np.ndarray) -> np.ndarray:
        """Dense ``(num_rows, len(nodes))`` gather of selected columns."""
        nodes = np.asarray(nodes, dtype=np.int64)
        slots = np.repeat(np.arange(self.num_rows, dtype=np.int64),
                          nodes.size)
        return self.lookup(slots, np.tile(nodes, self.num_rows)) \
            .reshape(self.num_rows, nodes.size)

    def for_user(self, user: int) -> np.ndarray:
        """Densified score vector over all nodes for ``user``."""
        if not self.has_user(user):
            raise KeyError(f"no PPR scores computed for user {user}")
        row = int(self._rows_of([user])[0])
        node_ids, values = self._row_slice(row)
        dense = np.zeros(self.num_nodes, dtype=np.float32)
        dense[node_ids] = values
        return dense

    def residual_for_user(self, user: int) -> np.ndarray:
        """Densified residual vector for ``user`` (requires residuals)."""
        if not self.has_residuals:
            raise ValueError(
                "scores were computed without keep_residuals=True")
        if not self.has_user(user):
            raise KeyError(f"no PPR scores computed for user {user}")
        row = int(self._rows_of([user])[0])
        index = int(self._shard_of_rows(np.asarray([row]))[0])
        handle = self._handle(index)
        local = row - self._shards[index]["row_start"]
        lo, hi = handle.res_indptr[local], handle.res_indptr[local + 1]
        dense = np.zeros(self.num_nodes, dtype=np.float32)
        dense[np.asarray(handle.res_node_ids[lo:hi])] = \
            np.asarray(handle.res_values[lo:hi])
        return dense

    def select(self, users: Sequence[int]) -> SparsePPRScores:
        """Realize the rows for ``users`` as an in-RAM structure.

        Same contract as :meth:`~repro.ppr.SparsePPRScores.select` —
        rows realign to the input order, maintenance metadata stays with
        the store — so the pruner and model see exactly what the RAM
        backend would hand them.
        """
        rows = self._rows_of(users)
        node_chunks: List[np.ndarray] = []
        value_chunks: List[np.ndarray] = []
        lengths = np.empty(rows.size, dtype=np.int64)
        for position, row in enumerate(rows.tolist()):
            node_ids, values = self._row_slice(row)
            node_chunks.append(node_ids)
            value_chunks.append(values)
            lengths[position] = node_ids.size
        return SparsePPRScores(
            users=self.users[rows], num_nodes=self.num_nodes,
            indptr=np.concatenate([[0], np.cumsum(lengths)]),
            node_ids=(np.concatenate(node_chunks) if node_chunks
                      else np.empty(0, dtype=np.int64)),
            values=(np.concatenate(value_chunks) if value_chunks
                    else np.empty(0, dtype=np.float32)),
            residual=self.residual)

    def toarray(self) -> np.ndarray:
        """Full dense matrix (test/debug helper; densifies everything)."""
        return self.select(self.users.tolist()).toarray()

    def normalize_by_degree(self, degrees: np.ndarray) -> None:
        """Divide stored values by ``max(deg(node), 1)``, shard by shard.

        The sharded counterpart of the in-RAM in-place division: each
        shard's value file is rewritten (same float32 arithmetic, so the
        stored entries stay bitwise-identical to the RAM backend's) and
        the manifest is bumped one version.  Open handles are dropped so
        subsequent reads see the new values.
        """
        degrees = np.maximum(np.asarray(degrees, dtype=np.float64), 1.0)
        version = int(self.manifest["version"]) + 1
        stale: List[str] = []
        for index, entry in enumerate(self._shards):
            handle = _ShardHandle(self.directory, entry, self.has_residuals)
            values = np.array(handle.values)  # writable copy of the mmap
            node_ids = np.asarray(handle.node_ids)
            values /= degrees[node_ids].astype(np.float32)
            new_name = f"shard_{index:05d}_v{version}.values.npy"
            np.save(os.path.join(self.directory, new_name), values)
            stale.append(entry["files"]["values"])
            entry["files"]["values"] = new_name
            telemetry.counter("storage.shards_rewritten")
        self.manifest["version"] = version
        _atomic_json(os.path.join(self.directory, MANIFEST_NAME),
                     self.manifest)
        for name in stale:
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                pass
        self._handles.clear()


# ----------------------------------------------------------------------
# Incremental maintenance with targeted shard invalidation
# ----------------------------------------------------------------------

def incremental_push_sharded(ckg, scores: ShardedPPRScores,
                             new_interactions: Sequence[Tuple[int, int]]
                             ) -> IncrementalPushResult:
    """Maintain a sharded store after new interactions (see
    :func:`repro.ppr.incremental_push`, which dispatches here).

    The delta math is the shared chunk kernel of the in-RAM path
    (:func:`repro.ppr.push._apply_delta_chunk`), applied shard by shard
    — shard boundaries are the maintenance chunks.  A shard none of
    whose rows moved is carried into the new manifest untouched
    (``storage.shards_reused``); every other shard is rewritten under
    the bumped version (``storage.shards_rewritten``) and its old files
    are unlinked once the new manifest is on disk.  The returned store
    is a fresh object over the same directory — callers swap it in, and
    concurrent readers of the old object keep their mmap'd data alive.
    """
    if not scores.has_residuals:
        raise ValueError(
            "incremental_push requires scores computed with "
            "keep_residuals=True — residual rows were not stored")
    if scores.num_nodes != ckg.num_nodes:
        raise ValueError(
            f"scores cover {scores.num_nodes} nodes but the graph has "
            f"{ckg.num_nodes} — they belong to different graphs")
    alpha = float(scores.alpha)
    epsilon = float(scores.epsilon)
    pairs = [(int(u), int(i)) for u, i in new_interactions]
    if not pairs:
        raise ValueError("new_interactions must be non-empty")

    with telemetry.span("ppr.incremental_push"):
        new_ckg = ckg.add_interactions(pairs)
        num_nodes = ckg.num_nodes
        ins_heads, ins_tails, deg_at = _delta_edges(ckg, pairs)
        new_degrees = np.diff(new_ckg.indptr)
        inv_degrees = (1.0 - alpha) / np.maximum(new_degrees, 1)
        thresholds = epsilon * new_degrees.astype(np.float64)

        version = int(scores.manifest["version"]) + 1
        new_entries: List[dict] = []
        changed_chunks: List[np.ndarray] = []
        stale_files: List[str] = []
        sweep_ops = 0
        total_residual = 0.0
        reused = rewritten = 0

        for index, entry in enumerate(scores._shards):
            handle = _ShardHandle(scores.directory, entry, True)
            row_start, row_stop = entry["row_start"], entry["row_stop"]
            batch = row_stop - row_start
            estimate = np.zeros((batch, num_nodes))
            residual = np.zeros((batch, num_nodes))
            for local in range(batch):
                lo, hi = handle.indptr[local], handle.indptr[local + 1]
                estimate[local, handle.node_ids[lo:hi]] = \
                    handle.values[lo:hi]
                lo, hi = handle.res_indptr[local], \
                    handle.res_indptr[local + 1]
                residual[local, handle.res_node_ids[lo:hi]] = \
                    handle.res_values[lo:hi]

            ops, touched = _apply_delta_chunk(
                new_ckg, estimate, residual, ins_heads, ins_tails, deg_at,
                alpha, thresholds, new_degrees, inv_degrees)
            sweep_ops += ops
            shard_residual = float(np.abs(residual).sum())
            total_residual += shard_residual
            changed_chunks.append(scores.users[row_start:row_stop][touched])

            if not touched.any():
                new_entries.append(entry)
                reused += 1
                continue
            rewritten += 1
            node_chunks, value_chunks = [], []
            res_node_chunks, res_value_chunks = [], []
            lengths = np.empty(batch, dtype=np.int64)
            res_lengths = np.empty(batch, dtype=np.int64)
            for local in range(batch):
                kept = np.flatnonzero(estimate[local])
                node_chunks.append(kept)
                value_chunks.append(
                    estimate[local, kept].astype(np.float32))
                lengths[local] = kept.size
                res_kept = np.flatnonzero(residual[local])
                res_node_chunks.append(res_kept)
                res_value_chunks.append(
                    residual[local, res_kept].astype(np.float32))
                res_lengths[local] = res_kept.size
            files = _shard_files(index, version, True)
            arrays = {
                "indptr": np.concatenate([[0], np.cumsum(lengths)]),
                "node_ids": (np.concatenate(node_chunks) if node_chunks
                             else np.empty(0, dtype=np.int64)),
                "values": (np.concatenate(value_chunks) if value_chunks
                           else np.empty(0, dtype=np.float32)),
                "res_indptr": np.concatenate([[0], np.cumsum(res_lengths)]),
                "res_node_ids": (np.concatenate(res_node_chunks)
                                 if res_node_chunks
                                 else np.empty(0, dtype=np.int64)),
                "res_values": (np.concatenate(res_value_chunks)
                               if res_value_chunks
                               else np.empty(0, dtype=np.float32)),
            }
            for part, name in files.items():
                np.save(os.path.join(scores.directory, name), arrays[part])
            stale_files.extend(entry["files"].values())
            new_entries.append({
                "row_start": row_start, "row_stop": row_stop,
                "nnz": int(arrays["node_ids"].size),
                "res_nnz": int(arrays["res_node_ids"].size),
                "residual": shard_residual,
                "files": files,
            })

        manifest = dict(scores.manifest)
        manifest["version"] = version
        manifest["residual"] = total_residual
        manifest["shards"] = new_entries
        _atomic_json(os.path.join(scores.directory, MANIFEST_NAME), manifest)
        # Superseded files are unlinked only now; readers of the old
        # store object keep them alive through their mmap handles.
        for name in stale_files:
            try:
                os.unlink(os.path.join(scores.directory, name))
            except OSError:
                pass

        new_scores = ShardedPPRScores(scores.directory,
                                      max_open=scores.max_open)
        push_ops = sweep_ops + int(ins_heads.size)
        telemetry.counter("ppr.push_ops", push_ops)
        telemetry.counter("ppr.incremental_pushes", push_ops)
        telemetry.counter("storage.shards_reused", reused)
        telemetry.counter("storage.shards_rewritten", rewritten)
        telemetry.gauge("ppr.residual_mass", total_residual)
        telemetry.gauge("ppr.score_bytes", new_scores.nbytes)
        telemetry.gauge("storage.shard_bytes", new_scores.nbytes)

    changed_users = (np.concatenate(changed_chunks) if changed_chunks
                     else np.empty(0, dtype=np.int64))
    return IncrementalPushResult(
        ckg=new_ckg, scores=new_scores,
        changed_users=changed_users, push_ops=push_ops)
