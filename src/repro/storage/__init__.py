"""Pluggable PPR score storage: in-RAM arrays or mmap'd shards on disk.

See ``docs/storage.md`` for the shard layout, the manifest schema, and
the RAM-vs-mmap tradeoffs.  The short version: ``ram`` (the default) is
today's :class:`~repro.ppr.SparsePPRScores`; ``mmap`` writes the same
CSR structure as per-chunk ``.npy`` shards and serves reads through a
bounded LRU of memory-mapped handles, so precompute and serving scale
past what fits in memory.
"""

from __future__ import annotations

from ..ppr.push import SparsePPRScores
from .sharded import (DEFAULT_MAX_OPEN, MANIFEST_NAME, OPEN_SHARDS_ENV_VAR,
                      ShardedPPRScores, ShardWriter, incremental_push_sharded)
from .store import (STORE_BACKENDS, STORE_ENV_VAR, ScoreStore, resolve_store,
                    resolve_store_dir)

# The in-RAM structure predates the ABC; register it virtually so
# ``isinstance(scores, ScoreStore)`` covers both backends.
ScoreStore.register(SparsePPRScores)

__all__ = [
    "ScoreStore", "ShardWriter", "ShardedPPRScores",
    "incremental_push_sharded", "resolve_store", "resolve_store_dir",
    "STORE_ENV_VAR", "STORE_BACKENDS", "MANIFEST_NAME",
    "DEFAULT_MAX_OPEN", "OPEN_SHARDS_ENV_VAR",
]
