"""KUCNet core: model, layers, trainer, variants, explanations."""

from .explain import ExplanationEdge, explain, render_explanation
from .layers import AttentionMessagePassing
from .model import KUCNet, KUCNetConfig, Propagation
from .trainer import EpochStats, KUCNetRecommender, TrainConfig
from .variants import (kucnet_adaptive, kucnet_full, kucnet_no_attention,
                       kucnet_no_ppr, kucnet_random)

__all__ = [
    "KUCNet", "KUCNetConfig", "Propagation", "AttentionMessagePassing",
    "KUCNetRecommender", "TrainConfig", "EpochStats",
    "explain", "render_explanation", "ExplanationEdge",
    "kucnet_full", "kucnet_random", "kucnet_no_attention", "kucnet_no_ppr",
    "kucnet_adaptive",
]
