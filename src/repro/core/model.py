"""The KUCNet model (Algorithm 1 of the paper).

Given a layered :class:`~repro.sampling.ComputationGraph` for a batch of
users, the model initializes ``h^0_{u:u} = 0``, runs ``L`` attention
message-passing layers (Eq. 5-6), and reads out pair scores with a linear
map ``ŷ_ui = w^T h^L_{u:i}`` (Eq. 7).  Items the propagation never
reaches score exactly 0, as in Algorithm 1's final step.

Because representations are *relative* (propagated from the user, never
looked up from a node-embedding table), the same parameters score new
items and new users without retraining — the property behind Tables IV-V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Module, Parameter, Tensor, gather_rows
from ..autodiff import init as ad_init
from ..sampling import ComputationGraph
from .layers import AttentionMessagePassing


@dataclass
class KUCNetConfig:
    """Hyper-parameters of KUCNet (§V-A3 ranges)."""

    dim: int = 48
    attn_dim: int = 5
    depth: int = 3
    activation: str = "relu"
    dropout: float = 0.0
    use_attention: bool = True
    seed: int = 0


@dataclass
class Propagation:
    """Result of a forward pass over a computation graph.

    ``hidden[l]`` holds the states of layer ``l``'s node table;
    ``attention[l]`` the per-edge attention weights of layer ``l + 1``'s
    edges (numpy copies, used by the explanation extractor of §V-F).
    """

    graph: ComputationGraph
    hidden: List[Tensor]
    #: per-layer attention copies, or ``None`` entries when the forward
    #: pass ran with ``collect_attention=False`` (the default hot path)
    attention: List[Optional[np.ndarray]]


class KUCNet(Module):
    """Knowledge-enhanced User-Centric subgraph Network.

    Parameters
    ----------
    num_relations:
        Total CKG relation count (reverse twins included).
    config:
        Model hyper-parameters.
    """

    def __init__(self, num_relations: int, config: Optional[KUCNetConfig] = None):
        super().__init__()
        self.config = config or KUCNetConfig()
        rng = np.random.default_rng(self.config.seed)
        self.layers = [
            AttentionMessagePassing(
                dim=self.config.dim,
                attn_dim=self.config.attn_dim,
                num_relations=num_relations,
                activation=self.config.activation,
                use_attention=self.config.use_attention,
                dropout=self.config.dropout,
                rng=rng,
            )
            for _ in range(self.config.depth)
        ]
        self.readout = Parameter(
            ad_init.xavier_uniform((self.config.dim,), rng=rng), name="readout")

    # ------------------------------------------------------------------
    def propagate(self, graph: ComputationGraph,
                  collect_attention: bool = False) -> Propagation:
        """Run ``L`` layers of message passing over ``graph``.

        The graph's depth must equal the model's configured depth.
        ``collect_attention`` keeps per-edge attention copies for the
        interpretability path (:func:`~repro.core.explain.explain`);
        the training/eval hot loops leave it off.
        """
        if graph.depth != self.config.depth:
            raise ValueError(
                f"graph depth {graph.depth} != model depth {self.config.depth}"
            )
        # h^0 = 0 for the user rows (Algorithm 1 line 1).
        hidden: List[Tensor] = [Tensor(np.zeros((graph.layer_size(0), self.config.dim)))]
        attention: List[Optional[np.ndarray]] = []
        for level, layer in enumerate(self.layers, start=1):
            state, alpha = layer(hidden[-1], graph.layers[level - 1],
                                 graph.layer_size(level),
                                 collect_attention=collect_attention)
            hidden.append(state)
            attention.append(alpha)
        return Propagation(graph=graph, hidden=hidden, attention=attention)

    # ------------------------------------------------------------------
    def pair_scores(self, propagation: Propagation, slots: np.ndarray,
                    item_nodes: np.ndarray) -> Tensor:
        """Differentiable scores ``ŷ`` for (slot, item-node) pairs (Eq. 7).

        Pairs whose item was not reached score exactly 0 (their gradient
        path is masked out), matching Algorithm 1.
        """
        graph = propagation.graph
        final_hidden = propagation.hidden[-1]
        rows = graph.rows_for_pairs(graph.depth, slots, item_nodes)
        found = rows >= 0
        safe_rows = np.where(found, rows, 0)
        gathered = gather_rows(final_hidden, safe_rows)
        scores = gathered @ self.readout
        mask = Tensor(found.astype(np.float64))
        return scores * mask

    def score_all_items(self, propagation: Propagation,
                        item_nodes: np.ndarray) -> np.ndarray:
        """Inference-time scores of shape ``(num_slots, num_items)``.

        ``item_nodes[i]`` is the CKG node of item ``i``.  Unreached items
        score 0.  No gradients are tracked.
        """
        graph = propagation.graph
        final_hidden = propagation.hidden[-1].data
        values = final_hidden @ self.readout.data

        node_to_item = np.full(graph.num_ckg_nodes, -1, dtype=np.int64)
        node_to_item[item_nodes] = np.arange(item_nodes.size)

        scores = np.zeros((graph.num_users, item_nodes.size))
        last = graph.depth
        row_items = node_to_item[graph.nodes[last]]
        keep = row_items >= 0
        scores[graph.slots[last][keep], row_items[keep]] = values[keep]
        return scores
