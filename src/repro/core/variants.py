"""Factory functions for the KUCNet variants studied in Table IX / Fig. 6.

Each returns a configured :class:`KUCNetRecommender`:

* :func:`kucnet_full` — PPR pruning + attention (the proposed method);
* :func:`kucnet_random` — random edge sampling instead of PPR (Table IX);
* :func:`kucnet_no_attention` — attention fixed to 1 (Table IX);
* :func:`kucnet_no_ppr` — unpruned user-centric graphs (Fig. 6's
  "KUCNet-w.o.-PPR" cost baseline).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .model import KUCNetConfig
from .trainer import KUCNetRecommender, TrainConfig


def kucnet_full(model_config: Optional[KUCNetConfig] = None,
                train_config: Optional[TrainConfig] = None) -> KUCNetRecommender:
    """The proposed KUCNet: PPR top-K pruning + attention messages."""
    return KUCNetRecommender(model_config or KUCNetConfig(),
                             train_config or TrainConfig())


def kucnet_random(model_config: Optional[KUCNetConfig] = None,
                  train_config: Optional[TrainConfig] = None) -> KUCNetRecommender:
    """KUCNet-random: uniform edge sampling replaces PPR scores."""
    base = train_config or TrainConfig()
    return KUCNetRecommender(model_config or KUCNetConfig(),
                             replace(base, sampler="random"))


def kucnet_no_attention(model_config: Optional[KUCNetConfig] = None,
                        train_config: Optional[TrainConfig] = None) -> KUCNetRecommender:
    """KUCNet-w.o.-Attn: messages aggregated with uniform weights."""
    base = model_config or KUCNetConfig()
    return KUCNetRecommender(replace(base, use_attention=False),
                             train_config or TrainConfig())


def kucnet_no_ppr(model_config: Optional[KUCNetConfig] = None,
                  train_config: Optional[TrainConfig] = None) -> KUCNetRecommender:
    """KUCNet-w.o.-PPR: full (unpruned) user-centric computation graphs."""
    base = train_config or TrainConfig()
    return KUCNetRecommender(model_config or KUCNetConfig(),
                             replace(base, k=None))


def kucnet_adaptive(model_config: Optional[KUCNetConfig] = None,
                    train_config: Optional[TrainConfig] = None,
                    schedule: Optional[tuple] = None) -> KUCNetRecommender:
    """KUCNet with an AdaProp-style per-layer budget schedule ([40]).

    Defaults to a tightening schedule: the first layer keeps the full
    budget and deeper (exponentially wider) layers get smaller ones,
    which bounds the multiplicative growth the depth ablation pays for.
    """
    model = model_config or KUCNetConfig()
    base = train_config or TrainConfig()
    if schedule is None:
        top = base.k if isinstance(base.k, int) else 20
        schedule = tuple(max(3, top // (1 << level))
                         for level in range(model.depth))
    if len(schedule) != model.depth:
        raise ValueError(f"schedule length {len(schedule)} != depth "
                         f"{model.depth}")
    return KUCNetRecommender(model, replace(base, k=tuple(schedule)))
