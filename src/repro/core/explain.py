"""Interpretability: extract attention-weighted explanation subgraphs (§V-F).

The paper visualizes, for a (user, item) pair, the edges of the pruned
user-centric computation graph whose attention weight exceeds a threshold
(0.5 in Fig. 7), restricted to paths that actually reach the recommended
item.  :func:`explain` performs that backward trace and returns the
explanation as structured records; :func:`render_explanation` formats it
as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph import CollaborativeKG
from .model import Propagation


@dataclass
class ExplanationEdge:
    """One edge of an explanation subgraph."""

    layer: int                  # 1-based message-passing layer
    head: int                   # CKG node id
    relation: int               # CKG relation id
    tail: int                   # CKG node id
    attention: float

    def describe(self, ckg: CollaborativeKG) -> str:
        return (f"L{self.layer}: {_node_label(ckg, self.head)} "
                f"--[{ckg.relation_name(self.relation)} "
                f"{self.attention:.2f}]--> {_node_label(ckg, self.tail)}")


def explain(propagation: Propagation, ckg: CollaborativeKG, slot: int,
            item: int, threshold: float = 0.5) -> List[ExplanationEdge]:
    """Trace high-attention paths from the user to ``item``.

    Parameters
    ----------
    propagation:
        Output of :meth:`KUCNet.propagate` over the user's graph.
    ckg:
        The collaborative KG (for node/relation mapping).
    slot:
        Which user slot of the batched graph to explain.
    item:
        The recommended item id.
    threshold:
        Minimum attention weight for an edge to be kept (paper uses 0.5).

    Returns
    -------
    Edges sorted by layer then descending attention.  Empty if the item
    was never reached.
    """
    graph = propagation.graph
    if any(weights is None for weights in propagation.attention):
        raise ValueError(
            "propagation carries no attention values — re-run propagate/"
            "propagate_users with collect_attention=True before explain()")
    item_node = ckg.item_node(item)
    target_rows = {int(row) for row in
                   graph.rows_for_pairs(graph.depth, np.asarray([slot]),
                                        np.asarray([item_node]))
                   if row >= 0}
    if not target_rows:
        return []

    edges: List[ExplanationEdge] = []
    wanted_dst = target_rows
    for level in range(graph.depth, 0, -1):
        layer = graph.layers[level - 1]
        attention = propagation.attention[level - 1]
        if layer.num_edges == 0:
            break
        keep = (np.isin(layer.dst_pos, np.fromiter(wanted_dst, dtype=np.int64,
                                                   count=len(wanted_dst)))
                & (attention >= threshold))
        kept = np.flatnonzero(keep)
        for edge in kept:
            edges.append(ExplanationEdge(
                layer=level,
                head=int(layer.heads[edge]),
                relation=int(layer.relations[edge]),
                tail=int(layer.tails[edge]),
                attention=float(attention[edge]),
            ))
        wanted_dst = {int(pos) for pos in layer.src_pos[kept]}
        if not wanted_dst:
            break

    edges.sort(key=lambda e: (e.layer, -e.attention))
    return edges


def render_explanation(edges: List[ExplanationEdge],
                       ckg: CollaborativeKG) -> str:
    """Human-readable multi-line rendering of an explanation."""
    if not edges:
        return "(no explanation: item not reached above threshold)"
    return "\n".join(edge.describe(ckg) for edge in edges)


def explanation_to_dot(edges: List[ExplanationEdge], ckg: CollaborativeKG,
                       title: str = "explanation") -> str:
    """Render an explanation as Graphviz DOT (the Fig. 7 visual style).

    Nodes are shaped by kind (users: ellipses, items: boxes, entities:
    diamonds); edge labels carry the relation name and attention weight.
    """
    lines = [f'digraph "{title}" {{', "  rankdir=LR;"]
    nodes = {edge.head for edge in edges} | {edge.tail for edge in edges}
    for node in sorted(nodes):
        label = _node_label(ckg, node)
        if ckg.is_user_node(node):
            shape = "ellipse"
        elif ckg.node_to_item(node) is not None:
            shape = "box"
        else:
            shape = "diamond"
        lines.append(f'  n{node} [label="{label}", shape={shape}];')
    for edge in edges:
        lines.append(
            f'  n{edge.head} -> n{edge.tail} '
            f'[label="{ckg.relation_name(edge.relation)} '
            f'{edge.attention:.2f}"];')
    lines.append("}")
    return "\n".join(lines)


def _node_label(ckg: CollaborativeKG, node: int) -> str:
    if ckg.is_user_node(node):
        return f"user_{node}"
    item = ckg.node_to_item(node)
    if item is not None:
        return f"item_{item}"
    return f"entity_{node - ckg.num_users}"
