"""KUCNet's attention-based message-passing layer (Eq. 5-6 of the paper).

One layer ``l`` owns:

* per-layer relation embeddings ``h_r^l`` (a lookup table over the CKG's
  relation ids, reverse twins included);
* the message transform ``W^l``;
* the attention parameters ``w_α^l``, ``W_αs^l``, ``W_αr^l``, ``b_α``.

The forward pass computes, for every edge ``(n_s, r, n_o)`` of the layer,

    α = sigmoid(w_α^T ReLU(W_αs h_src + W_αr h_r + b_α))        (attention)
    m = α · W^l (h_src + h_r)                                    (message)

and aggregates messages into destination nodes with a segment sum,
followed by the activation ``δ`` (Eq. 5).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autodiff import (Dropout, Embedding, Linear, Module, Parameter,
                        Tensor, fused_attention_messages, fusion_enabled,
                        gather_rows, segment_sum)
from ..autodiff import init as ad_init
from ..sampling import LayerEdges

ACTIVATIONS = ("identity", "relu", "tanh")


class AttentionMessagePassing(Module):
    """One KUCNet propagation layer (Eq. 5-6).

    Parameters
    ----------
    dim:
        Hidden dimension ``d``.
    attn_dim:
        Attention hidden dimension ``d_α`` (paper tunes in {3, 5}).
    num_relations:
        Total relation count of the CKG (reverse twins included).
    activation:
        ``δ`` in Eq. (5): ``identity``, ``relu``, or ``tanh``.
    use_attention:
        ``False`` fixes ``α = 1`` — the ``KUCNet-w.o.-Attn`` ablation of
        Table IX.
    dropout:
        Dropout rate applied to aggregated node states.
    """

    def __init__(self, dim: int, attn_dim: int, num_relations: int,
                 activation: str = "relu", use_attention: bool = True,
                 dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if activation not in ACTIVATIONS:
            raise ValueError(f"activation must be one of {ACTIVATIONS}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.activation = activation
        self.use_attention = use_attention

        self.relation_embedding = Embedding(num_relations, dim, rng=rng)
        self.message_transform = Linear(dim, dim, bias=False, rng=rng)
        self.attn_source = Linear(dim, attn_dim, bias=False, rng=rng)
        self.attn_relation = Linear(dim, attn_dim, bias=False, rng=rng)
        self.attn_bias = Parameter(np.zeros(attn_dim), name="attn_bias")
        self.attn_vector = Parameter(
            ad_init.xavier_uniform((attn_dim,), rng=rng), name="attn_vector")
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, hidden_prev: Tensor, edges: LayerEdges,
                num_dst: int,
                collect_attention: bool = False) -> Tuple[Tensor, Optional[np.ndarray]]:
        """Propagate one layer.

        Parameters
        ----------
        hidden_prev:
            ``(num_prev_nodes, dim)`` states of the previous layer's table.
        edges:
            This layer's edge list (positions into the node tables).
        num_dst:
            Row count of this layer's node table.
        collect_attention:
            Return the per-edge attention weights as a numpy copy for
            the interpretability path (§V-F).  Off by default — the
            training hot loop never consumes them, so it skips the
            ``(E,)`` copy.

        Returns
        -------
        ``(hidden, attention)`` where ``hidden`` is ``(num_dst, dim)``
        and ``attention`` the per-edge weights, or ``None`` unless
        ``collect_attention``.
        """
        if edges.num_edges == 0:
            zero = Tensor(np.zeros((num_dst, self.dim)))
            return zero, (np.empty(0) if collect_attention else None)

        if fusion_enabled():
            aggregated, attention_values = fused_attention_messages(
                hidden_prev, edges.src_pos, edges.relations, edges.dst_pos,
                num_dst,
                relation_weight=self.relation_embedding.weight,
                message_weight=self.message_transform.weight,
                attn_source_weight=self.attn_source.weight,
                attn_relation_weight=self.attn_relation.weight,
                attn_bias=self.attn_bias,
                attn_vector=self.attn_vector,
                use_attention=self.use_attention,
                collect_attention=collect_attention)
        else:
            # Reference composition (REPRO_FUSED=0); the fused kernel is
            # verified bitwise-identical to this path.
            h_src = gather_rows(hidden_prev, edges.src_pos)
            h_rel = self.relation_embedding(edges.relations)

            if self.use_attention:
                attn_hidden = (self.attn_source(h_src) + self.attn_relation(h_rel)
                               + self.attn_bias).relu()
                alpha = (attn_hidden @ self.attn_vector).sigmoid()
                messages = self.message_transform(h_src + h_rel) * alpha.reshape(-1, 1)
                attention_values = alpha.data.copy() if collect_attention else None
            else:
                messages = self.message_transform(h_src + h_rel)
                attention_values = (np.ones(edges.num_edges)
                                    if collect_attention else None)

            aggregated = segment_sum(messages, edges.dst_pos, num_dst)

        activated = self._activate(aggregated)
        return self.dropout(activated), attention_values

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return x.relu()
        if self.activation == "tanh":
            return x.tanh()
        return x
