"""Training and inference driver for KUCNet (§IV-D of the paper).

:class:`KUCNetRecommender` packages the full pipeline:

1. build the CKG over the *training* interactions;
2. precompute PPR scores for every user (the one-time preprocessing of
   Table VI);
3. optimize the BPR loss (Eq. 14) with Adam over (user, i+, i-) triplets,
   evaluating whole user batches on their shared pruned user-centric
   computation graphs;
4. score all items per user for the all-ranking evaluation.

Variants (Table IX / Fig. 6) are selected by configuration:

* ``sampler="random"`` → KUCNet-random;
* ``use_attention=False`` → KUCNet-w.o.-Attn;
* ``k=None`` → KUCNet-w.o.-PPR (no pruning).
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..autodiff import Adam, bpr_loss
from ..data import Split
from ..engine import (EarlyStopping, Engine, EpochCallback, EpochStats,
                      History, ProgressLogger, TelemetryHook)
from ..graph import CollaborativeKG
from ..health import HealthConfig, HealthHook, HealthMonitor, check_ppr_residual
from ..parallel import chunk_sequence, resolve_workers, run_parallel
from ..ppr import (PPRScoreLike, concat_sparse_scores, forward_push_batch,
                   forward_push_sharded, personalized_pagerank_batch,
                   personalized_pagerank_mmap)
from ..sampling import ComputationGraph, build_user_centric_graph
from .model import KUCNet, KUCNetConfig, Propagation

#: rejection-resampling attempts per batch before the negative sampler
#: switches to exact set-difference sampling (see :meth:`_sample_pairs`)
MAX_NEGATIVE_RESAMPLES = 32


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (§V-A3 search ranges)."""

    epochs: int = 12
    batch_users: int = 24
    #: (i+, i-) pairs sampled per user per epoch
    pairs_per_user: int = 4
    learning_rate: float = 5e-3
    weight_decay: float = 1e-5
    #: PPR top-K edge budget per head node; ``None`` disables pruning.
    #: A sequence of per-layer budgets (length ``depth``) selects an
    #: AdaProp-style adaptive propagation schedule (the paper's [40]).
    k: Optional[int] = 20
    sampler: str = "ppr"
    ppr_alpha: float = 0.15
    ppr_iterations: int = 20
    #: PPR solver backend: ``"power"`` is the paper's dense Eq. 13
    #: iteration (O(U x N) score storage); ``"push"`` is sparse
    #: Andersen-Chung-Lang forward push with top-M storage (O(U x M),
    #: sublinear compute per user) — see ``docs/performance.md``.
    ppr_method: str = "power"
    #: forward-push residual threshold (``ppr_method="push"`` only);
    #: per-node score underestimation is at most ``epsilon * deg(node)``.
    ppr_epsilon: float = 1e-4
    #: retained score entries per user (``ppr_method="push"`` only)
    ppr_top_m: int = 256
    #: early-stop tolerance for the power iteration's max-norm update;
    #: saved sweeps show up in the ``ppr.sweeps`` counter.  The default
    #: is small enough to never fire within the paper's 20 iterations,
    #: so it only trims configs that raise ``ppr_iterations``.
    ppr_tolerance: float = 1e-9
    #: users processed per preprocessing chunk (bounds peak temporary
    #: memory for both backends)
    ppr_chunk_users: int = 64
    #: score/graph storage backend: ``"ram"`` keeps today's in-memory
    #: arrays; ``"mmap"`` writes per-chunk ``.npy`` shards (push) or a
    #: dense ``.npy`` memmap (power) plus an npy-mmap CKG, and serves
    #: reads off disk — bitwise-identical results, bounded RSS (see
    #: ``docs/storage.md``).  ``None`` defers to ``$REPRO_PPR_STORE``.
    ppr_store: Optional[str] = None
    #: directory for the mmap tier's files.  ``None`` uses a fresh
    #: tempdir reclaimed when the recommender is garbage-collected; an
    #: explicit path is created if missing and left behind.
    ppr_store_dir: Optional[str] = None
    #: rank pruned edges by ``r_u[v] / deg(v)`` instead of raw PPR mass.
    #: On the symmetrized CKG, walk reversibility makes the
    #: degree-normalized score proportional to the probability that a
    #: walk *from v* reaches u — i.e. the "importance of other nodes to
    #: the target node" the paper asks PPR for (§II-A) — whereas raw
    #: mass is confounded by global popularity.  Markedly better in the
    #: new-item setting (see EXPERIMENTS.md).
    ppr_degree_normalized: bool = True
    #: bound on the per-batch computation-graph cache (LRU eviction).
    #: Batches have stable membership across epochs (only their *order*
    #: is permuted), so any bound >= the number of batches per epoch
    #: gives a 100% hit rate from epoch 2 on.
    graph_cache_entries: int = 64
    #: worker processes for per-user-chunk fan-out (PPR precompute).
    #: ``None`` defers to ``$REPRO_NUM_WORKERS``; 1 is the serial fast
    #: path with zero pool overhead.  Results are bitwise-identical
    #: either way (see ``docs/performance.md``).
    num_workers: Optional[int] = None
    seed: int = 0
    verbose: bool = False
    #: stop early when the epoch loss has not improved for this many
    #: epochs (``None`` disables).  The paper selects hyper-parameters by
    #: training loss with a 30-epoch cap (§V-A3); this implements the
    #: corresponding loss-plateau stopping rule.
    patience: Optional[int] = None
    #: minimum relative loss improvement that resets the patience counter
    min_improvement: float = 1e-3
    #: training-health monitoring (:mod:`repro.health`): ``None`` is off;
    #: ``"warn"`` surfaces alerts as RuntimeWarnings, ``"raise"``
    #: escalates fatal alerts (NaN/Inf loss or gradients) to
    #: :class:`~repro.health.HealthError`.  When on, a
    #: :class:`~repro.health.HealthHook` rides the engine loop and the
    #: monitor lands on ``self.health_monitor`` after ``fit``.
    health_policy: Optional[str] = None


class KUCNetRecommender:
    """End-to-end KUCNet: ``fit`` on a split, then ``score_users``.

    Parameters
    ----------
    model_config / train_config:
        Hyper-parameters; defaults follow the paper's common settings
        (L=3, PPR pruning, Adam + BPR).
    """

    def __init__(self, model_config: Optional[KUCNetConfig] = None,
                 train_config: Optional[TrainConfig] = None):
        self.model_config = model_config or KUCNetConfig()
        self.train_config = train_config or TrainConfig()
        self.model: Optional[KUCNet] = None
        self.ckg: Optional[CollaborativeKG] = None
        #: dense ``(num_users, num_nodes)`` ndarray (``ppr_method="power"``)
        #: or :class:`~repro.ppr.SparsePPRScores` (``"push"``)
        self.ppr_scores: Optional[PPRScoreLike] = None
        self.optimizer: Optional[Adam] = None
        #: populated when ``train_config.health_policy`` is set
        self.health_monitor: Optional[HealthMonitor] = None
        self.history: List[EpochStats] = []
        self.ppr_seconds: float = 0.0
        self._graph_cache: "OrderedDict[Tuple[int, ...], ComputationGraph]" = \
            OrderedDict()
        self.graph_cache_hits: int = 0
        self.graph_cache_misses: int = 0
        self._rng = np.random.default_rng(self.train_config.seed)

    # ------------------------------------------------------------------
    def prepare(self, split: Split) -> None:
        """Build the CKG and PPR scores without training (preprocessing)."""
        if (self.health_monitor is None
                and self.train_config.health_policy is not None):
            self.health_monitor = HealthMonitor(
                HealthConfig(policy=self.train_config.health_policy))
        self.ckg = split.dataset.build_ckg(split.train)
        self._setup_store()
        with telemetry.span("ppr.precompute") as ppr_span:
            self.ppr_scores = self._compute_ppr_scores()
        self.ppr_seconds = ppr_span.elapsed
        residual = getattr(self.ppr_scores, "residual", None)
        if self.health_monitor is not None and residual is not None:
            check_ppr_residual(residual, self.ckg.num_users,
                               self.health_monitor)
        if self.train_config.ppr_degree_normalized:
            degrees = np.diff(self.ckg.indptr).astype(np.float64)
            # np.memmap subclasses ndarray, so its branch must come
            # first — the ndarray branch would densify the whole matrix
            # into RAM, defeating the out-of-core tier.
            if isinstance(self.ppr_scores, np.memmap):
                self.ppr_scores = _normalize_memmap(self.ppr_scores,
                                                    degrees)
            elif isinstance(self.ppr_scores, np.ndarray):
                self.ppr_scores = self.ppr_scores / np.maximum(degrees, 1.0)[None, :]
            else:
                self.ppr_scores.normalize_by_degree(degrees)
        self.model = KUCNet(self.ckg.num_relations, self.model_config)
        self._graph_cache.clear()
        self.graph_cache_hits = 0
        self.graph_cache_misses = 0
        self._split = split
        self._train_item_pool = np.unique(split.train.items)
        # Per-user sorted positives, cached once: the pair sampler draws
        # from these every batch of every epoch.
        self._user_positives = {
            int(user): np.asarray(sorted(split.train.positives(user)),
                                  dtype=np.int64)
            for user in split.train.users_with_interactions()
        }

    def _setup_store(self) -> None:
        """Resolve the storage backend; under mmap, move the CKG to disk.

        The saved-then-reopened CKG holds the exact arrays of the
        in-RAM graph (CSR order included), so everything downstream is
        bitwise-unchanged — but edge arrays are served from memory maps
        and workers pickle the graph by path.  Auto-created store
        directories are reclaimed when the recommender is collected.
        """
        from ..storage import resolve_store, resolve_store_dir
        self.ppr_store = resolve_store(self.train_config.ppr_store)
        self.ppr_store_dir: Optional[str] = None
        if self.ppr_store != "mmap":
            return
        self.ppr_store_dir = resolve_store_dir(self.train_config.ppr_store_dir)
        if not self.train_config.ppr_store_dir:
            import shutil
            import weakref
            weakref.finalize(self, shutil.rmtree, self.ppr_store_dir,
                             ignore_errors=True)
        ckg_dir = os.path.join(self.ppr_store_dir, "ckg")
        self.ckg.save_npy(ckg_dir)
        from ..graph import load_npy
        self.ckg = load_npy(ckg_dir)

    def _compute_ppr_scores(self) -> PPRScoreLike:
        """One-time PPR preprocessing (Table VI), in bounded-memory chunks.

        ``ppr_method="power"`` runs the dense Eq. 13 iteration per user
        chunk (peak temporary memory O(chunk x N) instead of O(U x N) on
        top of the dense result); ``"push"`` runs sparse forward push,
        whose output stays O(U x M).  Either way ``ppr.score_bytes``
        records the resident score footprint.

        With ``num_workers > 1`` the per-chunk solves fan out across a
        process pool (:mod:`repro.parallel`).  Chunk boundaries are the
        same ``ppr_chunk_users`` the serial loop uses and chunks are
        solved independently on either path, so the assembled scores —
        and the merged ``ppr.*`` counters — are bitwise-identical to
        the serial run.
        """
        config = self.train_config
        if config.ppr_method not in ("power", "push"):
            raise ValueError(f"unknown ppr_method {config.ppr_method!r}")
        users = np.arange(self.ckg.num_users)
        chunk = max(1, int(config.ppr_chunk_users))
        workers = resolve_workers(config.num_workers)
        chunks = chunk_sequence(users, chunk)
        mmap = self.ppr_store == "mmap"
        if config.ppr_method == "push":
            if workers > 1 and len(chunks) > 1:
                parts = run_parallel(
                    _ppr_push_chunk, chunks,
                    context=(self.ckg, config.ppr_alpha, config.ppr_epsilon,
                             config.ppr_top_m),
                    num_workers=workers, label="ppr.push")
                if mmap:
                    from ..storage import ShardWriter
                    writer = ShardWriter(
                        os.path.join(self.ppr_store_dir, "scores"),
                        self.ckg.num_nodes, overwrite=True)
                    for part in parts:
                        writer.append(part)
                    scores = writer.finalize(alpha=config.ppr_alpha,
                                             epsilon=config.ppr_epsilon)
                else:
                    scores = concat_sparse_scores(parts)
                # Per-chunk gauge writes are chunk-local; restate the
                # whole-population values the serial call would record.
                telemetry.gauge("ppr.residual_mass", scores.residual)
                telemetry.gauge("ppr.score_bytes", scores.nbytes)
                return scores
            if mmap:
                return forward_push_sharded(
                    self.ckg, users,
                    os.path.join(self.ppr_store_dir, "scores"),
                    alpha=config.ppr_alpha, epsilon=config.ppr_epsilon,
                    top_m=config.ppr_top_m, chunk_users=chunk,
                    overwrite=True)
            return forward_push_batch(
                self.ckg, users, alpha=config.ppr_alpha,
                epsilon=config.ppr_epsilon, top_m=config.ppr_top_m,
                chunk_users=chunk)
        if mmap and not (workers > 1 and len(chunks) > 1):
            return personalized_pagerank_mmap(
                self.ckg, users,
                os.path.join(self.ppr_store_dir, "power_scores.npy"),
                alpha=config.ppr_alpha, iterations=config.ppr_iterations,
                chunk_users=chunk, tolerance=config.ppr_tolerance)
        adjacency = self.ckg.normalized_adjacency()
        if mmap:
            out_path = os.path.join(self.ppr_store_dir, "power_scores.npy")
            dense = np.lib.format.open_memmap(
                out_path, mode="w+", dtype=np.float64,
                shape=(users.size, self.ckg.num_nodes))
        else:
            dense = np.empty((users.size, self.ckg.num_nodes))
        if workers > 1 and len(chunks) > 1:
            parts = run_parallel(
                _ppr_power_chunk, chunks,
                context=(self.ckg, adjacency, config.ppr_alpha,
                         config.ppr_iterations, config.ppr_tolerance),
                num_workers=workers, label="ppr.power")
            offset = 0
            for piece, part in zip(chunks, parts):
                dense[offset:offset + piece.size] = part
                offset += piece.size
        else:
            for start in range(0, users.size, chunk):
                part = personalized_pagerank_batch(
                    self.ckg, users[start:start + chunk],
                    alpha=config.ppr_alpha, iterations=config.ppr_iterations,
                    adjacency=adjacency, tolerance=config.ppr_tolerance)
                dense[start:start + chunk] = part.scores
        if mmap:
            dense.flush()
            del dense
            dense = np.load(out_path, mmap_mode="r")
        telemetry.gauge("ppr.score_bytes", dense.nbytes)
        return dense

    def _ppr_rows(self, users: Sequence[int]) -> PPRScoreLike:
        """Score rows for ``users`` in input order, on either backend."""
        if isinstance(self.ppr_scores, np.ndarray):
            return self.ppr_scores[list(users)]
        return self.ppr_scores.select(users)

    def fit(self, split: Split,
            callback: Optional[Callable[[EpochStats], None]] = None) -> "KUCNetRecommender":
        """Train with BPR (Eq. 14); ``callback`` fires after each epoch."""
        with telemetry.span("train.fit"):
            return self._fit(split, callback)

    def _fit(self, split: Split,
             callback: Optional[Callable[[EpochStats], None]]) -> "KUCNetRecommender":
        self.prepare(split)
        config = self.train_config
        self.optimizer = self.make_optimizer()

        train_users = [user for user in split.train.users_with_interactions()]
        history = History()
        hooks = [TelemetryHook(), history]
        if self.health_monitor is not None:
            hooks.insert(1, HealthHook(self.health_monitor,
                                       module=self.model))
        if config.verbose:
            hooks.append(ProgressLogger())
        if callback is not None:
            hooks.append(EpochCallback(callback))
        if config.patience is not None:
            hooks.append(EarlyStopping(patience=config.patience,
                                       min_improvement=config.min_improvement))
        # Run-registry commit on fit end ($REPRO_RUNS_DIR, see
        # repro.runstore).  Imported lazily: runstore sits above bench,
        # which imports this module.  Appended after History so the
        # committed manifest sees the full epoch history.
        from ..runstore import (RunRecorderHook, active_store,
                                auto_commit_suppressed)
        if active_store() is not None and not auto_commit_suppressed():
            def _manifest() -> telemetry.RunManifest:
                metrics = {"epochs_run": len(history.stats)}
                if history.stats:
                    metrics["final_loss"] = float(history.stats[-1].loss)
                return telemetry.RunManifest(
                    run="train:kucnet", seed=config.seed, config=config,
                    dataset=split.dataset.statistics(), metrics=metrics)

            hooks.append(RunRecorderHook(
                _manifest, health_monitor=self.health_monitor))
        engine = Engine(self.optimizer, hooks=hooks)
        self.history = history.stats
        engine.fit(step=lambda users: self._train_step(users, split),
                   batches=lambda epoch: self._epoch_batches(train_users),
                   epochs=config.epochs)
        return self

    def make_optimizer(self) -> Adam:
        """Adam configured from the train config (shared with benches)."""
        if self.model is None:
            raise RuntimeError("call prepare(split) before make_optimizer()")
        return Adam(self.model.parameters(), lr=self.train_config.learning_rate,
                    weight_decay=self.train_config.weight_decay)

    def run_epoch(self, split: Split, optimizer: Adam,
                  train_users: Optional[Sequence[int]] = None
                  ) -> Tuple[float, float]:
        """Run one BPR training epoch; returns ``(mean_loss, seconds)``.

        Requires :meth:`prepare` to have been called (``fit`` does both).
        Exposed separately so benchmarks can time the steady-state epoch
        in isolation from the one-time CKG/PPR preprocessing.
        """
        if self.model is None:
            raise RuntimeError("call prepare(split) before run_epoch()")
        if train_users is None:
            train_users = list(split.train.users_with_interactions())
        engine = Engine(optimizer, hooks=[TelemetryHook()])
        stats = engine.run_epoch(
            step=lambda users: self._train_step(users, split),
            batches=lambda epoch: self._epoch_batches(train_users),
            epoch=0)
        return stats.loss, stats.seconds

    def _epoch_batches(self, train_users: Sequence[int]) -> List[Tuple[int, ...]]:
        """One epoch's user batches, permuted with the training RNG.

        Batches keep stable *membership* across epochs — only their
        order is shuffled.  Shuffling membership instead (one
        permutation over users per epoch) would make every epoch's
        batch tuples unique, so the per-batch graph cache of
        `_graph_for` would never hit and grow by one graph per batch
        per epoch, unbounded on long runs.
        """
        config = self.train_config
        batches = [tuple(train_users[start:start + config.batch_users])
                   for start in range(0, len(train_users), config.batch_users)]
        order = self._rng.permutation(len(batches))
        return [batches[index] for index in order]

    def _train_step(self, users: Sequence[int], split: Split):
        """Loss for one user batch (the engine owns the optimizer cycle)."""
        graph = self._graph_for(tuple(users))
        self.model.train()
        with telemetry.span("train.forward"):
            propagation = self.model.propagate(graph)

            slots, pos_nodes, neg_nodes = self._sample_pairs(users, split)
            if slots.size == 0:
                return None
            pos_scores = self.model.pair_scores(propagation, slots, pos_nodes)
            neg_scores = self.model.pair_scores(propagation, slots, neg_nodes)
            loss = bpr_loss(pos_scores, neg_scores)
        telemetry.counter("train.pairs", slots.size)
        return loss

    def _sample_pairs(self, users: Sequence[int], split: Split):
        """Sample (slot, i+, i-) training triplets for a user batch.

        Negatives are drawn from the *training item pool* (items with at
        least one observed interaction), the standard BPR practice; items
        that only exist in the KG are never pushed down, which matters in
        the new-item setting (§V-C) where such items are the test set.
        """
        config = self.train_config
        if not hasattr(self, "_train_item_pool"):
            self._train_item_pool = np.unique(split.train.items)
        if not hasattr(self, "_user_positives"):
            self._user_positives = {}
        pool = self._train_item_pool
        slot_chunks: List[np.ndarray] = []
        pos_chunks: List[np.ndarray] = []
        neg_chunks: List[np.ndarray] = []
        for slot, user in enumerate(users):
            user_positives = self._user_positives.get(int(user))
            if user_positives is None:
                user_positives = np.asarray(sorted(split.train.positives(user)),
                                            dtype=np.int64)
                self._user_positives[int(user)] = user_positives
            if user_positives.size == 0:
                continue
            chosen = self._rng.choice(user_positives,
                                      size=config.pairs_per_user)
            negatives = pool[self._rng.integers(pool.size,
                                                size=config.pairs_per_user)]
            # Rejection-resample the (few) negatives that hit one of the
            # user's observed interactions; user_positives is sorted, so
            # membership is a binary search.  The attempt cap guards the
            # pathological user whose positives cover the whole pool —
            # unbounded resampling would never terminate there.
            collides = np.isin(negatives, user_positives)
            attempts = 0
            while collides.any() and attempts < MAX_NEGATIVE_RESAMPLES:
                negatives[collides] = pool[self._rng.integers(
                    pool.size, size=int(collides.sum()))]
                collides = np.isin(negatives, user_positives)
                attempts += 1
            if collides.any():
                candidates = np.setdiff1d(pool, user_positives)
                if candidates.size == 0:
                    telemetry.counter("train.sampler_exhausted")
                    if self.health_monitor is not None:
                        self.health_monitor.alert(
                            "sampler_exhausted", severity="fatal",
                            message=f"user {int(user)}: every pooled "
                                    "training item is a positive; no "
                                    "negatives exist — user skipped",
                            value=1.0, user=int(user))
                    else:
                        warnings.warn(
                            f"user {int(user)}: every pooled training item "
                            "is a positive; no negatives exist — skipping "
                            "the user", RuntimeWarning)
                    continue
                negatives[collides] = candidates[self._rng.integers(
                    candidates.size, size=int(collides.sum()))]
            slot_chunks.append(np.full(config.pairs_per_user, slot,
                                       dtype=np.int64))
            pos_chunks.append(chosen)
            neg_chunks.append(negatives)
        if not slot_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        slots_array = np.concatenate(slot_chunks)
        pos_nodes = self.ckg.item_nodes[np.concatenate(pos_chunks)]
        neg_nodes = self.ckg.item_nodes[np.concatenate(neg_chunks)]
        return slots_array, pos_nodes, neg_nodes

    def _graph_for(self, users: Tuple[int, ...]) -> ComputationGraph:
        """Pruned user-centric computation graph, cached per user batch.

        Graphs are deterministic for the PPR sampler, so caching across
        epochs is exact; for the random sampler each call resamples.
        The cache is an LRU bounded by ``graph_cache_entries``
        (``run_epoch`` keeps batch membership stable, so a bound of at
        least batches-per-epoch yields a full hit rate from epoch 2 on);
        ``train.graph_cache_hits`` / ``..._misses`` record its behavior.
        """
        if self.train_config.sampler == "random":
            return build_user_centric_graph(
                self.ckg, list(users), depth=self.model_config.depth,
                k=self.train_config.k, sampler="random", rng=self._rng)
        cached = self._graph_cache.get(users)
        if cached is not None:
            self._graph_cache.move_to_end(users)
            self.graph_cache_hits += 1
            telemetry.counter("train.graph_cache_hits")
            return cached
        cached = build_user_centric_graph(
            self.ckg, list(users), depth=self.model_config.depth,
            ppr_scores=self._ppr_rows(users),
            k=self.train_config.k, sampler="ppr")
        self.graph_cache_misses += 1
        telemetry.counter("train.graph_cache_misses")
        self._graph_cache[users] = cached
        bound = max(1, int(self.train_config.graph_cache_entries))
        while len(self._graph_cache) > bound:
            self._graph_cache.popitem(last=False)
        return cached

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int], k: Optional[int] = "default") -> np.ndarray:
        """All-item scores for ``users`` (rows align with input order).

        ``k`` overrides the pruning budget for this call: pass ``None``
        to score on unpruned user-centric graphs (the ``KUCNet-w.o.-PPR``
        inference mode of Fig. 6).
        """
        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        self.model.eval()
        propagation = self.propagate_users(users, k=k)
        return self.model.score_all_items(propagation, self.ckg.item_nodes)

    def propagate_users(self, users: Sequence[int],
                        k: Optional[int] = "default",
                        collect_attention: bool = False) -> Propagation:
        """Forward pass over the (pruned) user-centric graphs of ``users``.

        Pass ``collect_attention=True`` when the propagation feeds the
        explanation extractor — scoring paths leave it off and skip the
        per-edge attention copies.
        """
        users = list(users)
        if k == "default":
            k = self.train_config.k
        graph = build_user_centric_graph(
            self.ckg, users, depth=self.model_config.depth,
            ppr_scores=(self._ppr_rows(users)
                        if self.train_config.sampler == "ppr" and k
                        else None),
            k=k,
            sampler=self.train_config.sampler,
            rng=self._rng)
        return self.model.propagate(graph,
                                    collect_attention=collect_attention)

    def score_users_via_ui_subgraphs(self, users: Sequence[int],
                                     items: Optional[Sequence[int]] = None) -> np.ndarray:
        """Score by encoding each pair's own U-I computation graph.

        This is the direct (expensive) implementation the user-centric
        graph replaces — the ``KUCNet-UI`` bar of Fig. 6.  One propagation
        per (user, item) pair.
        """
        from ..sampling import build_ui_computation_graph

        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        self.model.eval()
        item_list = list(items) if items is not None else list(range(self.ckg.num_items))
        scores = np.zeros((len(users), self.ckg.num_items))
        for row, user in enumerate(users):
            for item in item_list:
                graph = build_ui_computation_graph(self.ckg, int(user), int(item),
                                                   self.model_config.depth)
                if graph.layers[-1].num_edges == 0:
                    continue
                propagation = self.model.propagate(graph)
                value = self.model.pair_scores(
                    propagation, np.zeros(1, dtype=np.int64),
                    np.asarray([self.ckg.item_node(int(item))]))
                scores[row, item] = value.data[0]
        return scores

    def count_inference_edges(self, users: Sequence[int],
                              mode: str = "pruned") -> int:
        """Total computation-graph edges to score ``users`` (Fig. 6).

        ``mode``: ``"pruned"`` (KUCNet), ``"full"`` (KUCNet-w.o.-PPR), or
        ``"ui"`` (sum over per-pair U-I graphs).
        """
        from ..sampling import build_ui_computation_graph

        if mode == "ui":
            total = 0
            for user in users:
                for item in range(self.ckg.num_items):
                    graph = build_ui_computation_graph(
                        self.ckg, int(user), int(item), self.model_config.depth)
                    total += graph.total_edges()
            return total
        users = list(users)
        k = self.train_config.k if mode == "pruned" else None
        sampler = self.train_config.sampler
        graph = build_user_centric_graph(
            self.ckg, users, depth=self.model_config.depth,
            ppr_scores=(self._ppr_rows(users)
                        if k is not None and sampler == "ppr" else None),
            k=k, sampler=sampler, rng=self._rng)
        return graph.total_edges()

    @property
    def name(self) -> str:
        if not self.model_config.use_attention:
            return "KUCNet-w.o.-Attn"
        if self.train_config.k is None:
            return "KUCNet-w.o.-PPR"
        if self.train_config.sampler == "random":
            return "KUCNet-random"
        return "KUCNet"

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        return self.model.num_parameters()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist trained weights and configuration to an ``.npz`` file.

        The graph-side state (CKG, PPR scores) is *not* stored — it is a
        deterministic function of the split, which :meth:`load` rebuilds.
        """
        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        import dataclasses
        import json

        payload = {f"param::{name}": value
                   for name, value in self.model.state_dict().items()}
        payload["config::model"] = np.frombuffer(
            json.dumps(dataclasses.asdict(self.model_config)).encode(),
            dtype=np.uint8)
        train_dict = dataclasses.asdict(self.train_config)
        if isinstance(train_dict.get("k"), tuple):
            train_dict["k"] = list(train_dict["k"])
        payload["config::train"] = np.frombuffer(
            json.dumps(train_dict).encode(), dtype=np.uint8)
        # np.savez appends ".npz" when the path lacks it; normalize here
        # so save("model") and load("model") agree on the on-disk name.
        np.savez(_npz_path(path), **payload)

    @classmethod
    def load(cls, path: str, split: Split) -> "KUCNetRecommender":
        """Restore a recommender saved by :meth:`save`.

        ``split`` must be the (training) split the model was fit on; the
        CKG and PPR preprocessing are rebuilt from it deterministically.
        """
        import json

        if not os.path.exists(path):
            path = _npz_path(path)
        with np.load(path) as archive:
            model_config = json.loads(bytes(archive["config::model"].tobytes()))
            train_config = json.loads(bytes(archive["config::train"].tobytes()))
            if isinstance(train_config.get("k"), list):
                train_config["k"] = tuple(train_config["k"])
            state = {key[len("param::"):]: archive[key]
                     for key in archive.files if key.startswith("param::")}
        recommender = cls(KUCNetConfig(**model_config),
                          TrainConfig(**train_config))
        recommender.prepare(split)
        recommender.model.load_state_dict(state)
        return recommender


def _npz_path(path: str) -> str:
    """The on-disk name ``np.savez`` produces for ``path``."""
    return path if path.endswith(".npz") else path + ".npz"


def _normalize_memmap(scores: np.memmap, degrees: np.ndarray,
                      chunk_rows: int = 64) -> np.memmap:
    """Degree-normalize an on-disk dense score matrix, chunk by chunk.

    Reopens the backing file writable, divides row blocks in place with
    the same float64 arithmetic as the in-RAM path (so the stored values
    stay bitwise-identical to it), and hands back a read-only map.
    """
    path = scores.filename
    del scores
    writable = np.load(path, mmap_mode="r+")
    divisor = np.maximum(degrees, 1.0)[None, :]
    for start in range(0, writable.shape[0], chunk_rows):
        writable[start:start + chunk_rows] /= divisor
    writable.flush()
    del writable
    return np.load(path, mmap_mode="r")


# ----------------------------------------------------------------------
# Worker functions for the PPR precompute fan-out (module-level so the
# process pool can import them by reference; see repro.parallel)
# ----------------------------------------------------------------------

def _ppr_push_chunk(context, chunk: np.ndarray):
    """Forward-push one user chunk (same math as one serial chunk pass)."""
    ckg, alpha, epsilon, top_m = context
    return forward_push_batch(ckg, chunk, alpha=alpha, epsilon=epsilon,
                              top_m=top_m, chunk_users=chunk.size)


def _ppr_power_chunk(context, chunk: np.ndarray) -> np.ndarray:
    """Power-iterate one user chunk against the shared adjacency."""
    ckg, adjacency, alpha, iterations, tolerance = context
    part = personalized_pagerank_batch(
        ckg, chunk, alpha=alpha, iterations=iterations,
        adjacency=adjacency, tolerance=tolerance)
    return part.scores
