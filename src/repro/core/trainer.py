"""Training and inference driver for KUCNet (§IV-D of the paper).

:class:`KUCNetRecommender` packages the full pipeline:

1. build the CKG over the *training* interactions;
2. precompute PPR scores for every user (the one-time preprocessing of
   Table VI);
3. optimize the BPR loss (Eq. 14) with Adam over (user, i+, i-) triplets,
   evaluating whole user batches on their shared pruned user-centric
   computation graphs;
4. score all items per user for the all-ranking evaluation.

Variants (Table IX / Fig. 6) are selected by configuration:

* ``sampler="random"`` → KUCNet-random;
* ``use_attention=False`` → KUCNet-w.o.-Attn;
* ``k=None`` → KUCNet-w.o.-PPR (no pruning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..autodiff import Adam, bpr_loss
from ..data import Split
from ..graph import CollaborativeKG
from ..ppr import personalized_pagerank_batch
from ..sampling import ComputationGraph, build_user_centric_graph
from .model import KUCNet, KUCNetConfig, Propagation


@dataclass
class TrainConfig:
    """Optimization hyper-parameters (§V-A3 search ranges)."""

    epochs: int = 12
    batch_users: int = 24
    #: (i+, i-) pairs sampled per user per epoch
    pairs_per_user: int = 4
    learning_rate: float = 5e-3
    weight_decay: float = 1e-5
    #: PPR top-K edge budget per head node; ``None`` disables pruning.
    #: A sequence of per-layer budgets (length ``depth``) selects an
    #: AdaProp-style adaptive propagation schedule (the paper's [40]).
    k: Optional[int] = 20
    sampler: str = "ppr"
    ppr_alpha: float = 0.15
    ppr_iterations: int = 20
    #: rank pruned edges by ``r_u[v] / deg(v)`` instead of raw PPR mass.
    #: On the symmetrized CKG, walk reversibility makes the
    #: degree-normalized score proportional to the probability that a
    #: walk *from v* reaches u — i.e. the "importance of other nodes to
    #: the target node" the paper asks PPR for (§II-A) — whereas raw
    #: mass is confounded by global popularity.  Markedly better in the
    #: new-item setting (see EXPERIMENTS.md).
    ppr_degree_normalized: bool = True
    seed: int = 0
    verbose: bool = False
    #: stop early when the epoch loss has not improved for this many
    #: epochs (``None`` disables).  The paper selects hyper-parameters by
    #: training loss with a 30-epoch cap (§V-A3); this implements the
    #: corresponding loss-plateau stopping rule.
    patience: Optional[int] = None
    #: minimum relative loss improvement that resets the patience counter
    min_improvement: float = 1e-3


@dataclass
class EpochStats:
    """Per-epoch training telemetry (drives the Fig. 4 learning curves)."""

    epoch: int
    loss: float
    seconds: float
    cumulative_seconds: float


class KUCNetRecommender:
    """End-to-end KUCNet: ``fit`` on a split, then ``score_users``.

    Parameters
    ----------
    model_config / train_config:
        Hyper-parameters; defaults follow the paper's common settings
        (L=3, PPR pruning, Adam + BPR).
    """

    def __init__(self, model_config: Optional[KUCNetConfig] = None,
                 train_config: Optional[TrainConfig] = None):
        self.model_config = model_config or KUCNetConfig()
        self.train_config = train_config or TrainConfig()
        self.model: Optional[KUCNet] = None
        self.ckg: Optional[CollaborativeKG] = None
        self.ppr_scores: Optional[np.ndarray] = None  # (num_users, num_nodes)
        self.history: List[EpochStats] = []
        self.ppr_seconds: float = 0.0
        self._graph_cache: Dict[Tuple[int, ...], ComputationGraph] = {}
        self._rng = np.random.default_rng(self.train_config.seed)

    # ------------------------------------------------------------------
    def prepare(self, split: Split) -> None:
        """Build the CKG and PPR scores without training (preprocessing)."""
        self.ckg = split.dataset.build_ckg(split.train)
        with telemetry.span("ppr.precompute") as ppr_span:
            ppr = personalized_pagerank_batch(
                self.ckg, list(range(self.ckg.num_users)),
                alpha=self.train_config.ppr_alpha,
                iterations=self.train_config.ppr_iterations,
            )
        self.ppr_seconds = ppr_span.elapsed
        self.ppr_scores = ppr.scores
        if self.train_config.ppr_degree_normalized:
            degrees = np.diff(self.ckg.indptr).astype(np.float64)
            self.ppr_scores = self.ppr_scores / np.maximum(degrees, 1.0)[None, :]
        self.model = KUCNet(self.ckg.num_relations, self.model_config)
        self._graph_cache.clear()
        self._split = split
        self._train_item_pool = np.unique(split.train.items)

    def fit(self, split: Split,
            callback: Optional[Callable[[EpochStats], None]] = None) -> "KUCNetRecommender":
        """Train with BPR (Eq. 14); ``callback`` fires after each epoch."""
        with telemetry.span("train.fit"):
            return self._fit(split, callback)

    def _fit(self, split: Split,
             callback: Optional[Callable[[EpochStats], None]]) -> "KUCNetRecommender":
        self.prepare(split)
        config = self.train_config
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)

        train_users = [user for user in split.train.users_with_interactions()]
        self.history = []
        cumulative = 0.0
        best_loss = np.inf
        stale_epochs = 0
        for epoch in range(config.epochs):
            with telemetry.span("train.epoch") as epoch_span:
                order = self._rng.permutation(len(train_users))
                losses = []
                for start in range(0, len(train_users), config.batch_users):
                    batch = [train_users[index]
                             for index in order[start:start + config.batch_users]]
                    loss_value = self._train_batch(batch, split, optimizer)
                    if loss_value is not None:
                        losses.append(loss_value)
            seconds = epoch_span.elapsed
            cumulative += seconds
            stats = EpochStats(epoch=epoch,
                               loss=float(np.mean(losses)) if losses else 0.0,
                               seconds=seconds, cumulative_seconds=cumulative)
            self.history.append(stats)
            if config.verbose:
                print(f"epoch {epoch}: loss={stats.loss:.4f} ({seconds:.1f}s)")
            if callback is not None:
                callback(stats)
            if config.patience is not None:
                if stats.loss < best_loss * (1.0 - config.min_improvement):
                    best_loss = stats.loss
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= config.patience:
                        break
        return self

    def _train_batch(self, users: Sequence[int], split: Split,
                     optimizer: Adam) -> Optional[float]:
        with telemetry.span("train.batch"):
            graph = self._graph_for(tuple(users))
            self.model.train()
            with telemetry.span("train.forward"):
                propagation = self.model.propagate(graph)

                slots, pos_nodes, neg_nodes = self._sample_pairs(users, split)
                if slots.size == 0:
                    return None
                pos_scores = self.model.pair_scores(propagation, slots, pos_nodes)
                neg_scores = self.model.pair_scores(propagation, slots, neg_nodes)
                loss = bpr_loss(pos_scores, neg_scores)
            telemetry.counter("train.pairs", slots.size)

            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            return loss.item()

    def _sample_pairs(self, users: Sequence[int], split: Split):
        """Sample (slot, i+, i-) training triplets for a user batch.

        Negatives are drawn from the *training item pool* (items with at
        least one observed interaction), the standard BPR practice; items
        that only exist in the KG are never pushed down, which matters in
        the new-item setting (§V-C) where such items are the test set.
        """
        config = self.train_config
        if not hasattr(self, "_train_item_pool"):
            self._train_item_pool = np.unique(split.train.items)
        pool = self._train_item_pool
        slots: List[int] = []
        positives: List[int] = []
        negatives: List[int] = []
        for slot, user in enumerate(users):
            user_positives = sorted(split.train.positives(user))
            if not user_positives:
                continue
            for _ in range(config.pairs_per_user):
                positive = int(self._rng.choice(user_positives))
                negative = int(pool[self._rng.integers(pool.size)])
                while split.train.has_interaction(user, negative):
                    negative = int(pool[self._rng.integers(pool.size)])
                slots.append(slot)
                positives.append(positive)
                negatives.append(negative)
        slots_array = np.asarray(slots, dtype=np.int64)
        pos_nodes = self.ckg.item_nodes[np.asarray(positives, dtype=np.int64)] \
            if positives else np.empty(0, dtype=np.int64)
        neg_nodes = self.ckg.item_nodes[np.asarray(negatives, dtype=np.int64)] \
            if negatives else np.empty(0, dtype=np.int64)
        return slots_array, pos_nodes, neg_nodes

    def _graph_for(self, users: Tuple[int, ...]) -> ComputationGraph:
        """Pruned user-centric computation graph, cached per user batch.

        Graphs are deterministic for the PPR sampler, so caching across
        epochs is exact; for the random sampler each call resamples.
        """
        if self.train_config.sampler == "random":
            return build_user_centric_graph(
                self.ckg, list(users), depth=self.model_config.depth,
                k=self.train_config.k, sampler="random", rng=self._rng)
        cached = self._graph_cache.get(users)
        if cached is None:
            cached = build_user_centric_graph(
                self.ckg, list(users), depth=self.model_config.depth,
                ppr_scores=self.ppr_scores[list(users)],
                k=self.train_config.k, sampler="ppr")
            self._graph_cache[users] = cached
        return cached

    # ------------------------------------------------------------------
    def score_users(self, users: Sequence[int], k: Optional[int] = "default") -> np.ndarray:
        """All-item scores for ``users`` (rows align with input order).

        ``k`` overrides the pruning budget for this call: pass ``None``
        to score on unpruned user-centric graphs (the ``KUCNet-w.o.-PPR``
        inference mode of Fig. 6).
        """
        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        self.model.eval()
        propagation = self.propagate_users(users, k=k)
        return self.model.score_all_items(propagation, self.ckg.item_nodes)

    def propagate_users(self, users: Sequence[int],
                        k: Optional[int] = "default") -> Propagation:
        """Forward pass over the (pruned) user-centric graphs of ``users``."""
        users = list(users)
        if k == "default":
            k = self.train_config.k
        graph = build_user_centric_graph(
            self.ckg, users, depth=self.model_config.depth,
            ppr_scores=(self.ppr_scores[users]
                        if self.train_config.sampler == "ppr" and k
                        else None),
            k=k,
            sampler=self.train_config.sampler,
            rng=self._rng)
        return self.model.propagate(graph)

    def score_users_via_ui_subgraphs(self, users: Sequence[int],
                                     items: Optional[Sequence[int]] = None) -> np.ndarray:
        """Score by encoding each pair's own U-I computation graph.

        This is the direct (expensive) implementation the user-centric
        graph replaces — the ``KUCNet-UI`` bar of Fig. 6.  One propagation
        per (user, item) pair.
        """
        from ..sampling import build_ui_computation_graph

        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        self.model.eval()
        item_list = list(items) if items is not None else list(range(self.ckg.num_items))
        scores = np.zeros((len(users), self.ckg.num_items))
        for row, user in enumerate(users):
            for item in item_list:
                graph = build_ui_computation_graph(self.ckg, int(user), int(item),
                                                   self.model_config.depth)
                if graph.layers[-1].num_edges == 0:
                    continue
                propagation = self.model.propagate(graph)
                value = self.model.pair_scores(
                    propagation, np.zeros(1, dtype=np.int64),
                    np.asarray([self.ckg.item_node(int(item))]))
                scores[row, item] = value.data[0]
        return scores

    def count_inference_edges(self, users: Sequence[int],
                              mode: str = "pruned") -> int:
        """Total computation-graph edges to score ``users`` (Fig. 6).

        ``mode``: ``"pruned"`` (KUCNet), ``"full"`` (KUCNet-w.o.-PPR), or
        ``"ui"`` (sum over per-pair U-I graphs).
        """
        from ..sampling import build_ui_computation_graph

        if mode == "ui":
            total = 0
            for user in users:
                for item in range(self.ckg.num_items):
                    graph = build_ui_computation_graph(
                        self.ckg, int(user), int(item), self.model_config.depth)
                    total += graph.total_edges()
            return total
        users = list(users)
        k = self.train_config.k if mode == "pruned" else None
        graph = build_user_centric_graph(
            self.ckg, users, depth=self.model_config.depth,
            ppr_scores=self.ppr_scores[users] if k is not None else None,
            k=k, sampler="ppr" if k is not None else "ppr")
        return graph.total_edges()

    @property
    def name(self) -> str:
        if not self.model_config.use_attention:
            return "KUCNet-w.o.-Attn"
        if self.train_config.k is None:
            return "KUCNet-w.o.-PPR"
        if self.train_config.sampler == "random":
            return "KUCNet-random"
        return "KUCNet"

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        return self.model.num_parameters()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist trained weights and configuration to an ``.npz`` file.

        The graph-side state (CKG, PPR scores) is *not* stored — it is a
        deterministic function of the split, which :meth:`load` rebuilds.
        """
        if self.model is None:
            raise RuntimeError("fit() or prepare() must be called first")
        import dataclasses
        import json

        payload = {f"param::{name}": value
                   for name, value in self.model.state_dict().items()}
        payload["config::model"] = np.frombuffer(
            json.dumps(dataclasses.asdict(self.model_config)).encode(),
            dtype=np.uint8)
        train_dict = dataclasses.asdict(self.train_config)
        if isinstance(train_dict.get("k"), tuple):
            train_dict["k"] = list(train_dict["k"])
        payload["config::train"] = np.frombuffer(
            json.dumps(train_dict).encode(), dtype=np.uint8)
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str, split: Split) -> "KUCNetRecommender":
        """Restore a recommender saved by :meth:`save`.

        ``split`` must be the (training) split the model was fit on; the
        CKG and PPR preprocessing are rebuilt from it deterministically.
        """
        import json

        with np.load(path) as archive:
            model_config = json.loads(bytes(archive["config::model"].tobytes()))
            train_config = json.loads(bytes(archive["config::train"].tobytes()))
            if isinstance(train_config.get("k"), list):
                train_config["k"] = tuple(train_config["k"])
            state = {key[len("param::"):]: archive[key]
                     for key in archive.files if key.startswith("param::")}
        recommender = cls(KUCNetConfig(**model_config),
                          TrainConfig(**train_config))
        recommender.prepare(split)
        recommender.model.load_state_dict(state)
        return recommender
