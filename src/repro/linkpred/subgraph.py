"""Subgraph-based KG link prediction (the RED-GNN lineage, §II-C).

Scores ``(h, r, ?)`` queries by propagating a relative representation
from the head entity through the KG for ``L`` layers — the same
machinery KUCNet uses for recommendation, applied to a pure KG.  No
entity embeddings, so the predictor is inductive: it ranks entities it
never saw in training triplets, which is the property KUCNet inherits
for new items/users.

The query relation conditions the *readout*: ``ŷ = w_r^T h_{h:t}``,
a per-relation scoring vector over the propagated representation (a
simplification of RED-GNN's query-conditioned attention that keeps the
per-query cost at one propagation).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..autodiff import Adam, Parameter, Tensor, gather_rows, log_sigmoid
from ..autodiff import init as ad_init
from ..core.layers import AttentionMessagePassing
from ..core.model import KUCNet, KUCNetConfig
from ..engine import Engine, EpochStats, History, TelemetryHook
from ..graph import CollaborativeKG, KnowledgeGraph
from ..sampling import build_user_centric_graph
from .trainer import RankingResult


def relational_graph_from_kg(kg: KnowledgeGraph) -> CollaborativeKG:
    """Wrap a plain KG as a :class:`CollaborativeKG` with zero users.

    Entities keep their ids (no user offset), every relation gets its
    reverse twin, and the CSR machinery of the subgraph builders applies
    unchanged.
    """
    heads = np.concatenate([kg.heads, kg.tails])
    relations = np.concatenate([kg.relations, kg.relations + kg.num_relations])
    tails = np.concatenate([kg.tails, kg.heads])
    return CollaborativeKG(
        num_users=0, num_items=0, num_entities=kg.num_entities,
        num_base_relations=kg.num_relations,
        item_nodes=np.empty(0, dtype=np.int64),
        heads=heads, relations=relations, tails=tails,
        num_nodes=kg.num_entities)


@dataclasses.dataclass
class SubgraphLinkPredConfig:
    """Hyper-parameters for the subgraph link predictor."""

    dim: int = 32
    attn_dim: int = 5
    depth: int = 3
    epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 5e-3
    #: L2-style decay on every parameter, matching ``LinkPredConfig``
    #: (this loop used to construct Adam without any decay at all)
    weight_decay: float = 1e-6
    #: uniform per-node edge cap bounding the propagation graphs
    edge_cap: int = 30
    num_negatives: int = 2
    seed: int = 0


class SubgraphLinkPredictor:
    """Inductive KG link prediction with relative representations."""

    def __init__(self, config: Optional[SubgraphLinkPredConfig] = None):
        self.config = config or SubgraphLinkPredConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.graph: Optional[CollaborativeKG] = None
        self.layers: List[AttentionMessagePassing] = []
        self.readout: Optional[Parameter] = None
        self.optimizer: Optional[Adam] = None
        self._known: Dict[Tuple[int, int], Set[int]] = {}
        self.history: List[EpochStats] = []

    @property
    def losses(self) -> List[float]:
        """Per-epoch mean losses (derived from :attr:`history`)."""
        return [stats.loss for stats in self.history]

    # ------------------------------------------------------------------
    def fit(self, kg: KnowledgeGraph,
            triplets: Optional[np.ndarray] = None) -> "SubgraphLinkPredictor":
        config = self.config
        if triplets is None:
            triplets = np.column_stack([kg.heads, kg.relations, kg.tails])
        triplets = np.asarray(triplets, dtype=np.int64)
        if triplets.size == 0:
            raise ValueError("no training triplets")
        # Build the propagation graph from the *training* triplets only.
        train_kg = KnowledgeGraph(kg.num_entities, kg.num_relations,
                                  [tuple(row) for row in triplets])
        self.graph = relational_graph_from_kg(train_kg)
        self._num_query_relations = kg.num_relations

        model_rng = np.random.default_rng(config.seed)
        self.layers = [
            AttentionMessagePassing(dim=config.dim, attn_dim=config.attn_dim,
                                    num_relations=self.graph.num_relations,
                                    rng=model_rng)
            for _ in range(config.depth)
        ]
        self.readout = Parameter(
            ad_init.xavier_uniform((kg.num_relations, config.dim),
                                   rng=model_rng),
            name="relation_readout")

        self._known = {}
        for head, relation, tail in triplets:
            self._known.setdefault((int(head), int(relation)), set()).add(int(tail))

        params = [p for layer in self.layers for p in layer.parameters()]
        params.append(self.readout)
        self.optimizer = Adam(params, lr=config.learning_rate,
                              weight_decay=config.weight_decay)

        num = triplets.shape[0]

        def batches(epoch: int):
            order = self.rng.permutation(num)
            return [triplets[order[start:start + config.batch_size]]
                    for start in range(0, num, config.batch_size)]

        history = History()
        engine = Engine(self.optimizer, hooks=[TelemetryHook(), history])
        self.history = history.stats
        engine.fit(self._train_step, batches, config.epochs)
        return self

    def _train_step(self, batch: np.ndarray) -> Tensor:
        """Loss for one triplet batch (the engine owns the optimizer cycle)."""
        config = self.config
        propagation = self._propagate(batch[:, 0])
        slots = np.arange(batch.shape[0], dtype=np.int64)

        pos_scores = self._pair_scores(propagation, slots, batch[:, 1],
                                       batch[:, 2])
        total = None
        for _ in range(config.num_negatives):
            corrupted = self.rng.integers(0, self.graph.num_nodes,
                                          size=batch.shape[0])
            neg_scores = self._pair_scores(propagation, slots, batch[:, 1],
                                           corrupted)
            term = -log_sigmoid(pos_scores - neg_scores).mean()
            total = term if total is None else total + term
        return total * (1.0 / config.num_negatives)

    # ------------------------------------------------------------------
    def _propagate(self, heads: np.ndarray):
        graph = build_user_centric_graph(
            self.graph, list(heads), depth=self.config.depth,
            k=self.config.edge_cap, sampler="random", rng=self.rng)
        hidden = [Tensor(np.zeros((graph.layer_size(0), self.config.dim)))]
        for level, layer in enumerate(self.layers, start=1):
            state, _ = layer(hidden[-1], graph.layers[level - 1],
                             graph.layer_size(level))
            hidden.append(state)
        return graph, hidden[-1]

    def _pair_scores(self, propagation, slots: np.ndarray,
                     relations: np.ndarray, tails: np.ndarray) -> Tensor:
        graph, final_hidden = propagation
        rows = graph.rows_for_pairs(graph.depth, slots, tails)
        found = rows >= 0
        safe = np.where(found, rows, 0)
        gathered = gather_rows(final_hidden, safe)
        readout = gather_rows(self.readout, relations)
        scores = (gathered * readout).sum(axis=1)
        return scores * Tensor(found.astype(np.float64))

    # ------------------------------------------------------------------
    def rank_tail(self, head: int, relation: int, tail: int) -> int:
        """Filtered rank of the true tail for a ``(h, r, ?)`` query."""
        if self.graph is None:
            raise RuntimeError("fit() must be called first")
        propagation = self._propagate(np.asarray([head]))
        graph, final_hidden = propagation
        scores = np.zeros(self.graph.num_nodes)
        values = final_hidden.data @ self.readout.data[relation]
        last = graph.depth
        scores[graph.nodes[last]] = values
        known = self._known.get((int(head), int(relation)), set())
        for other in known:
            if other != tail:
                scores[other] = -np.inf
        target = scores[tail]
        return int((scores > target).sum()) + 1

    def evaluate(self, test_triplets: np.ndarray) -> RankingResult:
        """Filtered MRR / Hits@K (same protocol as the embedding models)."""
        test_triplets = np.asarray(test_triplets, dtype=np.int64)
        if test_triplets.size == 0:
            raise ValueError("no test triplets")
        ranks = np.asarray([
            self.rank_tail(int(h), int(r), int(t))
            for h, r, t in test_triplets
        ], dtype=np.float64)
        return RankingResult(
            mrr=float((1.0 / ranks).mean()),
            hits_at_1=float((ranks <= 1).mean()),
            hits_at_3=float((ranks <= 3).mean()),
            hits_at_10=float((ranks <= 10).mean()),
            num_triplets=int(ranks.size),
        )
