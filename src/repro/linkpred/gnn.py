"""GNN-based KG link predictors from the paper's related work (§II-C).

* :class:`CompGCN` (Vashishth et al., ICLR 2020, the paper's [34]):
  full-graph message passing where entity and relation embeddings are
  composed per edge (``φ(e_u, e_r) = e_u ⊙ e_r``) and both are updated
  per layer; scoring is a DistMult head over the propagated embeddings.
  Still an embedding method — transductive.
* :class:`NBFNet` (Zhu et al., NeurIPS 2021, the paper's [38]):
  a generalized Bellman-Ford dynamic program.  For a query ``(h, q, ?)``
  the *pair representation* ``x_v`` is initialized with the query
  embedding at ``h`` and propagated over all edges with
  relation-and-query-conditioned messages; entities carry no free
  embeddings, so the predictor is inductive like RED-GNN/KUCNet.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..autodiff import (Adam, Embedding, Linear, Module, Parameter, Tensor,
                        fused_gather_mul_segment_sum, fusion_enabled,
                        gather_rows, log_sigmoid, segment_sum)
from ..engine import Engine, EpochStats, History, TelemetryHook
from ..graph import KnowledgeGraph
from .trainer import RankingResult


class CompGCN(Module):
    """CompGCN encoder + DistMult decoder for tail ranking.

    Parameters
    ----------
    kg / dim / num_layers:
        Graph, width, and encoder depth.  Reverse relations are added
        internally (as the original does).
    """

    def __init__(self, kg: KnowledgeGraph, dim: int = 32, num_layers: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.kg = kg
        self.dim = dim
        self.num_layers = num_layers

        self.entity_embedding = Embedding(kg.num_entities, dim, rng=rng)
        # relations + reverse twins
        self.relation_embedding = Embedding(2 * kg.num_relations, dim, rng=rng)
        self.entity_transforms = [Linear(dim, dim, bias=False, rng=rng)
                                  for _ in range(num_layers)]
        self.relation_transforms = [Linear(dim, dim, bias=False, rng=rng)
                                    for _ in range(num_layers)]

        self._heads = np.concatenate([kg.heads, kg.tails])
        self._rels = np.concatenate([kg.relations,
                                     kg.relations + kg.num_relations])
        self._tails = np.concatenate([kg.tails, kg.heads])
        degree = np.zeros(kg.num_entities)
        np.add.at(degree, self._tails, 1.0)
        self._norm = 1.0 / np.maximum(degree, 1.0)

    def encode(self) -> Tuple[Tensor, Tensor]:
        """Propagated (entity, relation) embeddings."""
        entities = self.entity_embedding.weight
        relations = self.relation_embedding.weight
        norm = Tensor(self._norm.reshape(-1, 1))
        for layer in range(self.num_layers):
            if fusion_enabled():
                # One fused node for gather→compose→aggregate, then the
                # (bias-free, hence linear) transform applied to the
                # (N, d) sums instead of the (E, d) edge messages —
                # mathematically identical, far fewer edge-level flops.
                pooled = fused_gather_mul_segment_sum(
                    entities, self._heads, self._tails,
                    self.kg.num_entities, y=relations,
                    y_indices=self._rels)
                aggregated = self.entity_transforms[layer](pooled) * norm
            else:
                source = gather_rows(entities, self._heads)
                edge_rel = gather_rows(relations, self._rels)
                messages = self.entity_transforms[layer](source * edge_rel)
                aggregated = segment_sum(messages, self._tails,
                                         self.kg.num_entities) * norm
            entities = aggregated.tanh()
            relations = self.relation_transforms[layer](relations)
        return entities, relations

    def score(self, heads: np.ndarray, relations: np.ndarray,
              tails: np.ndarray) -> Tensor:
        """DistMult score over the encoded embeddings."""
        entity_final, relation_final = self.encode()
        h = gather_rows(entity_final, heads)
        r = gather_rows(relation_final, relations)
        t = gather_rows(entity_final, tails)
        return (h * r * t).sum(axis=1)


class NBFNet(Module):
    """Simplified NBFNet: Bellman-Ford propagation of pair representations.

    For a batch of query heads, the state ``x[b, v]`` starts as the query
    relation's embedding at ``v = head_b`` (zero elsewhere) and is
    propagated ``num_layers`` times over all edges with DistMult-style
    messages ``x[b, u] ⊙ w(r)``, summed into tails plus the initial
    boundary (the generalized Bellman-Ford identity element).  Scoring is
    a linear readout of ``x[b, tail]``.  No entity embeddings anywhere.
    """

    def __init__(self, kg: KnowledgeGraph, dim: int = 32, num_layers: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.kg = kg
        self.dim = dim
        self.num_layers = num_layers

        self.query_embedding = Embedding(kg.num_relations, dim, rng=rng)
        # per-layer edge-relation embeddings (incl. reverses)
        self.relation_embeddings = [
            Embedding(2 * kg.num_relations, dim, rng=rng)
            for _ in range(num_layers)
        ]
        self.readout = Linear(dim, 1, rng=rng)

        self._heads = np.concatenate([kg.heads, kg.tails])
        self._rels = np.concatenate([kg.relations,
                                     kg.relations + kg.num_relations])
        self._tails = np.concatenate([kg.tails, kg.heads])

    def pair_states(self, heads: np.ndarray, queries: np.ndarray) -> Tensor:
        """``(B * num_entities, dim)`` pair representations after L steps."""
        batch = heads.size
        num_entities = self.kg.num_entities
        num_edges = self._heads.size

        boundary = np.zeros((batch * num_entities, self.dim))
        query_vectors = self.query_embedding(queries)          # (B, d)
        rows = np.arange(batch) * num_entities + heads
        boundary[rows] = query_vectors.data
        boundary_t = Tensor(boundary)

        state = boundary_t
        # flattened (batch, edge) index arrays
        batch_offsets = np.repeat(np.arange(batch) * num_entities, num_edges)
        src = batch_offsets + np.tile(self._heads, batch)
        dst = batch_offsets + np.tile(self._tails, batch)
        rels = np.tile(self._rels, batch)
        for layer in range(self.num_layers):
            if fusion_enabled():
                aggregated = fused_gather_mul_segment_sum(
                    state, src, dst, batch * num_entities,
                    y=self.relation_embeddings[layer].weight,
                    y_indices=rels)
            else:
                messages = (gather_rows(state, src)
                            * self.relation_embeddings[layer](rels))
                aggregated = segment_sum(messages, dst, batch * num_entities)
            state = (aggregated + boundary_t).tanh()
        return state

    def score(self, heads: np.ndarray, queries: np.ndarray,
              tails: np.ndarray) -> Tensor:
        """Scores for aligned (head, query-relation, tail) arrays."""
        state = self.pair_states(heads, queries)
        rows = np.arange(heads.size) * self.kg.num_entities + tails
        return self.readout(gather_rows(state, rows)).reshape(heads.size)

    def score_all_tails(self, head: int, query: int) -> np.ndarray:
        """Inference: scores of every entity as the tail (numpy)."""
        state = self.pair_states(np.asarray([head]), np.asarray([query]))
        values = (state.data @ self.readout.weight.data.T
                  + self.readout.bias.data).ravel()
        return values[:self.kg.num_entities]


@dataclasses.dataclass
class GNNLinkPredConfig:
    """Training hyper-parameters for the GNN link predictors."""

    model: str = "compgcn"           # or "nbfnet"
    dim: int = 32
    num_layers: int = 2
    epochs: int = 15
    batch_size: int = 64
    learning_rate: float = 5e-3
    #: L2-style decay on every parameter, matching ``LinkPredConfig``
    #: (these loops used to construct Adam without any decay at all)
    weight_decay: float = 1e-6
    num_negatives: int = 2
    seed: int = 0


class GNNLinkPredictor:
    """Fit/evaluate wrapper with the same protocol as :class:`LinkPredictor`."""

    MODELS = {"compgcn": CompGCN, "nbfnet": NBFNet}

    def __init__(self, config: Optional[GNNLinkPredConfig] = None):
        self.config = config or GNNLinkPredConfig()
        if self.config.model not in self.MODELS:
            raise ValueError(f"unknown model {self.config.model!r}; "
                             f"choose from {sorted(self.MODELS)}")
        self.rng = np.random.default_rng(self.config.seed)
        self.model = None
        self.optimizer: Optional[Adam] = None
        self._known: Dict[Tuple[int, int], Set[int]] = {}
        self.history: List[EpochStats] = []

    @property
    def losses(self) -> List[float]:
        """Per-epoch mean losses (derived from :attr:`history`)."""
        return [stats.loss for stats in self.history]

    def fit(self, kg: KnowledgeGraph,
            triplets: Optional[np.ndarray] = None) -> "GNNLinkPredictor":
        """Train on ``triplets`` (default: all of ``kg``'s)."""
        config = self.config
        if triplets is None:
            triplets = np.column_stack([kg.heads, kg.relations, kg.tails])
        triplets = np.asarray(triplets, dtype=np.int64)
        if triplets.size == 0:
            raise ValueError("no training triplets")
        # the propagation graph uses training triplets only
        train_kg = KnowledgeGraph(kg.num_entities, kg.num_relations,
                                  [tuple(row) for row in triplets])
        self.model = self.MODELS[config.model](
            train_kg, dim=config.dim, num_layers=config.num_layers,
            rng=np.random.default_rng(config.seed))
        self._known = {}
        for head, relation, tail in triplets:
            self._known.setdefault((int(head), int(relation)), set()).add(int(tail))

        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate,
                              weight_decay=config.weight_decay)
        num = triplets.shape[0]

        def batches(epoch: int):
            order = self.rng.permutation(num)
            return [triplets[order[start:start + config.batch_size]]
                    for start in range(0, num, config.batch_size)]

        def step(batch: np.ndarray):
            loss_total = None
            pos = self.model.score(batch[:, 0], batch[:, 1], batch[:, 2])
            for _ in range(config.num_negatives):
                corrupted = self.rng.integers(0, kg.num_entities,
                                              size=batch.shape[0])
                neg = self.model.score(batch[:, 0], batch[:, 1], corrupted)
                term = -log_sigmoid(pos - neg).mean()
                loss_total = term if loss_total is None else loss_total + term
            return loss_total * (1.0 / config.num_negatives)

        history = History()
        engine = Engine(self.optimizer, hooks=[TelemetryHook(), history])
        self.history = history.stats
        engine.fit(step, batches, config.epochs)
        return self

    def rank_tail(self, head: int, relation: int, tail: int) -> int:
        """Filtered rank of the true tail."""
        if self.model is None:
            raise RuntimeError("fit() must be called first")
        if isinstance(self.model, NBFNet):
            scores = self.model.score_all_tails(head, relation)
        else:
            tails = np.arange(self.model.kg.num_entities)
            heads = np.full(tails.size, head, dtype=np.int64)
            relations = np.full(tails.size, relation, dtype=np.int64)
            scores = self.model.score(heads, relations, tails).data.copy()
        for other in self._known.get((int(head), int(relation)), set()):
            if other != tail:
                scores[other] = -np.inf
        return int((scores > scores[tail]).sum()) + 1

    def evaluate(self, test_triplets: np.ndarray) -> RankingResult:
        """Filtered MRR / Hits@K over ``test_triplets``."""
        test_triplets = np.asarray(test_triplets, dtype=np.int64)
        if test_triplets.size == 0:
            raise ValueError("no test triplets")
        ranks = np.asarray([self.rank_tail(int(h), int(r), int(t))
                            for h, r, t in test_triplets], dtype=np.float64)
        return RankingResult(
            mrr=float((1.0 / ranks).mean()),
            hits_at_1=float((ranks <= 1).mean()),
            hits_at_3=float((ranks <= 3).mean()),
            hits_at_10=float((ranks <= 10).mean()),
            num_triplets=int(ranks.size),
        )
