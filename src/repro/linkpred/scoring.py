"""KG-embedding scoring functions for link prediction (§II-C).

The paper positions KUCNet against the embedding lineage of KG link
prediction — TransE [32], TransR [29] — and builds on the subgraph
lineage (GraIL, RED-GNN).  This module implements the embedding scorers
on the autodiff engine; :mod:`repro.linkpred.subgraph` implements the
subgraph side.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import Embedding, Module, Parameter, Tensor, gather_rows
from ..autodiff import init as ad_init


class TripletScorer(Module):
    """Interface: a differentiable plausibility score for (h, r, t) ids."""

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entity_embedding = Embedding(num_entities, dim, rng=rng)
        self.relation_embedding = Embedding(num_relations, dim, rng=rng)

    def score(self, heads: np.ndarray, relations: np.ndarray,
              tails: np.ndarray) -> Tensor:
        raise NotImplementedError

    def score_all_tails(self, head: int, relation: int) -> np.ndarray:
        """Plausibility of ``(head, relation, t)`` for every entity ``t``
        (inference only, no gradients)."""
        heads = np.full(self.num_entities, head, dtype=np.int64)
        relations = np.full(self.num_entities, relation, dtype=np.int64)
        tails = np.arange(self.num_entities, dtype=np.int64)
        return self.score(heads, relations, tails).data


class TransE(TripletScorer):
    """``-||h + r - t||^2`` (Bordes et al., 2013)."""

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity_embedding(heads)
        r = self.relation_embedding(relations)
        t = self.entity_embedding(tails)
        diff = h + r - t
        return -(diff * diff).sum(axis=1)


class DistMult(TripletScorer):
    """``<h, r, t>`` trilinear product (Yang et al., 2015)."""

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity_embedding(heads)
        r = self.relation_embedding(relations)
        t = self.entity_embedding(tails)
        return (h * r * t).sum(axis=1)


class TransR(TripletScorer):
    """``-||M_r h + r - M_r t||^2`` with a per-relation projection
    (Lin et al., 2015) — the scorer CKE builds on."""

    def __init__(self, num_entities: int, num_relations: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(num_entities, num_relations, dim, rng=rng)
        rng = rng or np.random.default_rng()
        self.projection = Parameter(
            ad_init.xavier_uniform((num_relations, dim * dim), rng=rng),
            name="projection")

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entity_embedding(heads)
        r = self.relation_embedding(relations)
        t = self.entity_embedding(tails)
        projections = gather_rows(self.projection, relations)  # (B, d*d)
        diff = h - t
        projected = _project(projections, diff, self.dim)
        translated = projected + r
        return -(translated * translated).sum(axis=1)


def _project(projections: Tensor, vectors: Tensor, dim: int) -> Tensor:
    """Apply per-row flattened d×d matrices to d-vectors, differentiably.

    ``out[b, d'] = sum_k projections[b, d'*dim + k] * vectors[b, k]``.
    """
    batch = vectors.shape[0]
    flat = vectors.reshape(batch * dim, 1)
    indices = (np.arange(batch)[:, None] * dim
               + np.tile(np.arange(dim), dim)[None, :]).ravel()
    tiled = gather_rows(flat, indices).reshape(batch, dim * dim)
    return (projections * tiled).reshape(batch * dim, dim).sum(axis=1).reshape(batch, dim)


SCORERS = {"transe": TransE, "distmult": DistMult, "transr": TransR}
