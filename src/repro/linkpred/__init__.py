"""KG link prediction: embedding scorers and subgraph predictors (§II-C).

Recommendation is a link-prediction problem on ``interact`` edges; this
subpackage provides the pure-KG version of both method families the
paper discusses: embedding scorers (TransE / TransR / DistMult) and the
inductive subgraph predictor (the RED-GNN lineage KUCNet builds on),
plus filtered MRR / Hits@K evaluation.
"""

from .gnn import CompGCN, GNNLinkPredConfig, GNNLinkPredictor, NBFNet
from .scoring import SCORERS, DistMult, TransE, TransR, TripletScorer
from .subgraph import (SubgraphLinkPredConfig, SubgraphLinkPredictor,
                       relational_graph_from_kg)
from .trainer import (LinkPredConfig, LinkPredictor, RankingResult,
                      split_triplets)

__all__ = [
    "TripletScorer", "TransE", "TransR", "DistMult", "SCORERS",
    "LinkPredictor", "LinkPredConfig", "RankingResult", "split_triplets",
    "SubgraphLinkPredictor", "SubgraphLinkPredConfig",
    "GNNLinkPredictor", "GNNLinkPredConfig", "CompGCN", "NBFNet",
    "relational_graph_from_kg",
]
