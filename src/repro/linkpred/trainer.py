"""Training and filtered-ranking evaluation for KG link prediction."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import telemetry
from ..autodiff import Adam, log_sigmoid
from ..engine import Engine, EpochStats, History, TelemetryHook
from ..graph import KnowledgeGraph
from ..health import HealthConfig, HealthHook, HealthMonitor
from .scoring import SCORERS, TripletScorer


@dataclasses.dataclass
class LinkPredConfig:
    """Hyper-parameters for KG-embedding link prediction."""

    scorer: str = "transe"
    dim: int = 32
    epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 0.01
    weight_decay: float = 1e-6
    #: corrupted tails sampled per positive triplet
    num_negatives: int = 4
    seed: int = 0
    #: training-health monitoring (:mod:`repro.health`): ``None`` is off;
    #: ``"warn"``/``"raise"`` attach a :class:`~repro.health.HealthHook`
    #: with that escalation policy
    health_policy: Optional[str] = None


@dataclasses.dataclass
class RankingResult:
    """Filtered ranking metrics over a set of test triplets."""

    mrr: float
    hits_at_1: float
    hits_at_3: float
    hits_at_10: float
    num_triplets: int

    def __str__(self) -> str:
        return (f"MRR={self.mrr:.4f} H@1={self.hits_at_1:.4f} "
                f"H@3={self.hits_at_3:.4f} H@10={self.hits_at_10:.4f} "
                f"({self.num_triplets} triplets)")


class LinkPredictor:
    """KG-embedding link predictor: fit on triplets, rank tails.

    Follows the standard protocol: BPR-style ranking of true vs corrupted
    triplets for training; *filtered* tail ranking (other known true
    tails masked) for evaluation.
    """

    def __init__(self, config: Optional[LinkPredConfig] = None):
        self.config = config or LinkPredConfig()
        if self.config.scorer not in SCORERS:
            raise ValueError(
                f"unknown scorer {self.config.scorer!r}; "
                f"choose from {sorted(SCORERS)}")
        self.rng = np.random.default_rng(self.config.seed)
        self.model: Optional[TripletScorer] = None
        self.optimizer: Optional[Adam] = None
        self._known: Dict[Tuple[int, int], Set[int]] = {}
        #: populated when ``config.health_policy`` is set
        self.health_monitor: Optional[HealthMonitor] = None
        self.history: List[EpochStats] = []

    @property
    def losses(self) -> List[float]:
        """Per-epoch mean losses (derived from :attr:`history`)."""
        return [stats.loss for stats in self.history]

    # ------------------------------------------------------------------
    def fit(self, kg: KnowledgeGraph,
            triplets: Optional[np.ndarray] = None) -> "LinkPredictor":
        """Train on ``triplets`` (default: all of ``kg``'s triplets)."""
        config = self.config
        self.model = SCORERS[config.scorer](
            kg.num_entities, kg.num_relations, config.dim,
            rng=np.random.default_rng(config.seed))
        if triplets is None:
            triplets = np.column_stack([kg.heads, kg.relations, kg.tails])
        triplets = np.asarray(triplets, dtype=np.int64)
        if triplets.size == 0:
            raise ValueError("no training triplets")

        self._known = {}
        for head, relation, tail in triplets:
            self._known.setdefault((int(head), int(relation)), set()).add(int(tail))

        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate,
                              weight_decay=config.weight_decay)
        num = triplets.shape[0]

        def batches(epoch: int):
            order = self.rng.permutation(num)
            return [triplets[order[start:start + config.batch_size]]
                    for start in range(0, num, config.batch_size)]

        def step(batch: np.ndarray):
            repeated = np.repeat(batch, config.num_negatives, axis=0)
            corrupted = self.rng.integers(
                0, kg.num_entities, size=repeated.shape[0])
            true_scores = self.model.score(
                repeated[:, 0], repeated[:, 1], repeated[:, 2])
            false_scores = self.model.score(
                repeated[:, 0], repeated[:, 1], corrupted)
            return -log_sigmoid(true_scores - false_scores).mean()

        history = History()
        hooks = [TelemetryHook(), history]
        if config.health_policy is not None:
            self.health_monitor = HealthMonitor(
                HealthConfig(policy=config.health_policy))
            hooks.insert(1, HealthHook(self.health_monitor,
                                       module=self.model))
        engine = Engine(self.optimizer, hooks=hooks)
        self.history = history.stats
        engine.fit(step, batches, config.epochs)
        return self

    # ------------------------------------------------------------------
    def rank_tail(self, head: int, relation: int, tail: int) -> int:
        """Filtered rank (1-based) of the true tail among all entities."""
        if self.model is None:
            raise RuntimeError("fit() must be called first")
        scores = self.model.score_all_tails(head, relation)
        known = self._known.get((int(head), int(relation)), set())
        for other in known:
            if other != tail:
                scores[other] = -np.inf
        target = scores[tail]
        return int((scores > target).sum()) + 1

    def evaluate(self, test_triplets: np.ndarray) -> RankingResult:
        """Filtered MRR / Hits@K over ``test_triplets`` (N × 3)."""
        test_triplets = np.asarray(test_triplets, dtype=np.int64)
        if test_triplets.size == 0:
            raise ValueError("no test triplets")
        with telemetry.span("eval.rank"):
            ranks = np.asarray([
                self.rank_tail(int(h), int(r), int(t))
                for h, r, t in test_triplets
            ], dtype=np.float64)
        return RankingResult(
            mrr=float((1.0 / ranks).mean()),
            hits_at_1=float((ranks <= 1).mean()),
            hits_at_3=float((ranks <= 3).mean()),
            hits_at_10=float((ranks <= 10).mean()),
            num_triplets=int(ranks.size),
        )


def split_triplets(kg: KnowledgeGraph, test_fraction: float = 0.1,
                   seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Random train/test division of a KG's triplets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    triplets = np.column_stack([kg.heads, kg.relations, kg.tails])
    order = rng.permutation(triplets.shape[0])
    cut = max(1, int(round(triplets.shape[0] * test_fraction)))
    return triplets[order[cut:]], triplets[order[:cut]]
