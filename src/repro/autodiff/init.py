"""Weight-initialization helpers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform init ``U(-a, a)`` with ``a = gain*sqrt(6/(fan_in+fan_out))``."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal init ``N(0, gain^2 * 2/(fan_in+fan_out))``."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[-1], shape[-2]
