"""Functional operations on :class:`~repro.autodiff.tensor.Tensor`.

These cover the sparse-graph primitives that message passing needs
(``gather_rows``, ``segment_sum``), plus classic neural-network helpers
(softmax, dropout, concatenation, stable BPR loss terms).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..telemetry import tracer as _tracer
from .fused import fused_segment_softmax, fusion_enabled
from .tensor import Tensor, _unbroadcast


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``x[indices]`` with a scatter-add backward pass.

    This is the autodiff analogue of an embedding lookup / edge-source
    gather: forward is fancy indexing on the first axis, backward adds
    each output-row gradient back into its source row (rows selected
    multiple times accumulate).
    """
    indices = np.asarray(indices, dtype=np.int64)
    if _tracer.STATE.enabled:
        _tracer.counter("autodiff.gather_rows")
        _tracer.counter("autodiff.gather_rows.rows", indices.size)
    out = Tensor(x.data[indices], parents=(x,))
    out.requires_grad = Tensor._needs_graph(x)

    def _backward():
        grad = np.zeros_like(x.data)
        np.add.at(grad, indices, out.grad)
        x._accumulate_grad(grad)

    out._backward_fn = _backward
    return out


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets.

    ``out[s] = sum_{j : segment_ids[j] == s} x[j]``.  This is the
    aggregation step of Eq. (5) in the paper: messages on edges are summed
    into their destination nodes.  Backward is a gather.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != x.data.shape[0]:
        raise ValueError(
            f"segment_ids has length {segment_ids.shape[0]} but x has "
            f"{x.data.shape[0]} rows"
        )
    if _tracer.STATE.enabled:
        _tracer.counter("autodiff.segment_sum")
        _tracer.counter("autodiff.segment_sum.rows", segment_ids.size)
    out_shape = (num_segments,) + x.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=x.data.dtype)
    np.add.at(out_data, segment_ids, x.data)
    out = Tensor(out_data, parents=(x,))
    out.requires_grad = Tensor._needs_graph(x)

    def _backward():
        x._accumulate_grad(out.grad[segment_ids])

    out._backward_fn = _backward
    return out


def segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int, fill: float = -1e30) -> Tensor:
    """Per-segment maximum; gradient routes to the argmax rows."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + x.data.shape[1:]
    out_data = np.full(out_shape, fill, dtype=x.data.dtype)
    np.maximum.at(out_data, segment_ids, x.data)
    out = Tensor(out_data, parents=(x,))
    out.requires_grad = Tensor._needs_graph(x)

    def _backward():
        mask = (x.data == out_data[segment_ids]).astype(x.data.dtype)
        x._accumulate_grad(mask * out.grad[segment_ids])

    out._backward_fn = _backward
    return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``; backward splits the gradient."""
    tensors = list(tensors)
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis), parents=tuple(tensors))
    out.requires_grad = Tensor._needs_graph(*tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward():
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad or tensor._parents:
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate_grad(out.grad[tuple(slicer)])

    out._backward_fn = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    out = Tensor(np.stack([t.data for t in tensors], axis=axis), parents=tuple(tensors))
    out.requires_grad = Tensor._needs_graph(*tensors)

    def _backward():
        grads = np.moveaxis(out.grad, axis, 0)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad or tensor._parents:
                tensor._accumulate_grad(grad)

    out._backward_fn = _backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor(out_data, parents=(x,))
    out.requires_grad = Tensor._needs_graph(x)

    def _backward():
        dot = (out.grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate_grad(out_data * (out.grad - dot))

    out._backward_fn = _backward
    return out


def segment_softmax(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax normalized within each segment (e.g. edges per node).

    Dispatches to the single-node fused kernel unless fusion is off
    (``REPRO_FUSED=0``); the composition below is the reference
    implementation the fused op is verified against (bitwise).
    """
    if fusion_enabled():
        return fused_segment_softmax(x, segment_ids, num_segments)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Stabilize per segment.
    seg_max = np.full((num_segments,) + x.data.shape[1:], -np.inf, dtype=x.data.dtype)
    np.maximum.at(seg_max, segment_ids, x.data)
    shifted = x - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    return exp / gather_rows(denom, segment_ids)


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero a ``rate`` fraction and rescale survivors."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)
    return x * Tensor(mask)


def log_sigmoid(x: Tensor) -> Tensor:
    """Stable ``log(sigmoid(x)) = -softplus(-x)``, the BPR loss core."""
    return -((-x).softplus())


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian Personalized Ranking loss, Eq. (14) of the paper.

    ``L = -mean(log sigmoid(pos - neg))`` over the batch of (u, i+, i-)
    triplets.
    """
    return -log_sigmoid(pos_scores - neg_scores).mean()


def l2_penalty(tensors: Sequence[Tensor]) -> Tensor:
    """Sum of squared entries of ``tensors`` (explicit L2 regularizer)."""
    total: Optional[Tensor] = None
    for tensor in tensors:
        term = (tensor * tensor).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``.

    ``condition`` is a fixed boolean array (not differentiated).
    """
    condition = np.asarray(condition, dtype=bool)
    mask = Tensor(condition.astype(np.float64))
    return a * mask + b * (1.0 - mask)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a fixed target array."""
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Stable ``BCE(sigmoid(logits), labels)`` for 0/1 label arrays.

    Uses the identity ``-[y log σ(x) + (1-y) log(1-σ(x))] = softplus(x) - x·y``,
    which never exponentiates a large positive number.
    """
    labels_t = Tensor(np.asarray(labels, dtype=np.float64))
    return (logits.softplus() - logits * labels_t).mean()
