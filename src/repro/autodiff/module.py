"""Neural-network module abstraction over the autodiff engine.

Mirrors the small subset of ``torch.nn`` this reproduction needs:
:class:`Parameter`, :class:`Module` (with recursive parameter discovery),
:class:`Linear`, :class:`Embedding`, and :class:`Dropout`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from . import init
from .ops import dropout as dropout_op
from .ops import gather_rows
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for models; discovers parameters via attributes.

    Any :class:`Parameter` assigned as an attribute, and any parameters of
    child :class:`Module` attributes (including modules in lists/dicts),
    are reachable through :meth:`parameters` and :meth:`named_parameters`.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first.

        Recurses through child modules and arbitrarily nested
        lists/tuples/dicts of modules and parameters.
        """
        for key, value in vars(self).items():
            yield from _walk_parameters(value, f"{prefix}{key}")

    def parameters(self) -> list:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Enable training-mode behaviour (dropout active)."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Enable inference-mode behaviour (dropout off)."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            _walk_set_mode(value, training)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter data saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


def _walk_parameters(value, name: str) -> Iterator[Tuple[str, Parameter]]:
    """Recursive helper behind :meth:`Module.named_parameters`."""
    if isinstance(value, Parameter):
        yield name, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix=f"{name}.")
    elif isinstance(value, (list, tuple)):
        for index, element in enumerate(value):
            yield from _walk_parameters(element, f"{name}.{index}")
    elif isinstance(value, dict):
        for key, element in value.items():
            yield from _walk_parameters(element, f"{name}.{key}")


def _walk_set_mode(value, training: bool) -> None:
    """Recursive helper behind :meth:`Module._set_mode`."""
    if isinstance(value, Module):
        value._set_mode(training)
    elif isinstance(value, (list, tuple)):
        for element in value:
            _walk_set_mode(element, training)
    elif isinstance(value, dict):
        for element in value.values():
            _walk_set_mode(element, training)


class Linear(Module):
    """Affine map ``y = x W^T + b`` with Xavier-initialized weights."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng=rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense rows."""

    def __init__(self, num_embeddings: int, dim: int, rng: Optional[np.random.Generator] = None,
                 scale: Optional[float] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        rng = rng or np.random.default_rng()
        scale = scale if scale is not None else (1.0 / np.sqrt(dim))
        self.weight = Parameter(rng.normal(0.0, scale, size=(num_embeddings, dim)), name="embedding")

    def forward(self, ids: np.ndarray) -> Tensor:
        return gather_rows(self.weight, ids)


class Dropout(Module):
    """Inverted dropout module; inert in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout_op(x, self.rate, training=self.training, rng=self._rng)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
