"""Finite-difference gradient checking for the autodiff engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must recompute the forward pass from ``tensor.data`` each call.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn().item()
        flat[index] = original - eps
        minus = fn().item()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> bool:
    """Compare autodiff gradients of scalar ``fn()`` against finite differences.

    Raises ``AssertionError`` with the offending tensor on mismatch;
    returns ``True`` on success.
    """
    for tensor in tensors:
        tensor.zero_grad()
    out = fn()
    out.backward()
    for position, tensor in enumerate(tensors):
        expected = numeric_gradient(fn, tensor, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch on tensor #{position} "
                f"(name={tensor.name!r}): max abs err {worst:.3e}"
            )
    return True
