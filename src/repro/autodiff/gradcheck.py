"""Finite-difference gradient checking for the autodiff engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must recompute the forward pass from ``tensor.data`` each call.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn().item()
        flat[index] = original - eps
        minus = fn().item()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients_match(fn_a: Callable[[], Tensor], fn_b: Callable[[], Tensor],
                          tensors: Sequence[Tensor],
                          atol: float = 0.0, rtol: float = 1e-6) -> bool:
    """Assert two scalar computations produce matching outputs and gradients.

    Runs ``fn_a`` and ``fn_b`` (e.g. a fused kernel and its unfused
    reference composition) over the same ``tensors``, backpropagates
    each, and compares the forward values and every per-tensor gradient
    within ``atol``/``rtol``.  The defaults demand near-bitwise
    agreement; raises ``AssertionError`` naming the offender otherwise.
    """
    results = []
    for fn in (fn_a, fn_b):
        for tensor in tensors:
            tensor.zero_grad()
        out = fn()
        out.backward()
        results.append((out.data.copy(),
                        [tensor.grad.copy() if tensor.grad is not None
                         else np.zeros_like(tensor.data)
                         for tensor in tensors]))
    (value_a, grads_a), (value_b, grads_b) = results
    if not np.allclose(value_a, value_b, atol=atol, rtol=rtol):
        raise AssertionError(
            f"forward mismatch: max abs err {np.abs(value_a - value_b).max():.3e}")
    for position, (grad_a, grad_b) in enumerate(zip(grads_a, grads_b)):
        if not np.allclose(grad_a, grad_b, atol=atol, rtol=rtol):
            name = tensors[position].name
            raise AssertionError(
                f"gradient mismatch on tensor #{position} (name={name!r}): "
                f"max abs err {np.abs(grad_a - grad_b).max():.3e}")
    return True


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> bool:
    """Compare autodiff gradients of scalar ``fn()`` against finite differences.

    Raises ``AssertionError`` with the offending tensor on mismatch;
    returns ``True`` on success.
    """
    for tensor in tensors:
        tensor.zero_grad()
    out = fn()
    out.backward()
    for position, tensor in enumerate(tensors):
        expected = numeric_gradient(fn, tensor, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch on tensor #{position} "
                f"(name={tensor.name!r}): max abs err {worst:.3e}"
            )
    return True
