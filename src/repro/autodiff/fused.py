"""Fused message-passing super-ops for the Eq. 5-6 hot path.

The unfused composition of one KUCNet propagation layer builds ~16 tape
nodes — two gathers, two attention ``Linear``s (each with a transpose
node), add/ReLU, the attention matvec, sigmoid, reshape, the message
transform, a broadcast multiply, and the segment sum — and every one of
them materializes an ``(E, d)`` / ``(E, d_alpha)`` array that lives on
the tape until ``backward()`` finishes.  The ops here collapse each such
pattern into **one** tape node whose closure captures only the inputs
(which are alive anyway as graph parents) and the integer index arrays:
all per-edge intermediates are recomputed inside the backward pass
instead of being stored, so the peak tape footprint of a layer drops
from ~16 arrays to the single aggregated output.

Gradient derivations (sketch; ``g`` is the output gradient):

``fused_attention_messages`` — with ``a = Ws h_src + Wr h_rel + b``,
``alpha = sigmoid(v . relu(a))``, ``m = (W (h_src + h_rel)) * alpha``
and ``out = segsum(m, dst)``:

* ``dm = g[dst]`` (segment-sum backward is a gather);
* ``d(W s) = dm * alpha``; ``d alpha = sum_d dm * (W s)``;
* ``ds = d(W s) @ W``; ``dW = s^T d(W s)`` (transposed);
* ``dz = d alpha * alpha * (1 - alpha)``; ``d relu(a) = outer(dz, v)``;
  ``dv = relu(a)^T dz``; ``da = d relu(a) * [a > 0]``;
  ``db = sum_E da``; ``dWs = h_src^T da``; ``dWr = h_rel^T da``;
* ``dh_src = da @ Ws + ds`` and ``dh_rel = da @ Wr + ds``, scattered
  back into ``hidden_prev`` / the relation table with ``np.add.at``.

Every numpy expression replicates the exact operation order of the
unfused composition, so the fused KUCNet layer is **bitwise identical**
to the reference in both forward and backward — the golden-loss
fixtures hold unchanged under either path.

``fused_segment_softmax`` — ``out = exp(x - max_seg) / denom[seg]``:
``d exp = g / denom[seg] + scatter(-g * exp / denom[seg]^2)[seg]``,
``dx = d exp * exp`` (the per-segment max is a constant, as in the
reference composition).

``fused_gather_mul_segment_sum`` — ``out = segsum(x[ix] * y[iy], seg)``:
``dm = g[seg]``; ``dx[ix] += dm * y[iy]``; ``dy[iy] += dm * x[ix]``.

Fusion is on by default; ``REPRO_FUSED=0`` (or :func:`force_fusion`)
selects the reference composition for A/B runs and debugging.  Each
fused forward bumps ``autodiff.fused_calls`` and adds the byte size of
the intermediate tape nodes it eliminated to
``autodiff.fused_saved_bytes``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import tracer as _tracer
from .tensor import Tensor, _unbroadcast

__all__ = ["fusion_enabled", "force_fusion", "fused_attention_messages",
           "fused_segment_softmax", "fused_gather_mul_segment_sum",
           "fused_rgcn_messages"]

#: test/A-B override; ``None`` defers to the ``REPRO_FUSED`` env var
_FORCED: Optional[bool] = None

_DISABLED_VALUES = ("0", "false", "off", "no")


def fusion_enabled() -> bool:
    """Whether call sites should take the fused path (default: yes).

    ``REPRO_FUSED=0`` selects the unfused reference composition; the
    :func:`force_fusion` context manager overrides the environment for
    the duration of a block (used by the bench A/B pair and the parity
    tests).
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_FUSED", "1").strip().lower() not in _DISABLED_VALUES


@contextmanager
def force_fusion(enabled: Optional[bool]) -> Iterator[None]:
    """Override :func:`fusion_enabled` within a ``with`` block.

    ``True``/``False`` force the fused/reference path regardless of
    ``REPRO_FUSED``; ``None`` restores environment-driven behaviour.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


def _needs(tensor: Tensor) -> bool:
    return tensor.requires_grad or bool(tensor._parents)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    # Must match Tensor.sigmoid bit for bit (same np.where expression).
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                    np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))


def _record_fusion(saved_bytes: int) -> None:
    if _tracer.STATE.enabled:
        _tracer.counter("autodiff.fused_calls")
        _tracer.counter("autodiff.fused_saved_bytes", float(saved_bytes))


# ----------------------------------------------------------------------
# Eq. 5-6: the full KUCNet attention message-passing pattern
# ----------------------------------------------------------------------

def fused_attention_messages(
    hidden_prev: Tensor,
    src_pos: np.ndarray,
    relations: np.ndarray,
    dst_pos: np.ndarray,
    num_dst: int,
    *,
    relation_weight: Tensor,
    message_weight: Tensor,
    attn_source_weight: Optional[Tensor] = None,
    attn_relation_weight: Optional[Tensor] = None,
    attn_bias: Optional[Tensor] = None,
    attn_vector: Optional[Tensor] = None,
    use_attention: bool = True,
    collect_attention: bool = False,
) -> Tuple[Tensor, Optional[np.ndarray]]:
    """Gather → attention score → sigmoid → transform → segment-sum.

    One tape node computing Eq. 5-6 for a layer's edge list:

    * ``hidden_prev`` — ``(num_prev, d)`` source-table states;
    * ``src_pos`` / ``relations`` / ``dst_pos`` — per-edge indices;
    * ``relation_weight`` — ``(R, d)`` relation-embedding table;
    * ``message_weight`` — ``(d, d)`` message transform ``W``;
    * attention parameters (required when ``use_attention``):
      ``attn_source_weight`` / ``attn_relation_weight`` ``(d_a, d)``,
      ``attn_bias`` ``(d_a,)``, ``attn_vector`` ``(d_a,)``.

    Returns ``(aggregated, attention)`` where ``aggregated`` is the
    ``(num_dst, d)`` pre-activation node sum and ``attention`` the
    per-edge weights as a numpy copy — only when ``collect_attention``
    (``None`` otherwise, sparing the ``(E,)`` copy on the hot loop).
    """
    src_pos = np.asarray(src_pos, dtype=np.int64)
    relations = np.asarray(relations, dtype=np.int64)
    dst_pos = np.asarray(dst_pos, dtype=np.int64)
    if use_attention and None in (attn_source_weight, attn_relation_weight,
                                  attn_bias, attn_vector):
        raise ValueError("use_attention=True requires all attention parameters")

    num_edges = src_pos.shape[0]
    dim = hidden_prev.data.shape[1]
    itemsize = hidden_prev.data.dtype.itemsize

    with _tracer.span("autodiff.fused"):
        hp = hidden_prev.data
        rw = relation_weight.data
        w_msg = message_weight.data
        h_src = hp[src_pos]
        h_rel = rw[relations]
        s = h_src + h_rel
        m0 = s @ w_msg.swapaxes(-1, -2)
        alpha: Optional[np.ndarray] = None
        if use_attention:
            w_src = attn_source_weight.data
            w_rel = attn_relation_weight.data
            pre = ((h_src @ w_src.swapaxes(-1, -2))
                   + (h_rel @ w_rel.swapaxes(-1, -2))) + attn_bias.data
            z = (pre * (pre > 0)) @ attn_vector.data
            alpha = _stable_sigmoid(z)
            messages = m0 * alpha.reshape(-1, 1)
        else:
            messages = m0
        out_data = np.zeros((num_dst,) + messages.shape[1:],
                            dtype=messages.dtype)
        np.add.at(out_data, dst_pos, messages)

    # Bytes of the reference composition's intermediate tape nodes this
    # single node replaces: h_src/h_rel/s/m0 (and the msg product under
    # attention) at (E, d), the five attention stages at (E, d_a), the
    # three (E,)-sized score nodes, plus the per-call transpose views of
    # the weight matrices.
    if use_attention:
        attn_dim = attn_bias.data.shape[0]
        saved = (5 * num_edges * dim + 5 * num_edges * attn_dim
                 + 3 * num_edges + 2 * attn_dim * dim + dim * dim) * itemsize
    else:
        saved = (4 * num_edges * dim + dim * dim) * itemsize
    _record_fusion(saved)

    parents: List[Tensor] = [hidden_prev, relation_weight, message_weight]
    if use_attention:
        parents += [attn_source_weight, attn_relation_weight,
                    attn_bias, attn_vector]
    out = Tensor(out_data, parents=tuple(parents))
    out.requires_grad = Tensor._needs_graph(*parents)

    def _backward():
        grad_out = out.grad
        hp = hidden_prev.data
        rw = relation_weight.data
        w_msg = message_weight.data
        # Recompute the per-edge intermediates instead of storing them:
        # the inputs are alive as graph parents, so the closure holds
        # nothing beyond the integer index arrays.
        h_src = hp[src_pos]
        h_rel = rw[relations]
        s = h_src + h_rel
        dm = grad_out[dst_pos]
        if use_attention:
            w_src = attn_source_weight.data
            w_rel = attn_relation_weight.data
            pre = ((h_src @ w_src.swapaxes(-1, -2))
                   + (h_rel @ w_rel.swapaxes(-1, -2))) + attn_bias.data
            mask = pre > 0
            hidden_attn = pre * mask
            alpha = _stable_sigmoid(hidden_attn @ attn_vector.data)
            m0 = s @ w_msg.swapaxes(-1, -2)
            grad_m0 = dm * alpha.reshape(-1, 1)
            grad_alpha = _unbroadcast(dm * m0, (num_edges, 1)).reshape(num_edges)
            grad_z = grad_alpha * alpha * (1.0 - alpha)
            grad_attn = np.outer(grad_z, attn_vector.data) * mask
        else:
            grad_m0 = dm
        grad_s = grad_m0 @ w_msg
        if _needs(message_weight):
            message_weight._accumulate_grad(
                (s.swapaxes(-1, -2) @ grad_m0).swapaxes(-1, -2))
        if use_attention:
            grad_h_src = grad_attn @ w_src + grad_s
            grad_h_rel = grad_attn @ w_rel + grad_s
            if _needs(attn_source_weight):
                attn_source_weight._accumulate_grad(
                    (h_src.swapaxes(-1, -2) @ grad_attn).swapaxes(-1, -2))
            if _needs(attn_relation_weight):
                attn_relation_weight._accumulate_grad(
                    (h_rel.swapaxes(-1, -2) @ grad_attn).swapaxes(-1, -2))
            if _needs(attn_bias):
                attn_bias._accumulate_grad(grad_attn.sum(axis=0))
            if _needs(attn_vector):
                attn_vector._accumulate_grad(hidden_attn.T @ grad_z)
        else:
            grad_h_src = grad_s
            grad_h_rel = grad_s
        # The reference gathers always scatter (their backward has no
        # requires-grad guard); mirror that so gradient side effects on
        # non-parameter tensors stay identical.
        buffer = np.zeros_like(hp)
        np.add.at(buffer, src_pos, grad_h_src)
        hidden_prev._accumulate_grad(buffer)
        buffer = np.zeros_like(rw)
        np.add.at(buffer, relations, grad_h_rel)
        relation_weight._accumulate_grad(buffer)

    out._backward_fn = _backward
    attention_values: Optional[np.ndarray] = None
    if collect_attention:
        attention_values = (alpha.copy() if use_attention
                            else np.ones(num_edges))
    return out, attention_values


# ----------------------------------------------------------------------
# Per-destination softmax (KGNN-LS / RippleNet / CKAN normalization)
# ----------------------------------------------------------------------

def fused_segment_softmax(x: Tensor, segment_ids: np.ndarray,
                          num_segments: int) -> Tensor:
    """Numerically-stable per-segment softmax as a single tape node.

    Matches the reference composition (``segment_max`` shift → ``exp``
    → ``segment_sum`` → gather-divide) bit for bit while replacing its
    six intermediate tape nodes with one; the shifted/exp arrays are
    recomputed in the backward pass.  Empty segments produce no output
    rows and receive no gradient, exactly as in the composition.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    tail_shape = x.data.shape[1:]
    segment_nbytes = (num_segments
                      * int(np.prod(tail_shape, dtype=np.int64))
                      * x.data.dtype.itemsize)

    def _forward_arrays():
        seg_max = np.full((num_segments,) + tail_shape, -np.inf,
                          dtype=x.data.dtype)
        np.maximum.at(seg_max, segment_ids, x.data)
        exp = np.exp(x.data + (-seg_max[segment_ids]))
        denom = np.zeros((num_segments,) + tail_shape, dtype=exp.dtype)
        np.add.at(denom, segment_ids, exp)
        return exp, denom[segment_ids]

    with _tracer.span("autodiff.fused"):
        exp, denom_edges = _forward_arrays()
        out_data = exp / denom_edges

    # Reference composition tape: the gathered-max constant, its
    # negation, the shifted node, exp, the (S,·) denominator, and its
    # per-edge gather — all eliminated.
    _record_fusion(5 * exp.nbytes + segment_nbytes)

    out = Tensor(out_data, parents=(x,))
    out.requires_grad = Tensor._needs_graph(x)

    def _backward():
        grad_out = out.grad
        exp, denom_edges = _forward_arrays()
        grad_exp = grad_out / denom_edges
        grad_denom = np.zeros((num_segments,) + tail_shape, dtype=exp.dtype)
        np.add.at(grad_denom, segment_ids,
                  (-grad_out) * exp / (denom_edges ** 2))
        grad_exp = grad_exp + grad_denom[segment_ids]
        if _needs(x):
            x._accumulate_grad(grad_exp * exp)

    out._backward_fn = _backward
    return out


# ----------------------------------------------------------------------
# Gather-multiply-aggregate (KGAT / KGIN / CompGCN / NBFNet pattern)
# ----------------------------------------------------------------------

def fused_gather_mul_segment_sum(
    x: Tensor,
    x_indices: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    y: Optional[Tensor] = None,
    y_indices: Optional[np.ndarray] = None,
) -> Tensor:
    """``segment_sum(x[x_indices] * y[y_indices], segment_ids)`` fused.

    The shared shape of every segment-sum baseline's propagation step:

    * ``y=None`` — plain gather + aggregate (KGIN's user aggregation);
    * ``y`` with ``y_indices`` — a second gathered table, multiplied
      edge-wise (KGIN/CompGCN/NBFNet relation gating);
    * ``y`` without ``y_indices`` — a per-edge operand used as-is, e.g.
      KGAT's non-differentiated ``(E, 1)`` attention column.

    Bitwise-equal to the unfused gather/multiply/segment-sum chain.
    """
    x_indices = np.asarray(x_indices, dtype=np.int64)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if y_indices is not None:
        if y is None:
            raise ValueError("y_indices given without y")
        y_indices = np.asarray(y_indices, dtype=np.int64)

    with _tracer.span("autodiff.fused"):
        rows = x.data[x_indices]
        if y is not None:
            y_rows = y.data[y_indices] if y_indices is not None else y.data
            messages = rows * y_rows
        else:
            messages = rows
        out_data = np.zeros((num_segments,) + messages.shape[1:],
                            dtype=messages.dtype)
        np.add.at(out_data, segment_ids, messages)

    saved = rows.nbytes
    if y is not None:
        saved += messages.nbytes
        if y_indices is not None:
            saved += rows.nbytes  # the gathered (E, ·) relation rows
        else:
            saved += y.data.nbytes  # the per-edge operand node itself
    _record_fusion(saved)

    parents = (x,) if y is None else (x, y)
    out = Tensor(out_data, parents=parents)
    out.requires_grad = Tensor._needs_graph(*parents)

    def _backward():
        dm = out.grad[segment_ids]
        if y is not None:
            y_rows = y.data[y_indices] if y_indices is not None else y.data
            grad_rows = dm * y_rows
        else:
            grad_rows = dm
        buffer = np.zeros_like(x.data)
        np.add.at(buffer, x_indices, grad_rows)
        x._accumulate_grad(buffer)
        if y is not None and _needs(y):
            grad_y_rows = dm * x.data[x_indices]
            if y_indices is not None:
                buffer = np.zeros_like(y.data)
                np.add.at(buffer, y_indices, grad_y_rows)
                y._accumulate_grad(buffer)
            else:
                y._accumulate_grad(_unbroadcast(grad_y_rows, y.data.shape))

    out._backward_fn = _backward
    return out


# ----------------------------------------------------------------------
# R-GCN basis-decomposed relational messages
# ----------------------------------------------------------------------

def fused_rgcn_messages(
    hidden: Tensor,
    heads: np.ndarray,
    relations: np.ndarray,
    tails: np.ndarray,
    num_nodes: int,
    basis_weights: Sequence[Tensor],
    basis_coeffs: Tensor,
) -> Tensor:
    """R-GCN layer messages ``segsum(Σ_b (x[h] V_b^T) · a[r, b], tails)``.

    Replaces, per basis, a transpose node, an ``(E, d)`` matmul, the
    three-node ``_column`` coefficient selection, an ``(E, d)`` product
    and an ``(E, d)`` running-sum node — ``5B + 1`` tape nodes collapse
    into one.  ``basis_weights`` are the ``(d, d)`` basis matrices
    ``V_b``; ``basis_coeffs`` the ``(R, B)`` relation coefficients.
    """
    heads = np.asarray(heads, dtype=np.int64)
    relations = np.asarray(relations, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    basis_weights = list(basis_weights)
    num_bases = len(basis_weights)
    num_edges = heads.shape[0]
    dim = hidden.data.shape[1]

    with _tracer.span("autodiff.fused"):
        source = hidden.data[heads]
        coeff_rows = basis_coeffs.data[relations]
        messages = None
        for index, basis in enumerate(basis_weights):
            term = ((source @ basis.data.swapaxes(-1, -2))
                    * coeff_rows[:, index:index + 1])
            messages = term if messages is None else messages + term
        out_data = np.zeros((num_nodes,) + messages.shape[1:],
                            dtype=messages.dtype)
        np.add.at(out_data, tails, messages)

    itemsize = hidden.data.dtype.itemsize
    # source + coeff gather, then per basis: transpose view, matmul
    # output, the _column chain (flat, (E*B, 1) view, (E, 1) column),
    # the gated term, and B-1 running-sum nodes.
    saved = (num_edges * dim + num_edges * num_bases
             + num_bases * (dim * dim + num_edges * dim
                            + 2 * num_edges * num_bases + num_edges
                            + num_edges * dim)
             + (num_bases - 1) * num_edges * dim) * itemsize
    _record_fusion(saved)

    parents = (hidden, basis_coeffs) + tuple(basis_weights)
    out = Tensor(out_data, parents=parents)
    out.requires_grad = Tensor._needs_graph(*parents)

    def _backward():
        dm = out.grad[tails]
        source = hidden.data[heads]
        coeff_rows = basis_coeffs.data[relations]
        grad_source = None
        grad_coeff_rows = np.zeros_like(coeff_rows)
        for index, basis in enumerate(basis_weights):
            term_pre = source @ basis.data.swapaxes(-1, -2)
            grad_term_pre = dm * coeff_rows[:, index:index + 1]
            grad_coeff_rows[:, index:index + 1] = _unbroadcast(
                dm * term_pre, (num_edges, 1))
            if _needs(basis):
                basis._accumulate_grad(
                    (source.swapaxes(-1, -2) @ grad_term_pre).swapaxes(-1, -2))
            contribution = grad_term_pre @ basis.data
            grad_source = (contribution if grad_source is None
                           else grad_source + contribution)
        if _needs(basis_coeffs):
            buffer = np.zeros_like(basis_coeffs.data)
            np.add.at(buffer, relations, grad_coeff_rows)
            basis_coeffs._accumulate_grad(buffer)
        buffer = np.zeros_like(hidden.data)
        np.add.at(buffer, heads, grad_source)
        hidden._accumulate_grad(buffer)

    out._backward_fn = _backward
    return out
