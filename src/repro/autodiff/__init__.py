"""Numpy-based reverse-mode autodiff engine (PyTorch substitute).

Public surface:

* :class:`Tensor` — autodiff array.
* :mod:`ops` — functional graph/NN primitives (``gather_rows``,
  ``segment_sum``, ``softmax``, ``bpr_loss``, ...).
* :class:`Module` / :class:`Parameter` / layers — model building blocks.
* :class:`SGD` / :class:`Adam` — optimizers.
* :func:`check_gradients` — finite-difference verification.
"""

from .fused import (force_fusion, fused_attention_messages,
                    fused_gather_mul_segment_sum, fused_rgcn_messages,
                    fused_segment_softmax, fusion_enabled)
from .gradcheck import check_gradients, check_gradients_match, numeric_gradient
from .module import (Dropout, Embedding, Linear, Module, Parameter, ReLU,
                     Sequential, Tanh)
from .ops import (binary_cross_entropy_with_logits, bpr_loss, concat, dropout,
                  gather_rows, l2_penalty, log_sigmoid, mse_loss, segment_max,
                  segment_softmax, segment_sum, softmax, stack, where)
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor

__all__ = [
    "Tensor", "Module", "Parameter", "Linear", "Embedding", "Dropout",
    "Sequential", "ReLU", "Tanh",
    "SGD", "Adam", "Optimizer",
    "gather_rows", "segment_sum", "segment_max", "segment_softmax",
    "concat", "stack", "softmax", "dropout", "log_sigmoid", "bpr_loss",
    "l2_penalty", "mse_loss", "binary_cross_entropy_with_logits", "where",
    "fusion_enabled", "force_fusion", "fused_attention_messages",
    "fused_segment_softmax", "fused_gather_mul_segment_sum",
    "fused_rgcn_messages",
    "check_gradients", "check_gradients_match", "numeric_gradient",
]
