"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, a thin wrapper around a
``numpy.ndarray`` that records the operations applied to it and can
backpropagate gradients through them.  It is the execution substrate that
replaces PyTorch in this reproduction: the KUCNet model and every learned
baseline are expressed in terms of these tensors, so the forward math is
identical to the paper's equations and the gradients are exact (verified
by finite-difference tests).

Design notes
------------
* Data is stored as ``float64`` by default.  At the scale of this
  reproduction the extra precision is cheap and makes gradient checking
  tight.
* Each differentiable operation creates a new :class:`Tensor` whose
  ``_backward`` closure accumulates gradients into its parents.
  :meth:`Tensor.backward` runs a topological sort and calls the closures
  in reverse order.
* Broadcasting is supported for elementwise binary ops; gradients are
  un-broadcast (summed over expanded axes) before accumulation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..telemetry import tracer as _tracer

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Coerce ``value`` to a numpy array of the engine's dtype."""
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to reverse numpy broadcasting.

    When a forward op broadcasts an operand from ``shape`` up to the
    output shape, the operand's gradient is the output gradient summed
    over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that supports reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    parents:
        Tensors this one was computed from (internal).
    backward_fn:
        Closure that propagates ``self.grad`` into the parents (internal).
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Iterable["Tensor"] = (),
        backward_fn: Optional[Callable[[], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a 0-d or 1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autodiff plumbing
    # ------------------------------------------------------------------
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``, allocating on first use."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self._accumulate_grad(_as_array(grad))

        # Topological order via iterative DFS (graphs here can be deep).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        if _tracer.STATE.enabled:
            # Tape shape metrics: length of the recorded graph and the
            # ndarray bytes it holds (histogram max = peak per backward).
            _tracer.counter("autodiff.backward_calls")
            _tracer.histogram("autodiff.tape_nodes", len(order))
            _tracer.histogram("autodiff.tape_bytes",
                              sum(node.data.nbytes for node in order))

        with _tracer.span("autodiff.backward"):
            for node in reversed(order):
                if node._backward_fn is not None and node.grad is not None:
                    node._backward_fn()

    @staticmethod
    def _needs_graph(*tensors: "Tensor") -> bool:
        return any(t.requires_grad or t._parents for t in tensors)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data + other.data, parents=(self, other))
        out.requires_grad = Tensor._needs_graph(self, other)

        def _backward():
            if self.requires_grad or self._parents:
                self._accumulate_grad(_unbroadcast(out.grad, self.shape))
            if other.requires_grad or other._parents:
                other._accumulate_grad(_unbroadcast(out.grad, other.shape))

        out._backward_fn = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(-out.grad)

        out._backward_fn = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data * other.data, parents=(self, other))
        out.requires_grad = Tensor._needs_graph(self, other)

        def _backward():
            if self.requires_grad or self._parents:
                self._accumulate_grad(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad or other._parents:
                other._accumulate_grad(_unbroadcast(out.grad * self.data, other.shape))

        out._backward_fn = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data / other.data, parents=(self, other))
        out.requires_grad = Tensor._needs_graph(self, other)

        def _backward():
            if self.requires_grad or self._parents:
                self._accumulate_grad(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad or other._parents:
                grad_other = -out.grad * self.data / (other.data**2)
                other._accumulate_grad(_unbroadcast(grad_other, other.shape))

        out._backward_fn = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(self.data**exponent, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * exponent * self.data ** (exponent - 1))

        out._backward_fn = _backward
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product ``self @ other`` for 1-D/2-D operands."""
        other = self._coerce(other)
        out = Tensor(self.data @ other.data, parents=(self, other))
        out.requires_grad = Tensor._needs_graph(self, other)

        def _backward():
            grad = out.grad
            a, b = self.data, other.data
            if self.requires_grad or self._parents:
                if b.ndim == 1 and a.ndim >= 2:
                    self._accumulate_grad(np.outer(grad, b) if grad.ndim == 1 else grad[..., None] * b)
                elif a.ndim == 1:
                    self._accumulate_grad(grad @ b.T if b.ndim == 2 else grad * b)
                else:
                    self._accumulate_grad(grad @ b.swapaxes(-1, -2))
            if other.requires_grad or other._parents:
                if a.ndim == 1 and b.ndim == 2:
                    other._accumulate_grad(np.outer(a, grad))
                elif b.ndim == 1:
                    other._accumulate_grad(a.T @ grad if a.ndim == 2 else a * grad)
                else:
                    other._accumulate_grad(a.swapaxes(-1, -2) @ grad)

        out._backward_fn = _backward
        return out

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        """Transpose the last two axes."""
        out = Tensor(self.data.swapaxes(-1, -2), parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad.swapaxes(-1, -2))

        out._backward_fn = _backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad.reshape(self.shape))

        out._backward_fn = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate_grad(np.broadcast_to(grad, self.shape).copy())

        out._backward_fn = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; gradient flows to the (first) argmax entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient between ties so the total is conserved.
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate_grad(mask * grad)

        out._backward_fn = _backward
        return out

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor(out_data, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * out_data)

        out._backward_fn = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad / self.data)

        out._backward_fn = _backward
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable: never exponentiates a large positive number.
        x = self.data
        out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
        out = Tensor(out_data, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * out_data * (1.0 - out_data))

        out._backward_fn = _backward
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = Tensor(out_data, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * (1.0 - out_data**2))

        out._backward_fn = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * mask)

        out._backward_fn = _backward
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value; subgradient sign(x) at 0 is 0."""
        sign = np.sign(self.data)
        out = Tensor(np.abs(self.data), parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * sign)

        out._backward_fn = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]``; gradient is 1 inside."""
        if low > high:
            raise ValueError(f"clip bounds reversed: {low} > {high}")
        inside = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
        out = Tensor(np.clip(self.data, low, high), parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            self._accumulate_grad(out.grad * inside)

        out._backward_fn = _backward
        return out

    def minimum(self, other: "Tensor") -> "Tensor":
        """Elementwise minimum; ties route gradient to ``self``."""
        other = self._coerce(other)
        take_self = self.data <= other.data
        out = Tensor(np.where(take_self, self.data, other.data),
                     parents=(self, other))
        out.requires_grad = Tensor._needs_graph(self, other)

        def _backward():
            mask = take_self.astype(self.data.dtype)
            if self.requires_grad or self._parents:
                self._accumulate_grad(_unbroadcast(out.grad * mask, self.shape))
            if other.requires_grad or other._parents:
                other._accumulate_grad(
                    _unbroadcast(out.grad * (1.0 - mask), other.shape))

        out._backward_fn = _backward
        return out

    def softplus(self) -> "Tensor":
        """log(1 + exp(x)), computed stably."""
        x = self.data
        out_data = np.maximum(x, 0) + np.log1p(np.exp(-np.abs(x)))
        out = Tensor(out_data, parents=(self,))
        out.requires_grad = Tensor._needs_graph(self)

        def _backward():
            sig = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
            self._accumulate_grad(out.grad * sig)

        out._backward_fn = _backward
        return out
