"""Optimizers: SGD and Adam (the paper trains KUCNet with Adam, §IV-D)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: Sequence[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with L2-style weight decay.

    Weight decay is applied as an additive ``wd * theta`` term on the
    gradient (classic Adam-with-L2, matching common recommender
    implementations), not AdamW decoupling.
    """

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
