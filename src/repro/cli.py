"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro list
    python -m repro run table3 [--profile quick|full] [--output DIR]
    python -m repro datasets --output DIR [--scale 1.0]
    python -m repro profile [--dataset NAME] [--sink table|jsonl] [--out FILE]

``run`` executes one experiment runner (a paper table or figure) and
prints the measured-vs-paper rows; ``datasets`` materializes the four
synthetic datasets as TSV directories; ``profile`` runs one instrumented
train/eval pass and dumps the telemetry (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (list / run / datasets / profile)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KUCNet reproduction — experiment runner CLI")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. table3 or fig5")
    run.add_argument("--profile", default=None, choices=["quick", "full"],
                     help="execution profile (default: REPRO_PROFILE or quick)")
    run.add_argument("--output", default=None,
                     help="directory to save the markdown rendering")

    datasets = commands.add_parser("datasets",
                                   help="generate the synthetic datasets")
    datasets.add_argument("--output", required=True,
                          help="directory to write TSV dataset folders into")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=0)

    profile = commands.add_parser(
        "profile",
        help="run an instrumented train/eval pass and dump telemetry")
    profile.add_argument("--dataset", default="lastfm_like",
                         help="synthetic dataset preset (default lastfm_like)")
    profile.add_argument("--scale", type=float, default=0.15,
                         help="dataset size multiplier (default 0.15)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--epochs", type=int, default=2)
    profile.add_argument("--depth", type=int, default=2,
                         help="KUCNet layer count L")
    profile.add_argument("--k", type=int, default=10,
                         help="PPR top-K pruning budget")
    profile.add_argument("--ppr-method", default="power",
                         choices=["power", "push"],
                         help="PPR solver: dense power iteration or sparse "
                              "forward push (see docs/performance.md)")
    profile.add_argument("--sink", default="table",
                         choices=["table", "jsonl"],
                         help="output format: human-readable table or JSONL")
    profile.add_argument("--out", default=None,
                         help="output path (required for --sink jsonl)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        from .experiments import EXPERIMENTS
        for name, runner in EXPERIMENTS.items():
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    if args.command == "run":
        from .experiments import EXPERIMENTS, PROFILES, active_profile
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; "
                  f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
            return 2
        profile = PROFILES[args.profile] if args.profile else active_profile()
        result = EXPERIMENTS[args.experiment](profile)
        print(result.render())
        if args.output:
            path = result.save(args.output, args.experiment)
            print(f"[saved {path}]")
        return 0

    if args.command == "datasets":
        import os
        from .data import PRESETS, save_dataset
        for name, maker in PRESETS.items():
            dataset = maker(seed=args.seed, scale=args.scale)
            directory = os.path.join(args.output, name)
            save_dataset(dataset, directory)
            print(f"wrote {directory}: {dataset.statistics()}")
        return 0

    if args.command == "profile":
        return _run_profile(args)

    # Defensive fallback: argparse rejects unknown subcommands itself, but
    # if a registered command ever goes unhandled we still fail loudly
    # instead of silently succeeding.
    parser.print_usage(sys.stderr)
    print(f"repro: unhandled command {args.command!r}", file=sys.stderr)
    return 2


def _run_profile(args: argparse.Namespace) -> int:
    """``repro profile``: instrumented fit + evaluate on a tiny dataset."""
    import dataclasses

    from . import telemetry
    from .core import KUCNetConfig, KUCNetRecommender, TrainConfig
    from .data import PRESETS, traditional_split
    from .eval import evaluate

    if args.dataset not in PRESETS:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from {sorted(PRESETS)}", file=sys.stderr)
        return 2
    if args.sink == "jsonl" and not args.out:
        print("--sink jsonl requires --out PATH", file=sys.stderr)
        return 2

    dataset = PRESETS[args.dataset](seed=args.seed, scale=args.scale)
    split = traditional_split(dataset, seed=args.seed)
    model_config = KUCNetConfig(dim=16, depth=args.depth, seed=args.seed)
    train_config = TrainConfig(epochs=args.epochs, batch_users=16,
                               k=args.k, ppr_method=args.ppr_method,
                               seed=args.seed)

    telemetry.reset()
    with telemetry.enabled():
        model = KUCNetRecommender(model_config, train_config)
        model.fit(split)
        result = evaluate(model, split, max_users=32, seed=args.seed)

    manifest = telemetry.RunManifest(
        run=f"profile:{args.dataset}",
        seed=args.seed,
        config={"model": dataclasses.asdict(model_config),
                "train": dataclasses.asdict(train_config),
                "scale": args.scale},
        dataset=dataset.statistics(),
        metrics={"recall@20": result.recall, "ndcg@20": result.ndcg,
                 "eval_users": result.num_users},
    )

    if args.sink == "jsonl":
        lines = telemetry.write_jsonl(args.out, manifest=manifest)
        print(f"[wrote {args.out}: {lines} records]")
    else:
        print(manifest.to_json())
        print()
        print(telemetry.summary_table())
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(manifest.to_json() + "\n\n")
                handle.write(telemetry.summary_table() + "\n")
            print(f"\n[saved {args.out}]")
    print(f"\n{result}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
