"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro list
    python -m repro run table3 [--profile quick|full] [--output DIR]
    python -m repro datasets --output DIR [--scale 1.0]

``run`` executes one experiment runner (a paper table or figure) and
prints the measured-vs-paper rows; ``datasets`` materializes the four
synthetic datasets as TSV directories.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (list / run / datasets)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KUCNet reproduction — experiment runner CLI")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. table3 or fig5")
    run.add_argument("--profile", default=None, choices=["quick", "full"],
                     help="execution profile (default: REPRO_PROFILE or quick)")
    run.add_argument("--output", default=None,
                     help="directory to save the markdown rendering")

    datasets = commands.add_parser("datasets",
                                   help="generate the synthetic datasets")
    datasets.add_argument("--output", required=True,
                          help="directory to write TSV dataset folders into")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        from .experiments import EXPERIMENTS
        for name, runner in EXPERIMENTS.items():
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    if args.command == "run":
        from .experiments import EXPERIMENTS, PROFILES, active_profile
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; "
                  f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
            return 2
        profile = PROFILES[args.profile] if args.profile else active_profile()
        result = EXPERIMENTS[args.experiment](profile)
        print(result.render())
        if args.output:
            path = result.save(args.output, args.experiment)
            print(f"[saved {path}]")
        return 0

    if args.command == "datasets":
        import os
        from .data import PRESETS, save_dataset
        for name, maker in PRESETS.items():
            dataset = maker(seed=args.seed, scale=args.scale)
            directory = os.path.join(args.output, name)
            save_dataset(dataset, directory)
            print(f"wrote {directory}: {dataset.statistics()}")
        return 0

    return 2


if __name__ == "__main__":
    raise SystemExit(main())
